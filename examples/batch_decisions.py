#!/usr/bin/env python3
"""Batch decision pipelines: deciding a whole workload through one Session.

This example runs the full Example 4.1 verdict matrix (Q1–Q4 against each
other) as a single ``decide_many`` batch, shows per-item error capture on a
pair whose chase budget is deliberately too small, and contrasts the chase
cache's cold and warm behaviour.  With ``--jobs N`` the same batch fans out
over N worker processes.

Run with:  python examples/batch_decisions.py [--jobs N]
"""

from __future__ import annotations

import argparse
import itertools
import time

from repro import Session
from repro.paperlib import example_4_1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=None, help="worker processes")
    args = parser.parse_args()

    ex41 = example_4_1()
    session = Session(dependencies=ex41.dependencies)
    queries = {"Q1": ex41.q1, "Q2": ex41.q2, "Q3": ex41.q3, "Q4": ex41.q4}
    pairs = list(itertools.combinations(queries.values(), 2))

    # ------------------------------------------------------------------ #
    # 1. The whole verdict matrix as one batch, per semantics.  In-process,
    #    the six pairs share four distinct queries, so the session chases 4
    #    queries per semantics instead of 12; with --jobs, each worker
    #    process owns its own session and cache instead.
    # ------------------------------------------------------------------ #
    for semantics in ("bag", "bag-set", "set"):
        started = time.perf_counter()
        report = session.decide_many(pairs, semantics=semantics, concurrency=args.jobs)
        elapsed = (time.perf_counter() - started) * 1000
        verdicts = [
            f"{item.input[0].head_predicate}≡{item.input[1].head_predicate}"
            if item.result
            else f"{item.input[0].head_predicate}≢{item.input[1].head_predicate}"
            for item in report
        ]
        print(f"{semantics:8s} ({elapsed:6.1f} ms): {'  '.join(verdicts)}")
    stats = session.cache_stats()
    if args.jobs:
        print(
            f"(--jobs {args.jobs}: worker processes cached independently; "
            f"parent cache saw {stats.hits} hits, {stats.misses} misses)"
        )
    else:
        print(f"chase cache after the matrix: {stats.hits} hits, {stats.misses} misses")
    print()

    # ------------------------------------------------------------------ #
    # 2. Warm in-process rerun: once the parent session's cache holds the
    #    chases (the first in-process pass fills it — a no-op when section 1
    #    already ran in-process), the batch decides without chasing anything.
    # ------------------------------------------------------------------ #
    session.decide_many(pairs, semantics="bag")  # fills the parent cache if --jobs kept it cold
    started = time.perf_counter()
    session.decide_many(pairs, semantics="bag")
    warm = (time.perf_counter() - started) * 1000
    print(f"warm bag rerun: {warm:.1f} ms (cache: {session.cache_stats().hits} hits)")
    print()

    # ------------------------------------------------------------------ #
    # 3. Per-item error capture: a chase budget of one step cannot finish
    #    Example 4.1's chases, but the failure stays inside its item.
    # ------------------------------------------------------------------ #
    report = session.decide_many(
        [(ex41.q1, ex41.q4), (ex41.q3, ex41.q4)], semantics="bag", max_steps=1
    )
    for item in report:
        print(item)
    print(report)


if __name__ == "__main__":
    main()
