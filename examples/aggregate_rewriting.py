#!/usr/bin/env python3
"""Reformulating grouping/aggregation queries under embedded dependencies.

Theorem 6.3 of the paper: equivalence of ``max``/``min`` queries reduces to
*set* equivalence of their cores, while equivalence of ``sum``/``count``
queries reduces to *bag-set* equivalence of their cores.  Consequently a
``MAX`` query may drop joins that a ``COUNT`` query must keep — this example
shows exactly that on a small sales schema, using Max-Min-C&B and
Sum-Count-C&B, and verifies the verdicts by evaluating the queries on a
concrete database instance.

Run with:  python examples/aggregate_rewriting.py
"""

from __future__ import annotations

from repro import (
    DatabaseInstance,
    equivalent_aggregate_queries_under_dependencies,
    evaluate_aggregate,
    parse_aggregate_query,
    parse_dependencies,
)
from repro.reformulation import reformulate_aggregate_query


def main() -> None:
    # Every sale references a store (inclusion dependency); stores are keyed
    # on their id and duplicate free.
    sigma = parse_dependencies(
        """
        sales(S, A) -> store(S, R)
        store(S, R1) & store(S, R2) -> R1 = R2
        """,
        set_valued=["store"],
    )

    max_query = parse_aggregate_query(
        "Q(S, max(A)) :- sales(S, A), store(S, R)"
    )
    count_query = parse_aggregate_query(
        "Q(S, count(A)) :- sales(S, A), store(S, R)"
    )
    max_no_join = parse_aggregate_query("Q(S, max(A)) :- sales(S, A)")
    count_no_join = parse_aggregate_query("Q(S, count(A)) :- sales(S, A)")

    print("dependencies:")
    for dependency in sigma:
        print("  ", dependency)
    print()

    for name, with_join, without_join in (
        ("max", max_query, max_no_join),
        ("count", count_query, count_no_join),
    ):
        equivalent = equivalent_aggregate_queries_under_dependencies(
            with_join, without_join, sigma
        )
        print(f"{name}-query with the store join: {with_join}")
        print(f"{name}-query without it         : {without_join}")
        print(f"  -> equivalent under Σ? {equivalent}")
        print()

    # Reformulation: Max-Min-C&B / Sum-Count-C&B pick the right core test
    # automatically.
    for query in (max_query, count_query):
        result = reformulate_aggregate_query(query, sigma, check_sigma_minimality=False)
        print(f"reformulations of {query} (core handled under {result.core_result.semantics}):")
        for reformulation in sorted(result.reformulations, key=lambda q: len(q.body)):
            print("   ", reformulation)
        print()

    # Sanity check on a concrete instance: the store join is harmless for max
    # but changes nothing for count either *here*, because the key makes the
    # join multiplicity preserving.  Duplicating a store row (violating the
    # key) shows what the dependency was protecting against.
    database = DatabaseInstance.from_dict(
        {"sales": [(1, 10), (1, 20), (2, 5)], "store": [(1, "east"), (2, "west")]}
    )
    print("on a database satisfying Σ:")
    print("  count with join   :", evaluate_aggregate(count_query, database))
    print("  count without join:", evaluate_aggregate(count_no_join, database))

    corrupted = DatabaseInstance.from_dict(
        {"sales": [(1, 10), (1, 20), (2, 5)],
         "store": [(1, "east"), (1, "east-dup"), (2, "west")]}
    )
    print("on a database violating the store key:")
    print("  count with join   :", evaluate_aggregate(count_query, corrupted))
    print("  count without join:", evaluate_aggregate(count_no_join, corrupted))


if __name__ == "__main__":
    main()
