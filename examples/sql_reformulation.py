#!/usr/bin/env python3
"""SQL in, Σ-minimal SQL reformulations out.

This example exercises the full pipeline the paper's title promises:

1. a schema is declared in SQL DDL; PRIMARY KEY / FOREIGN KEY constraints are
   translated into embedded dependencies (key egds, inclusion tgds) and into
   set-valuedness markers,
2. a SQL join query is translated to a conjunctive query together with the
   evaluation semantics the SQL standard assigns to it,
3. the appropriate C&B variant enumerates its equivalent reformulations,
4. the reformulations are rendered back to SQL.

The interesting observation (the reason bag-awareness matters in practice):
under set semantics *both* lookup joins are redundant, but whether they can
be dropped for the SQL (bag / bag-set) semantics depends on the keys — here
the foreign keys point at keyed, duplicate-free tables, so the joins are
multiplicity preserving and the optimizer may still drop them; remove the
PRIMARY KEY from ``customer`` and Bag-C&B keeps the join.

Run with:  python examples/sql_reformulation.py
"""

from __future__ import annotations

from repro import query_to_sql, schema_from_ddl
from repro.reformulation import chase_and_backchase
from repro.sql import translate_sql

DDL = """
CREATE TABLE customer (cid INT PRIMARY KEY, cname TEXT);
CREATE TABLE product (pid INT PRIMARY KEY, pname TEXT);
CREATE TABLE orders (
    oid INT,
    cid INT,
    pid INT,
    FOREIGN KEY (cid) REFERENCES customer (cid),
    FOREIGN KEY (pid) REFERENCES product (pid)
);
"""

QUERY = """
SELECT o.oid
FROM orders o, customer c, product p
WHERE o.cid = c.cid AND o.pid = p.pid
"""


def main() -> None:
    schema, dependencies = schema_from_ddl(DDL)
    print("schema:", schema)
    print("dependencies derived from the DDL:")
    for dependency in dependencies:
        print("  ", dependency)
    print("set-valued relations:", sorted(dependencies.set_valued_predicates))
    print()

    translated = translate_sql(QUERY, schema)
    print("input SQL  :", " ".join(QUERY.split()))
    print("as CQ query:", translated.query)
    print("SQL-standard evaluation semantics for this query:", translated.semantics)
    print()

    result = chase_and_backchase(
        translated.query, dependencies, translated.semantics,
        check_sigma_minimality=False,
    )
    print(f"universal plan: {result.universal_plan}")
    print(
        f"{result.candidates_examined} candidates examined, "
        f"{len(result.reformulations)} equivalent reformulations under "
        f"{result.semantics} semantics:"
    )
    for reformulation in sorted(result.reformulations, key=lambda q: len(q.body)):
        sql = query_to_sql(reformulation, schema, result.semantics)
        print(f"  [{len(reformulation.body)} subgoal(s)] {sql}")
    print()

    # Contrast with plain set semantics (what a DISTINCT query would allow).
    set_result = chase_and_backchase(
        translated.query, dependencies, "set", check_sigma_minimality=False
    )
    print(
        f"under set semantics (SELECT DISTINCT) there are "
        f"{len(set_result.reformulations)} equivalent reformulations; the shortest:"
    )
    shortest = min(set_result.reformulations, key=lambda q: len(q.body))
    print("  ", query_to_sql(shortest, schema, "set"))


if __name__ == "__main__":
    main()
