#!/usr/bin/env bash
# CI smoke for the `repro serve` daemon: a real process on a real port,
# driven by the scripted `repro client` sequence, shut down with SIGTERM,
# restarted on the same disk store to prove the warm-restart path.
#
# Asserts:
#   * the daemon prints its listening address and serves health/decide/stats;
#   * verdicts match the paper (Example 4.1: Q1 vs Q4 — set yes, bag no);
#   * SIGTERM exits 0 after printing the clean-shutdown line;
#   * a restarted daemon serves the same workload off the store file with
#     zero chase runs (store hits, not cold chases);
#   * a `--workers 2` daemon serves the same verdicts from its engine
#     processes, survives SIGKILL of one worker (respawn + next request
#     succeeds), and unlinks its shared-memory intern snapshot on shutdown.
#
# Run from the repository root:  bash examples/serve_smoke.sh

set -euo pipefail

WORKDIR="$(mktemp -d)"
trap 'rm -rf "$WORKDIR"' EXIT

cat > "$WORKDIR/deps.txt" <<'EOF'
p(X,Y) -> s(X,Z) & t(X,V,W)
p(X,Y) -> t(X,Y,W)
p(X,Y) -> r(X)
p(X,Y) -> u(X,Z) & t(X,Y,W)
s(X,Y) & s(X,Z) -> Y = Z
t(X,Y,Z) & t(X,Y,W) -> Z = W
EOF

Q1='Q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)'
Q4='Q4(X) :- p(X,Y)'
STORE="$WORKDIR/chase-store.jsonl"

# jq may be absent on minimal runners; this is the only JSON probing needed.
json_get() { # json_get <file> <dotted.path> (integer parts index lists)
    python - "$1" "$2" <<'PYEOF'
import json, sys
node = json.load(open(sys.argv[1]))
for part in sys.argv[2].split("."):
    node = node[int(part)] if isinstance(node, list) else node[part]
print(json.dumps(node))
PYEOF
}

start_daemon() { # start_daemon <logfile> [extra serve args...]
    local log="$1"; shift
    python -m repro serve --dependencies "$WORKDIR/deps.txt" \
        --set-valued s,t --port 0 --store "$STORE" "$@" > "$log" 2>&1 &
    DAEMON_PID=$!
    for _ in $(seq 1 50); do
        grep -q "listening on" "$log" && break
        sleep 0.2
    done
    grep -q "listening on" "$log" || { echo "FAIL: daemon never came up"; cat "$log"; exit 1; }
    PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' "$log" | head -1)
    echo "daemon pid=$DAEMON_PID port=$PORT"
}

stop_daemon() { # stop_daemon <logfile>
    kill -TERM "$DAEMON_PID"
    wait "$DAEMON_PID" || { echo "FAIL: daemon exited non-zero"; cat "$1"; exit 1; }
    grep -q "shut down cleanly" "$1" || { echo "FAIL: no clean-shutdown line"; cat "$1"; exit 1; }
}

client() { # client <op> [args...] -> writes JSON response to stdout
    python -m repro client "$@" --port "$PORT"
}

# ----------------------------------------------------------------------- #
# Round 1: cold daemon.  Health, the paper's verdicts, stats, clean stop.
# ----------------------------------------------------------------------- #
start_daemon "$WORKDIR/serve1.log"

client health > "$WORKDIR/health.json"
[ "$(json_get "$WORKDIR/health.json" result.status)" = '"ok"' ]

client decide --query "$Q1" --other "$Q4" --semantics set > "$WORKDIR/set.json"
[ "$(json_get "$WORKDIR/set.json" result.equivalent)" = "true" ]

client decide --query "$Q1" --other "$Q4" --semantics bag > "$WORKDIR/bag.json"
[ "$(json_get "$WORKDIR/bag.json" result.equivalent)" = "false" ]

# A structured error must come back as a response, not kill the daemon.
client decide --query 'broken((' --other "$Q4" > "$WORKDIR/err.json" && {
    echo "FAIL: error response should exit non-zero"; exit 1; } || true
[ "$(json_get "$WORKDIR/err.json" error.code)" = '"parse-error"' ]

client stats > "$WORKDIR/stats1.json"
COLD_RUNS=$(json_get "$WORKDIR/stats1.json" result.profile.runs)
WRITES=$(json_get "$WORKDIR/stats1.json" result.store.writes)
[ "$COLD_RUNS" -ge 2 ] || { echo "FAIL: expected cold chases, got runs=$COLD_RUNS"; exit 1; }
[ "$WRITES" -ge 2 ] || { echo "FAIL: expected store writes, got $WRITES"; exit 1; }

stop_daemon "$WORKDIR/serve1.log"
echo "round 1 OK: cold serve + clean shutdown (runs=$COLD_RUNS, store writes=$WRITES)"

# ----------------------------------------------------------------------- #
# Round 2: restart on the same store.  The same workload must be served
# from disk — store hits and zero chase runs.
# ----------------------------------------------------------------------- #
start_daemon "$WORKDIR/serve2.log"

client decide --query "$Q1" --other "$Q4" --semantics bag > "$WORKDIR/bag2.json"
[ "$(json_get "$WORKDIR/bag2.json" result.equivalent)" = "false" ]

client stats > "$WORKDIR/stats2.json"
WARM_RUNS=$(json_get "$WORKDIR/stats2.json" result.profile.runs)
HITS=$(json_get "$WORKDIR/stats2.json" result.store.hits)
[ "$WARM_RUNS" -eq 0 ] || { echo "FAIL: restart re-chased (runs=$WARM_RUNS)"; exit 1; }
[ "$HITS" -ge 2 ] || { echo "FAIL: expected store hits, got $HITS"; exit 1; }

stop_daemon "$WORKDIR/serve2.log"
echo "round 2 OK: warm restart served off the store (hits=$HITS, runs=$WARM_RUNS)"

# ----------------------------------------------------------------------- #
# Round 3: the multi-worker pool.  Two engine processes behind the same
# acceptor, warm off the same store; SIGKILL one worker mid-flight and the
# daemon must respawn it and keep serving; the shared-memory intern
# snapshot must be unlinked by the SIGTERM shutdown.
# ----------------------------------------------------------------------- #
start_daemon "$WORKDIR/serve3.log" --workers 2

grep -q "engine backend process (2 workers)" "$WORKDIR/serve3.log" \
    || { echo "FAIL: no process-backend line"; cat "$WORKDIR/serve3.log"; exit 1; }

client health > "$WORKDIR/health3.json"
[ "$(json_get "$WORKDIR/health3.json" result.backend)" = '"process"' ]
[ "$(json_get "$WORKDIR/health3.json" result.workers)" = "2" ]

client decide --query "$Q1" --other "$Q4" --semantics set > "$WORKDIR/set3.json"
[ "$(json_get "$WORKDIR/set3.json" result.equivalent)" = "true" ]

client stats > "$WORKDIR/stats3.json"
POOL_RUNS=$(json_get "$WORKDIR/stats3.json" result.profile.runs)
[ "$POOL_RUNS" -eq 0 ] || { echo "FAIL: workers re-chased a stored workload (runs=$POOL_RUNS)"; exit 1; }
VICTIM=$(json_get "$WORKDIR/stats3.json" result.workers.0.pid)
SHM_NAME=$(json_get "$WORKDIR/stats3.json" result.pool.intern_snapshot.shm_name | tr -d '"')
if [ -d /dev/shm ]; then
    [ -e "/dev/shm/${SHM_NAME#/}" ] || { echo "FAIL: shm snapshot $SHM_NAME not present while serving"; exit 1; }
fi

echo "killing worker pid=$VICTIM"
kill -9 "$VICTIM"

# The daemon must keep answering: respawn happens in the background, the
# surviving worker serves in the meantime.  Zero failed requests here.
for sem in set bag bag-set; do
    client decide --query "$Q1" --other "$Q4" --semantics "$sem" > "$WORKDIR/after-kill-$sem.json" \
        || { echo "FAIL: decide ($sem) failed after worker kill"; cat "$WORKDIR/after-kill-$sem.json"; exit 1; }
done
[ "$(json_get "$WORKDIR/after-kill-set.json" result.equivalent)" = "true" ]
[ "$(json_get "$WORKDIR/after-kill-bag.json" result.equivalent)" = "false" ]

# Pool bookkeeping: one crash, one respawn, two live workers again.
for _ in $(seq 1 50); do
    client stats > "$WORKDIR/stats4.json"
    [ "$(json_get "$WORKDIR/stats4.json" result.pool.workers)" = "2" ] && break
    sleep 0.2
done
[ "$(json_get "$WORKDIR/stats4.json" result.pool.workers)" = "2" ] \
    || { echo "FAIL: pool never healed to 2 workers"; cat "$WORKDIR/stats4.json"; exit 1; }
RESPAWNS=$(json_get "$WORKDIR/stats4.json" result.pool.respawns)
[ "$RESPAWNS" -ge 1 ] || { echo "FAIL: expected a respawn, got $RESPAWNS"; exit 1; }

stop_daemon "$WORKDIR/serve3.log"
if [ -d /dev/shm ] && [ -e "/dev/shm/${SHM_NAME#/}" ]; then
    echo "FAIL: shm snapshot $SHM_NAME leaked past shutdown"; exit 1
fi
echo "round 3 OK: 2-worker pool survived a worker kill (respawns=$RESPAWNS) and unlinked $SHM_NAME"
echo "serve smoke PASSED"
