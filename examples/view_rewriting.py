#!/usr/bin/env python3
"""Rewriting queries over materialised views, the bag-aware way.

The paper's introduction argues that bag semantics "becomes imperative in
presence of materialized views": a view defined without DISTINCT is a bag
whose multiplicities mirror its defining query, while a DISTINCT view throws
multiplicities away.  This example rewrites an orders/customer join query
over three views and shows which rewritings survive under which semantics,
including the counterexample databases that refute the rejected ones.

Run with:  python examples/view_rewriting.py
"""

from __future__ import annotations

from repro import (
    ViewDefinition,
    ViewSet,
    find_counterexample,
    parse_dependencies,
    parse_query,
    rewrite_query_using_views,
)
from repro.views import is_correct_rewriting

DEPENDENCIES = parse_dependencies(
    """
    orders(O, C, P) -> customer(C, N)
    customer(C, N1) & customer(C, N2) -> N1 = N2
    """,
    set_valued=["customer"],
)

QUERY = parse_query("Q(O) :- orders(O, C, P), customer(C, N)")

VIEWS = ViewSet(
    [
        # Multiplicity preserving: the customer lookup is pinned by the key.
        ViewDefinition(
            "v_order_customer",
            parse_query("V(O, C) :- orders(O, C, P), customer(C, N)"),
        ),
        # Multiplicity changing: joins in an unconstrained shipment log.
        ViewDefinition(
            "v_order_log",
            parse_query("V(O, C) :- orders(O, C, P), log(O, L)"),
        ),
        # A DISTINCT projection: fine for DISTINCT queries, loses duplicates otherwise.
        ViewDefinition(
            "v_customers_with_orders",
            parse_query("V(C) :- orders(O, C, P)"),
            distinct=True,
        ),
    ]
)


def main() -> None:
    print("query:", QUERY)
    print("views:")
    for view in VIEWS:
        print("  ", view)
    print()

    for semantics in ("set", "bag-set", "bag"):
        result = rewrite_query_using_views(
            QUERY, VIEWS, DEPENDENCIES, semantics, total_only=True
        )
        print(f"[{semantics}] {len(result.rewritings)} total rewriting(s):")
        for rewriting in result.rewritings:
            print("   ", rewriting, "   (expansion:", result.expansion_of(rewriting), ")")
        print()

    # Why is the noisy view rejected?  Ask for a counterexample database.
    noisy_rewriting = parse_query("Q(O) :- v_order_log(O, C)")
    expansion = VIEWS.expand(noisy_rewriting)
    print("expansion of the rejected rewriting:", expansion)
    print(
        "correct under bag semantics?",
        is_correct_rewriting(noisy_rewriting, QUERY, VIEWS, DEPENDENCIES, "bag"),
    )
    witness = find_counterexample(expansion, QUERY, DEPENDENCIES, "bag-set")
    if witness is not None:
        print("a database separating the expansion from the query:")
        print(witness)

    # The DISTINCT projection view: usable for a DISTINCT (set) query only.
    projection_query = parse_query("Qc(C) :- orders(O, C, P)")
    for semantics in ("set", "bag-set"):
        result = rewrite_query_using_views(
            projection_query, VIEWS, DEPENDENCIES, semantics, total_only=True
        )
        print(
            f"[{semantics}] rewritings of the projection query using the DISTINCT view:",
            [str(r) for r in result.rewritings] or "none",
        )


if __name__ == "__main__":
    main()
