#!/usr/bin/env python3
"""Serving: a long-lived equivalence daemon and its line client.

``repro serve`` keeps one :class:`repro.Session` — chase cache, plan cache,
interned terms — alive across requests, so the expensive sound chases of a
workload are paid once and every later request is answered from warm state.
This example:

1. starts the daemon in-process on an ephemeral port over Example 4.1's
   dependencies (the same server the ``repro serve`` CLI runs),
2. connects a :class:`ReproClient` and checks ``health``,
3. decides the paper's headline pair Q1 vs Q4 under all three semantics,
4. repeats a decision and reads ``stats`` to show it was served from the
   chase cache without re-chasing,
5. ships a small batch, then shuts the daemon down cleanly.

Run with:  python examples/serve_client.py

Against a standalone daemon, steps 1 and 6 are replaced by::

    repro serve --dependencies deps.txt --port 7464 --store chase-store.jsonl
    repro client decide --port 7464 --query "Q1(X) :- ..." --other "Q4(X) :- ..."
"""

from __future__ import annotations

from repro.paperlib import example_4_1
from repro.serve import ReproClient, ReproServer
from repro.session import Session


def main() -> None:
    ex41 = example_4_1()
    from repro.datalog import render_query

    q1, q4 = render_query(ex41.q1), render_query(ex41.q4)

    # ------------------------------------------------------------------ #
    # 1. One process-wide Session, owned by the server.  port=0 picks an
    #    ephemeral port; a real deployment would pass --store too, so the
    #    chase results survive restarts.
    # ------------------------------------------------------------------ #
    server = ReproServer(Session(dependencies=ex41.dependencies), port=0)
    with server.start_in_thread() as handle:
        print(f"daemon listening on {handle.host}:{handle.port}")

        with ReproClient(handle.host, handle.port) as client:
            # -------------------------------------------------------- #
            # 2. health: semantics on offer, Σ size, store attachment.
            # -------------------------------------------------------- #
            health = client.health()
            print(f"health: {health['status']}, semantics={health['semantics']}")

            # -------------------------------------------------------- #
            # 3. The paper's Example 4.1 verdicts over the wire.
            # -------------------------------------------------------- #
            for semantics in ("set", "bag-set", "bag"):
                verdict = client.decide(q1, q4, semantics)
                print(f"Q1 vs Q4 under {semantics:>7}: equivalent={verdict['equivalent']}")

            # -------------------------------------------------------- #
            # 4. Warm state: the repeat decision chases nothing.
            # -------------------------------------------------------- #
            before = client.stats()
            client.decide(q1, q4, "bag")
            after = client.stats()
            print(
                "repeat decide: "
                f"+{after['chase_cache']['hits'] - before['chase_cache']['hits']} cache hits, "
                f"+{after['profile']['runs'] - before['profile']['runs']} chase runs"
            )

            # -------------------------------------------------------- #
            # 5. Batches amortize one connection over many pairs.
            # -------------------------------------------------------- #
            report = client.batch([[q1, q4], [q1, q1]], "set")
            print(f"batch: ok={report['ok_count']} errors={report['error_count']}")

    # 6. Leaving the with-block stopped the daemon and its engine thread.
    print("daemon shut down cleanly")


if __name__ == "__main__":
    main()
