#!/usr/bin/env python3
"""Quickstart: deciding query equivalence under embedded dependencies.

This walks through the paper's motivating Example 4.1 end to end, using the
unified :class:`repro.Session` engine:

1. declare the dependencies Σ (tgds, key egds, set-enforced relations),
2. open a Session over Σ — it owns the semantics registry and chase cache,
3. state the queries Q1 and Q4 in rule notation,
4. ask whether they are equivalent under set, bag-set, and bag semantics,
5. inspect the sound chase results the verdicts are based on (all served
   from the session cache — nothing is re-chased),
6. double-check the negative verdicts on the paper's counterexample database.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import DatabaseInstance, Session, evaluate, parse_dependencies, parse_query
from repro.semantics import Semantics


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. The dependencies of Example 4.1.  Relations S and T are required
    #    to be set valued in every instance (the paper encodes this with
    #    tuple-ID egds; here it is a marker on the dependency set).
    # ------------------------------------------------------------------ #
    sigma = parse_dependencies(
        """
        p(X,Y) -> s(X,Z) & t(X,V,W)
        p(X,Y) -> t(X,Y,W)
        p(X,Y) -> r(X)
        p(X,Y) -> u(X,Z) & t(X,Y,W)
        s(X,Y) & s(X,Z) -> Y = Z
        t(X,Y,Z) & t(X,Y,W) -> Z = W
        """,
        set_valued=["s", "t"],
    )

    # ------------------------------------------------------------------ #
    # 2. One Session per workload: it binds Σ once and then serves every
    #    chase, decision, and reformulation through a shared cache.
    # ------------------------------------------------------------------ #
    session = Session(dependencies=sigma)

    # ------------------------------------------------------------------ #
    # 3. The queries.
    # ------------------------------------------------------------------ #
    q4 = parse_query("Q4(X) :- p(X,Y)")
    q1 = parse_query("Q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)")

    print("Q4:", q4)
    print("Q1:", q1)
    print()

    # ------------------------------------------------------------------ #
    # 4. Equivalence under all three semantics (Theorems 2.2, 6.1, 6.2).
    #    decide_all also asserts the Proposition 6.1 chain on its verdicts.
    # ------------------------------------------------------------------ #
    verdicts = session.decide_all(q1, q4)
    for semantics, verdict in verdicts.items():
        status = "equivalent" if verdict else "NOT equivalent"
        print(f"under {semantics!s:8s}: Q1 and Q4 are {status}")
    print()

    # ------------------------------------------------------------------ #
    # 5. The sound chase results behind those verdicts (Section 4).  The
    #    session already chased these queries for the decisions above, so
    #    every call below is a cache hit.
    # ------------------------------------------------------------------ #
    for semantics in (Semantics.SET, Semantics.BAG_SET, Semantics.BAG):
        chased = session.chase(q4, semantics)
        print(f"sound {semantics!s:8s} chase of Q4: {chased.query}")
    stats = session.cache_stats()
    print(f"(chase cache: {stats.hits} hits, {stats.misses} misses)")
    print()

    # ------------------------------------------------------------------ #
    # 6. The counterexample database of Example 4.1: it satisfies Σ, yet the
    #    two queries return different bags.
    # ------------------------------------------------------------------ #
    database = DatabaseInstance.from_dict(
        {
            "p": [(1, 2)],
            "r": [(1,)],
            "s": [(1, 3)],
            "t": [(1, 2, 4)],
            "u": [(1, 5), (1, 6)],
        }
    )
    print("on the counterexample database D:")
    print("  Q4(D, bag)     =", evaluate(q4, database, "bag"))
    print("  Q1(D, bag)     =", evaluate(q1, database, "bag"))
    print("  Q4(D, bag-set) =", evaluate(q4, database, "bag-set"))
    print("  Q1(D, bag-set) =", evaluate(q1, database, "bag-set"))


if __name__ == "__main__":
    main()
