#!/usr/bin/env python3
"""Exploring the machinery of Section 4: regularization, assignment-fixing
tgds, sound vs. unsound chase steps, and the Σ^max algorithms.

The script walks through the ingredients the sound chase is built from, on
the paper's own Examples 4.1 and 4.6:

* regularizing a tgd whose conclusion splits into independent parts,
* testing tgds for the assignment-fixing property (Definition 4.3) and
  contrasting it with the stricter key-based notion (Definition 5.1),
* running the sound chase under all three semantics and inspecting the
  per-step provenance records,
* computing the maximal subset of Σ satisfied by the chase result's
  canonical database (Algorithm Max-Bag-Σ-Subset).

Run with:  python examples/chase_exploration.py
"""

from __future__ import annotations

from repro import Session, parse_query
from repro.chase import (
    compare_with_key_based,
    max_bag_set_sigma_subset,
    max_bag_sigma_subset,
)
from repro.dependencies import TGD, is_regularized, regularize_tgd
from repro.paperlib import example_4_1, example_4_6
from repro.semantics import Semantics


def show_regularization(example) -> None:
    print("== regularization (Definition 4.1) ==")
    for dependency in example.dependencies:
        if not isinstance(dependency, TGD):
            continue
        status = "regularized" if is_regularized(dependency) else "NOT regularized"
        print(f"  {dependency}   [{status}]")
        if not is_regularized(dependency):
            for part in regularize_tgd(dependency):
                print(f"      -> {part}")
    print()


def show_assignment_fixing(example, query) -> None:
    print("== assignment-fixing vs key-based tgds (Definitions 4.3 / 5.1) ==")
    for dependency in example.dependencies:
        if not isinstance(dependency, TGD):
            continue
        for part in regularize_tgd(dependency):
            comparison = compare_with_key_based(query, part, example.dependencies)
            print(
                f"  {part}\n"
                f"      assignment fixing w.r.t. {query.head_predicate}: "
                f"{comparison['assignment_fixing']}   key based: {comparison['key_based']}"
            )
    print()


def show_sound_chase(example, query) -> None:
    print(f"== sound chase of {query} ==")
    session = Session(dependencies=example.dependencies)
    for semantics in (Semantics.SET, Semantics.BAG_SET, Semantics.BAG):
        result = session.chase(query, semantics)
        print(f"  [{semantics}] {result.query}")
        for record in result.steps:
            print(f"      {record}")
    print()


def show_sigma_subsets(example, query) -> None:
    print("== maximal satisfied dependency subsets (Theorem 5.3) ==")
    bag = max_bag_sigma_subset(query, example.dependencies)
    bag_set = max_bag_set_sigma_subset(query, example.dependencies)
    print(f"  Σ^max_B : removed {[d.name for d in bag.removed]}")
    print(f"  Σ^max_BS: removed {[d.name for d in bag_set.removed]}")
    print()


def main() -> None:
    ex41 = example_4_1()
    q4 = ex41.q4
    print("######## Example 4.1 ########\n")
    show_regularization(ex41)
    show_assignment_fixing(ex41, q4)
    show_sound_chase(ex41, q4)
    show_sigma_subsets(ex41, q4)

    ex46 = example_4_6()
    print("######## Example 4.6 / 4.8 ########\n")
    query = ex46.query
    show_assignment_fixing(ex46, query)
    show_sound_chase(ex46, query)

    print("Chasing a different query against the same Σ changes the verdicts")
    print("(assignment-fixing is query dependent, Example 5.1):")
    other = parse_query("Q(X) :- p(X,Y), u(X,Z)")
    show_sigma_subsets(ex41, other)


if __name__ == "__main__":
    main()
