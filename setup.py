"""Setuptools entry point.

All project metadata lives in ``pyproject.toml``; this stub is kept
alongside it so the package can be installed editable in offline
environments where the ``wheel`` package (which every pip editable-install
path ultimately needs) is unavailable::

    python setup.py develop          # inside a virtualenv
    python setup.py develop --user   # system interpreter (no venv)

(or skip installation and run with ``PYTHONPATH=src``).
"""

from setuptools import setup

setup()
