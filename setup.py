"""Setuptools entry point.

Kept alongside ``pyproject.toml`` so the package can be installed editable in
offline environments where the ``wheel`` package (needed for PEP 660
editable installs) is unavailable::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
