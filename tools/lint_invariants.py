#!/usr/bin/env python
"""Codebase invariant linter for the ``repro`` source tree.

The core term representation is hash-consed: ``Variable``, ``Constant``,
``Atom`` and ``EqualityAtom`` intern their instances so identity equals
equality and precomputed signatures stay sound.  Those guarantees are easy
to break from a distance — a subclass that skips the intern table, a
``__new__`` call that allocates around it, an ``object.__setattr__`` that
mutates a "frozen" instance — and such breakage surfaces far from its
cause, as a wrong chase result rather than a crash.  This linter makes the
invariants explicit and machine-checked:

* **R1 interned-subclass** — nothing outside ``core/terms.py`` and
  ``core/atoms.py`` may subclass an interned class.
* **R2 intern-bypass** — nothing outside those files may call
  ``Variable.__new__`` / ``Constant.__new__`` / ``Atom.__new__`` /
  ``EqualityAtom.__new__`` (or allocate them via ``object.__new__``).
* **R3 frozen-escape** — ``object.__setattr__`` / ``object.__delattr__``
  (the only way to mutate a frozen dataclass) are allowed only in the
  modules that legitimately build frozen objects field-by-field.
* **R4 frozen-drift** — ``core/reference.py`` and ``chase/reference.py``
  are differential-testing oracles and must never change silently; their
  content checksums are pinned here.
* **R5 forbidden-import** — ``networkx`` was removed as a dependency; no
  module under ``src/repro`` may import it again.

Run as ``python tools/lint_invariants.py`` from the repository root (CI
does); exits 1 if any invariant is violated.  The ``lint_paths`` function
is the testable API.
"""

from __future__ import annotations

import ast
import hashlib
import sys
from dataclasses import dataclass
from pathlib import Path

#: Classes whose construction must go through the intern tables.
INTERNED_CLASSES = frozenset({"Variable", "Constant", "Atom", "EqualityAtom"})

#: The only modules allowed to subclass or allocate interned classes.
INTERNED_HOME = frozenset(
    {
        "src/repro/core/terms.py",
        "src/repro/core/atoms.py",
    }
)

#: Modules that legitimately use ``object.__setattr__``/``__delattr__`` to
#: initialise frozen dataclasses field-by-field.
FROZEN_MUTATORS = frozenset(
    {
        "src/repro/core/terms.py",
        "src/repro/core/atoms.py",
        "src/repro/core/query.py",
        "src/repro/core/plan.py",
        "src/repro/core/aggregate.py",
        "src/repro/dependencies/base.py",
        "src/repro/schema/keys.py",
    }
)

#: Frozen differential-testing oracles: path -> pinned sha256 of contents.
#: Recompute deliberately (``sha256sum <path>``) when a change to a
#: reference engine is intended, and say so in the commit message.
FROZEN_CHECKSUMS = {
    "src/repro/core/reference.py": (
        "766a72d481452dcaf1d3a74c2aab180e78bf8a5d3098c7b07b1086283a523216"
    ),
    "src/repro/chase/reference.py": (
        "7b44a996a59791d333b7efce1ef5980ca02e30150e95ddbfc325c872136a8031"
    ),
}

#: Imports banned under ``src/repro`` (removed third-party dependencies).
FORBIDDEN_IMPORTS = frozenset({"networkx"})


@dataclass(frozen=True)
class Finding:
    """One invariant violation: ``rule`` is stable, ``where`` is clickable."""

    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def _base_name(node: ast.expr) -> str | None:
    """The trailing identifier of a base-class expression, if any."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


class _InvariantVisitor(ast.NodeVisitor):
    def __init__(self, rel_path: str, findings: list[Finding]):
        self.rel_path = rel_path
        self.findings = findings
        self.in_interned_home = rel_path in INTERNED_HOME
        self.may_mutate_frozen = rel_path in FROZEN_MUTATORS

    def _flag(self, rule: str, node: ast.AST, message: str) -> None:
        line = getattr(node, "lineno", 0)
        self.findings.append(Finding(rule, self.rel_path, line, message))

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        if not self.in_interned_home:
            for base in node.bases:
                name = _base_name(base)
                if name in INTERNED_CLASSES:
                    self._flag(
                        "interned-subclass",
                        base,
                        f"class {node.name} subclasses interned class {name}; "
                        "subclasses escape the intern table and break "
                        "identity-is-equality",
                    )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        if not self.in_interned_home:
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "__new__":
                owner = _base_name(func.value)
                if owner in INTERNED_CLASSES:
                    self._flag(
                        "intern-bypass",
                        node,
                        f"{owner}.__new__ allocates around the intern table",
                    )
                elif owner == "object" and node.args:
                    target = _base_name(node.args[0])
                    if target in INTERNED_CLASSES:
                        self._flag(
                            "intern-bypass",
                            node,
                            f"object.__new__({target}) allocates around the "
                            "intern table",
                        )
        if not self.may_mutate_frozen:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in ("__setattr__", "__delattr__")
                and _base_name(func.value) == "object"
            ):
                self._flag(
                    "frozen-escape",
                    node,
                    f"object.{func.attr} mutates frozen instances; only "
                    "allowlisted constructor modules may do this",
                )
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root in FORBIDDEN_IMPORTS:
                self._flag(
                    "forbidden-import",
                    node,
                    f"import of removed dependency {root!r}",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".", 1)[0]
        if node.level == 0 and root in FORBIDDEN_IMPORTS:
            self._flag(
                "forbidden-import",
                node,
                f"import of removed dependency {root!r}",
            )
        self.generic_visit(node)


def lint_paths(
    root: Path,
    *,
    frozen_checksums: dict[str, str] | None = None,
) -> list[Finding]:
    """Lint every Python file under ``root / src/repro``; return findings.

    *frozen_checksums* overrides :data:`FROZEN_CHECKSUMS` (tests pass ``{}``
    to exercise the AST rules against synthetic trees that have no frozen
    files).
    """
    checksums = FROZEN_CHECKSUMS if frozen_checksums is None else frozen_checksums
    findings: list[Finding] = []
    source_root = root / "src" / "repro"
    for path in sorted(source_root.rglob("*.py")):
        rel_path = path.relative_to(root).as_posix()
        try:
            tree = ast.parse(path.read_text(encoding="utf-8"), filename=rel_path)
        except SyntaxError as exc:
            findings.append(
                Finding("syntax-error", rel_path, exc.lineno or 0, str(exc.msg))
            )
            continue
        _InvariantVisitor(rel_path, findings).visit(tree)
    for rel_path, expected in sorted(checksums.items()):
        path = root / rel_path
        if not path.exists():
            findings.append(
                Finding("frozen-drift", rel_path, 0, "pinned frozen file is missing")
            )
            continue
        actual = hashlib.sha256(path.read_bytes()).hexdigest()
        if actual != expected:
            findings.append(
                Finding(
                    "frozen-drift",
                    rel_path,
                    0,
                    f"content checksum {actual[:12]}… does not match the pin "
                    f"{expected[:12]}…; reference engines are frozen oracles — "
                    "if the change is intended, update FROZEN_CHECKSUMS "
                    "deliberately",
                )
            )
    return findings


def main(argv: list[str] | None = None) -> int:
    root = Path(argv[0]) if argv else Path(__file__).resolve().parent.parent
    findings = lint_paths(root)
    for finding in findings:
        print(finding.render())
    if findings:
        print(f"lint_invariants: {len(findings)} violation(s)")
        return 1
    print("lint_invariants: all invariants hold")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
