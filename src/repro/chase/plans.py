"""Per-Σ compiled match plans, cached across chase runs.

A chase run probes the same dependency premises and conclusions against the
evolving query body every round, and the same Σ is typically chased many
times — every equivalence decision chases both inputs, a C&B run chases
dozens of candidates, and every assignment-fixing verdict (Definition 4.3)
runs a nested set chase under the same regularized Σ.  This module compiles
each dependency's atoms into :class:`~repro.core.plan.MatchPlan` int plans
**once per Σ** and caches the result:

* :class:`TGDPlan` / :class:`EGDPlan` — one dependency's compiled premise
  (and, for tgds, conclusion) plus its premise predicate set (consumed by
  the :class:`~repro.chase.delta.TriggerIndex`);
* :class:`SigmaPlans` — one regularized dependency list's plans, split by
  kind exactly the way the drivers split dependencies, plus the
  premise-predicate trigger maps shared by every run's ``TriggerIndex``;
* :class:`PlanCache` — a bounded LRU keyed by the
  :attr:`~repro.dependencies.base.DependencySet.fingerprint` of Σ (plus the
  dependency display names, which the fingerprint deliberately drops but
  which appear verbatim in step records, and the ``regularize`` flag).

The cache also amortizes regularization itself: a hit returns the already
regularized dependency list, so the nested Definition 4.3 test chases stop
re-regularizing Σ on every verdict.  Regularization is deterministic, so a
cached entry is interchangeable with a fresh one — the applied step
sequences stay byte-identical to the frozen reference drivers.

A process-wide default cache (:func:`default_plan_cache`) serves module
level chase calls; a :class:`~repro.session.Session` owns a reference to it
(or to an injected instance) and surfaces its hit/miss statistics.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

from ..core.plan import MatchPlan, shared_slot_links
from ..core.terms import Term
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..dependencies.regularize import regularize_dependencies


class TGDPlan:
    """Compiled premise and conclusion plans of one tgd.

    ``conclusion_links`` are the ``(conclusion_slot, premise_slot)`` pairs of
    the tgd's shared (universal, conclusion-occurring) variables: a completed
    premise match seeds the conclusion plan's slot array through them, so the
    applicability probe (can this match be extended to the conclusion?) runs
    entirely at the binding level — see
    :func:`repro.core.homomorphism.has_match_from_binding`.
    """

    __slots__ = ("tgd", "premise", "conclusion", "conclusion_links", "premise_predicates")

    def __init__(self, tgd: TGD):
        self.tgd = tgd
        self.premise = MatchPlan(tgd.premise)
        self.conclusion = MatchPlan(tgd.conclusion)
        self.conclusion_links = shared_slot_links(self.premise, self.conclusion)
        self.premise_predicates = frozenset(a.predicate for a in tgd.premise)


class EGDPlan:
    """Compiled premise plan of one egd.

    ``equality_codes`` compile the egd's equalities for the binding-level
    trigger scan: one ``(left_slot, left_term, right_slot, right_term)``
    tuple per equality, where a slot ``>= 0`` reads the term's image from
    the premise match's slot arrays and ``-1`` means the term maps to
    itself (a constant, or a variable not occurring in the premise).
    """

    __slots__ = ("egd", "premise", "equality_codes", "premise_predicates")

    def __init__(self, egd: EGD):
        self.egd = egd
        self.premise = MatchPlan(egd.premise)
        slot_of = self.premise.slot_of
        self.equality_codes: tuple[tuple[int, Term, int, Term], ...] = tuple(
            (
                slot_of.get(equality.left.uid, -1),
                equality.left,
                slot_of.get(equality.right.uid, -1),
                equality.right,
            )
            for equality in egd.equalities
        )
        self.premise_predicates = frozenset(a.predicate for a in egd.premise)


def _trigger_map(
    plans: "list[EGDPlan] | list[TGDPlan]",
) -> dict[str, tuple[int, ...]]:
    """Premise predicate → positions of the dependencies mentioning it.

    The per-run :class:`~repro.chase.delta.TriggerIndex` shares this map
    read-only across every run under the same Σ.
    """
    by_predicate: dict[str, list[int]] = {}
    for position, plan in enumerate(plans):
        for predicate in plan.premise_predicates:
            by_predicate.setdefault(predicate, []).append(position)
    return {predicate: tuple(ids) for predicate, ids in by_predicate.items()}


class SigmaPlans:
    """Compiled plans for one (optionally regularized) dependency list."""

    __slots__ = (
        "items",
        "egds",
        "tgds",
        "egd_plans",
        "tgd_plans",
        "egd_trigger_map",
        "tgd_trigger_map",
        "_sigma",
    )

    def __init__(self, dependencies: Iterable[Dependency], *, regularize: bool = True):
        items = list(dependencies)
        if regularize:
            items = regularize_dependencies(items)
        self.items: list[Dependency] = items
        self.egds: list[EGD] = [d for d in items if isinstance(d, EGD)]
        self.tgds: list[TGD] = [d for d in items if isinstance(d, TGD)]
        self.egd_plans: list[EGDPlan] = [EGDPlan(egd) for egd in self.egds]
        self.tgd_plans: list[TGDPlan] = [TGDPlan(tgd) for tgd in self.tgds]
        self.egd_trigger_map = _trigger_map(self.egd_plans)
        self.tgd_trigger_map = _trigger_map(self.tgd_plans)
        self._sigma: DependencySet | None = None

    def dependency_set(self) -> DependencySet:
        """The compiled items wrapped as a :class:`DependencySet`, memoized.

        Repeated callers under the same cached plans (every
        ``is_sound_chase_step`` of a sigma-subset scan, every nested
        Definition 4.3 test chase) share one wrapper — and through it one
        memoized fingerprint — instead of re-wrapping the list per call.
        Set-valued predicate annotations are deliberately not carried: the
        wrapper feeds nested *set*-semantics test chases, which ignore them.
        """
        sigma = self._sigma
        if sigma is None:
            sigma = DependencySet(self.items)
            self._sigma = sigma
        return sigma


class PlanCache:
    """A bounded LRU of :class:`SigmaPlans` per dependency set.

    Keys combine Σ's memoized fingerprint with the dependency display names
    (two Σs equal up to names must not share plans — step records print the
    names) and the driver's ``regularize`` flag.  ``hits`` / ``misses`` /
    ``evictions`` mirror the chase cache's counters; the chase drivers fold
    the per-run deltas into their :class:`~repro.chase.profile.ChaseProfile`
    as ``plans_reused`` / ``plans_compiled``.
    """

    __slots__ = ("maxsize", "_entries", "hits", "misses", "evictions")

    def __init__(self, maxsize: int = 256):
        if maxsize < 1:
            raise ValueError(f"plan cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, SigmaPlans] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def plans_for(
        self,
        dependencies: DependencySet | Iterable[Dependency],
        *,
        regularize: bool = True,
    ) -> SigmaPlans:
        """The compiled plans of *dependencies*, compiling on first use."""
        sigma = DependencySet.coerce(dependencies)
        key = (
            sigma.fingerprint,
            tuple(d.name for d in sigma.dependencies),
            regularize,
        )
        entries = self._entries
        plans = entries.get(key)
        if plans is not None:
            entries.move_to_end(key)
            self.hits += 1
            return plans
        self.misses += 1
        plans = SigmaPlans(sigma.dependencies, regularize=regularize)
        entries[key] = plans
        while len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.evictions += 1
        return plans

    def snapshot(self) -> tuple[int, int]:
        """The current ``(hits, misses)`` pair, for per-run delta accounting."""
        return (self.hits, self.misses)

    def invalidate(self) -> None:
        """Drop every compiled plan (counters survive)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PlanCache(size={len(self._entries)}/{self.maxsize}, "
            f"hits={self.hits}, misses={self.misses})"
        )


#: The process-wide cache used when a caller does not supply one — plans,
#: like the term intern tables, are process-level state.
_DEFAULT_PLAN_CACHE = PlanCache()


def default_plan_cache() -> PlanCache:
    """The process-wide :class:`PlanCache` shared by the chase drivers."""
    return _DEFAULT_PLAN_CACHE
