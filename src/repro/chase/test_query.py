"""Associated test queries (Definition 4.2 of the paper).

Given a CQ query Q, a regularized tgd σ : φ(X̄,Ȳ) → ∃Z̄ ψ(X̄,Z̄) applicable to
Q via homomorphism h, and a substitution θ replacing every existential
variable by a fresh one, the *associated test query* is

    Q^{σ,h,θ}(Ā) :- body(Q) ∧ ψ(h(X̄), Z̄) ∧ ψ(h(X̄), θ(Z̄))

— the body of Q extended with *two* copies of the instantiated conclusion,
one using fresh existentials Z̄ and one using a second, disjoint set θ(Z̄).
The tgd is *assignment fixing* with respect to Q and h (Definition 4.3)
exactly when the set chase of the test query identifies each pair
(Zi, θ(Zi)), i.e. at most one of the two survives in the terminal chase
result.  When σ has no existential variables the two copies coincide and the
test query degenerates to an ordinary chase step (Equation 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import FreshVariableFactory, Term, Variable
from ..dependencies.base import TGD


@dataclass(frozen=True)
class AssociatedTestQuery:
    """The test query Q^{σ,h,θ} together with the variable pairs to monitor."""

    query: ConjunctiveQuery
    #: For each existential variable of the tgd: the (Zi, θ(Zi)) pair used in
    #: the two conclusion copies.
    existential_pairs: tuple[tuple[Variable, Variable], ...]
    first_copy: tuple[Atom, ...]
    second_copy: tuple[Atom, ...]


def associated_test_query(
    query: ConjunctiveQuery, tgd: TGD, homomorphism: Mapping[Term, Term]
) -> AssociatedTestQuery:
    """Build the associated test query for (*query*, *tgd*, *homomorphism*).

    The existential variables of the tgd are renamed to fresh variables Z̄
    (so the "w.l.o.g. Q has none of the variables V̄" assumption of the paper
    holds by construction), and θ maps them to a second set of fresh
    variables.  Both copies of the conclusion are appended to the query body;
    for a full tgd both copies coincide and the duplicate atoms are dropped.
    """
    existential = tgd.existential_variables()
    used_names = {v.name for v in query.all_variables()}
    used_names |= {v.name for v in tgd.all_variables()}
    factory = FreshVariableFactory(used_names)

    z_vars = {var: factory(hint=var.name) for var in existential}
    theta_vars = {var: factory(hint=f"{var.name}_theta") for var in existential}

    base_substitution: dict[Term, Term] = dict(homomorphism)
    first_substitution = dict(base_substitution)
    first_substitution.update(z_vars.items())
    second_substitution = dict(base_substitution)
    second_substitution.update(theta_vars.items())

    first_copy = tuple(atom.substitute(first_substitution) for atom in tgd.conclusion)
    second_copy = tuple(atom.substitute(second_substitution) for atom in tgd.conclusion)

    new_atoms: list[Atom] = list(first_copy)
    if existential:
        new_atoms.extend(second_copy)
    else:
        # Full tgd: Equation 3 — a single copy, duplicates dropped below.
        second_copy = first_copy
    body = list(query.body) + [atom for atom in new_atoms if True]

    # Drop literal duplicates introduced by a full tgd (Equation 3).
    deduplicated: list[Atom] = []
    seen: set[Atom] = set()
    for atom in body:
        if atom in query.body or atom not in seen:
            deduplicated.append(atom)
            seen.add(atom)

    test = ConjunctiveQuery(query.head_predicate, query.head_terms, tuple(deduplicated))
    pairs = tuple((z_vars[var], theta_vars[var]) for var in existential)
    return AssociatedTestQuery(test, pairs, first_copy, second_copy)
