"""Frozen pre-delta chase loops, kept as a correctness and speed baseline.

These are the round-based chase drivers as they existed before the indexed
homomorphism engine and the delta trigger index: every round re-enumerates
every dependency's homomorphisms against the entire current query with the
plain backtracking search of :mod:`repro.core.reference`, and every
assignment-fixing verdict re-chases its Definition 4.3 test query from
scratch.

They exist so that

* tests can assert the accelerated drivers produce *byte-identical step
  records* (``sound_chase`` / ``set_chase`` vs their ``_reference``
  counterparts) on the paper fixtures and on randomized workloads, and
* ``benchmarks/bench_chase_scaling.py`` can measure the cold-path speedup
  of the accelerated chase against the pre-PR behaviour.

Like :mod:`repro.core.reference`, this module is deliberately frozen — it
must keep the old behaviour *and the old cost profile*, so do not "fix" it
to use indexes, delta tracking, or memoization.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.query import ConjunctiveQuery
from ..core.reference import find_homomorphism_reference, iter_homomorphisms_reference
from ..core.terms import Term
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..dependencies.regularize import regularize_dependencies
from ..exceptions import ChaseNonTerminationError
from ..semantics import Semantics
from .set_chase import DEFAULT_MAX_STEPS, ChaseResult
from .sound_chase import _split
from .steps import ChaseStepRecord, apply_egd_step, apply_tgd_step, deduplicate_body
from .test_query import associated_test_query


def _iter_applicable_tgd_homomorphisms(query: ConjunctiveQuery, tgd: TGD):
    for hom in iter_homomorphisms_reference(tgd.premise, query.body):
        if find_homomorphism_reference(tgd.conclusion, query.body, fixed=hom) is None:
            yield hom


def _iter_applicable_egd_homomorphisms(query: ConjunctiveQuery, egd: EGD):
    for hom in iter_homomorphisms_reference(egd.premise, query.body):
        for equality in egd.equalities:
            left = hom.get(equality.left, equality.left)
            right = hom.get(equality.right, equality.right)
            if left != right:
                yield hom, left, right


def _first_applicable_egd_step(query: ConjunctiveQuery, egds: Sequence[EGD]):
    for egd in egds:
        for hom, left, right in _iter_applicable_egd_homomorphisms(query, egd):
            return egd, hom, left, right
    return None


def _is_assignment_fixing_for(
    query: ConjunctiveQuery,
    tgd: TGD,
    homomorphism: Mapping[Term, Term],
    dependencies: Sequence[Dependency],
    max_steps: int,
) -> bool:
    if tgd.is_full():
        return True
    test = associated_test_query(query, tgd, homomorphism)
    chased = set_chase_reference(test.query, dependencies, max_steps=max_steps)
    surviving = {v for atom in chased.query.body for v in atom.variables()}
    for z_var, theta_var in test.existential_pairs:
        if z_var in surviving and theta_var in surviving:
            return False
    return True


def set_chase_reference(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    regularize: bool = True,
    deduplicate: bool = True,
) -> ChaseResult:
    """The pre-delta set chase: full rescan of Σ against Q every round."""
    items, _ = _split(dependencies)
    if regularize:
        items = regularize_dependencies(items)
    egds = [d for d in items if isinstance(d, EGD)]
    tgds = [d for d in items if isinstance(d, TGD)]

    current = query
    records: list[ChaseStepRecord] = []
    used_names = {v.name for v in query.all_variables()}
    for _ in range(max_steps):
        egd_step = _first_applicable_egd_step(current, egds)
        if egd_step is not None:
            egd, hom, left, right = egd_step
            current, record = apply_egd_step(current, egd, hom, left, right)
            if deduplicate:
                current = deduplicate_body(current)
            records.append(record)
            continue
        tgd_step = None
        for tgd in tgds:
            for hom in _iter_applicable_tgd_homomorphisms(current, tgd):
                tgd_step = (tgd, hom)
                break
            if tgd_step is not None:
                break
        if tgd_step is not None:
            tgd, hom = tgd_step
            current, record = apply_tgd_step(current, tgd, hom, used_names)
            records.append(record)
            continue
        return ChaseResult(current, records, Semantics.SET, terminated=True)
    raise ChaseNonTerminationError(
        f"set chase did not terminate within {max_steps} steps",
        steps_taken=len(records),
    )


def sound_chase_reference(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """The pre-delta sound chase (Section 4): full rescans, no memoization."""
    semantics = Semantics.from_name(semantics)
    if semantics is Semantics.SET:
        return set_chase_reference(query, dependencies, max_steps=max_steps)

    items, set_valued = _split(dependencies)
    items = regularize_dependencies(items)
    egds = [d for d in items if isinstance(d, EGD)]
    tgds = [d for d in items if isinstance(d, TGD)]
    dedup_predicates: set[str] | None
    if semantics is Semantics.BAG:
        dedup_predicates = set(set_valued)
    else:
        dedup_predicates = None

    current = query
    records: list[ChaseStepRecord] = []
    used_names = {v.name for v in query.all_variables()}
    for _ in range(max_steps):
        egd_step = _first_applicable_egd_step(current, egds)
        if egd_step is not None:
            egd, hom, left, right = egd_step
            current, record = apply_egd_step(current, egd, hom, left, right)
            current = deduplicate_body(current, dedup_predicates)
            records.append(record)
            continue
        tgd_step = None
        for tgd in tgds:
            if semantics is Semantics.BAG and not all(
                atom.predicate in set_valued for atom in tgd.conclusion
            ):
                continue
            for hom in _iter_applicable_tgd_homomorphisms(current, tgd):
                if _is_assignment_fixing_for(current, tgd, hom, items, max_steps):
                    tgd_step = (tgd, hom)
                    break
            if tgd_step is not None:
                break
        if tgd_step is not None:
            tgd, hom = tgd_step
            current, record = apply_tgd_step(current, tgd, hom, used_names)
            records.append(record)
            continue
        return ChaseResult(current, records, semantics, terminated=True)
    raise ChaseNonTerminationError(
        f"sound chase under {semantics} did not terminate within {max_steps} steps",
        steps_taken=len(records),
    )
