"""Chase procedures: classic set chase and the paper's sound bag / bag-set chase."""

from .assignment_fixing import (
    compare_with_key_based,
    is_assignment_fixing,
    is_assignment_fixing_for,
)
from .plans import EGDPlan, PlanCache, SigmaPlans, TGDPlan, default_plan_cache
from .delta import ChaseCapture, TriggerIndex
from .incremental import (
    ChaseCheckpoint,
    ChaseDelta,
    ResumableChase,
    ResumeOutcome,
    chase_with_checkpoint,
    has_applicable_step,
    resume_chase,
)
from .profile import ChaseProfile
from .set_chase import ChaseResult, set_chase, set_chase_terminates
from .sigma_subset import (
    SigmaSubsetResult,
    max_bag_set_sigma_subset,
    max_bag_sigma_subset,
    scan_sigma_subset,
)
from .sound_chase import (
    bag_chase,
    bag_set_chase,
    chase,
    is_sound_chase_step,
    sound_chase,
)
from .steps import (
    ChaseFailedError,
    ChaseStepRecord,
    apply_egd_step,
    apply_tgd_step,
    is_egd_applicable,
    is_recorded_trigger_applicable,
    is_tgd_applicable,
    iter_applicable_egd_bindings,
    iter_applicable_egd_homomorphisms,
    iter_applicable_tgd_bindings,
    iter_applicable_tgd_homomorphisms,
    trigger_homomorphism,
)
from .test_query import AssociatedTestQuery, associated_test_query

__all__ = [
    "AssociatedTestQuery",
    "ChaseCapture",
    "ChaseCheckpoint",
    "ChaseDelta",
    "ChaseFailedError",
    "ChaseProfile",
    "ChaseResult",
    "ChaseStepRecord",
    "EGDPlan",
    "PlanCache",
    "ResumableChase",
    "ResumeOutcome",
    "SigmaPlans",
    "SigmaSubsetResult",
    "TGDPlan",
    "TriggerIndex",
    "apply_egd_step",
    "apply_tgd_step",
    "associated_test_query",
    "bag_chase",
    "bag_set_chase",
    "chase",
    "chase_with_checkpoint",
    "compare_with_key_based",
    "default_plan_cache",
    "has_applicable_step",
    "is_assignment_fixing",
    "is_assignment_fixing_for",
    "is_egd_applicable",
    "is_recorded_trigger_applicable",
    "is_sound_chase_step",
    "is_tgd_applicable",
    "iter_applicable_egd_bindings",
    "iter_applicable_egd_homomorphisms",
    "iter_applicable_tgd_bindings",
    "iter_applicable_tgd_homomorphisms",
    "trigger_homomorphism",
    "max_bag_set_sigma_subset",
    "max_bag_sigma_subset",
    "resume_chase",
    "scan_sigma_subset",
    "set_chase",
    "set_chase_terminates",
    "sound_chase",
]
