"""Chase procedures: classic set chase and the paper's sound bag / bag-set chase."""

from .assignment_fixing import (
    compare_with_key_based,
    is_assignment_fixing,
    is_assignment_fixing_for,
)
from .plans import EGDPlan, PlanCache, SigmaPlans, TGDPlan, default_plan_cache
from .profile import ChaseProfile
from .set_chase import ChaseResult, set_chase, set_chase_terminates
from .sigma_subset import (
    SigmaSubsetResult,
    max_bag_set_sigma_subset,
    max_bag_sigma_subset,
)
from .sound_chase import (
    bag_chase,
    bag_set_chase,
    chase,
    is_sound_chase_step,
    sound_chase,
)
from .steps import (
    ChaseFailedError,
    ChaseStepRecord,
    apply_egd_step,
    apply_tgd_step,
    is_egd_applicable,
    is_tgd_applicable,
    iter_applicable_egd_homomorphisms,
    iter_applicable_tgd_homomorphisms,
)
from .test_query import AssociatedTestQuery, associated_test_query

__all__ = [
    "AssociatedTestQuery",
    "ChaseFailedError",
    "ChaseProfile",
    "ChaseResult",
    "ChaseStepRecord",
    "EGDPlan",
    "PlanCache",
    "SigmaPlans",
    "SigmaSubsetResult",
    "TGDPlan",
    "apply_egd_step",
    "apply_tgd_step",
    "associated_test_query",
    "bag_chase",
    "bag_set_chase",
    "chase",
    "compare_with_key_based",
    "default_plan_cache",
    "is_assignment_fixing",
    "is_assignment_fixing_for",
    "is_egd_applicable",
    "is_sound_chase_step",
    "is_tgd_applicable",
    "iter_applicable_egd_homomorphisms",
    "iter_applicable_tgd_homomorphisms",
    "max_bag_set_sigma_subset",
    "max_bag_sigma_subset",
    "set_chase",
    "set_chase_terminates",
    "sound_chase",
]
