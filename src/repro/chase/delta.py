"""Delta trigger tracking: which dependencies can still fire after a step.

The chase drivers are deterministic first-trigger loops: every round scans
the dependencies in order and applies the first applicable (sound) step.
Rescanning every dependency against the whole current query each round is
what made the cold chase quadratic-and-worse; this module supplies the
bookkeeping that lets a round skip dependencies *provably* unable to
produce a new trigger, without changing which trigger fires.

The invariant is exact, not heuristic.  A dependency is marked **clean**
when a full scan found no applicable step whose absence is *stable under
adding atoms*:

* an egd scan that found no trigger stays trigger-free while the body only
  grows with atoms whose predicates miss the premise — the premise
  homomorphisms are then unchanged, and an egd trigger depends only on the
  homomorphism (the equality images);
* a tgd scan that found **no applicable premise homomorphism at all** stays
  that way under the same condition — extendability of each homomorphism to
  the conclusion is monotone in the body, so satisfied matches stay
  satisfied;
* a tgd scan that found applicable homomorphisms which merely failed the
  assignment-fixing test is *not* marked clean: Definition 4.3's verdict is
  computed against the whole current query, and growing the query can flip
  it from unsound to sound, so such dependencies are re-examined every
  round (their test chases are what the per-run memo in
  :mod:`repro.chase.sound_chase` exists for).

After a tgd step, exactly the clean dependencies whose premise mentions a
predicate of the added atoms are dirtied (:meth:`TriggerIndex.note_added`);
an egd step rewrites the whole query, so :meth:`TriggerIndex.reset` drops
every clean mark.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..dependencies.base import Dependency


class TriggerIndex:
    """Clean/dirty state for one ordered dependency list within a chase run.

    The predicate → dependency-positions map is per-Σ, not per-run: drivers
    holding a compiled :class:`~repro.chase.plans.SigmaPlans` construct the
    index through :meth:`from_trigger_map`, sharing the plans' precomputed
    map read-only across runs; only the clean/dirty bit vector is allocated
    per run.
    """

    __slots__ = ("_clean", "_by_predicate")

    def __init__(self, dependencies: Sequence[Dependency]):
        self._clean = [False] * len(dependencies)
        by_predicate: dict[str, list[int]] = {}
        for position, dependency in enumerate(dependencies):
            for predicate in {atom.predicate for atom in dependency.premise}:
                by_predicate.setdefault(predicate, []).append(position)
        self._by_predicate: Mapping[str, Sequence[int]] = by_predicate

    @classmethod
    def from_trigger_map(
        cls, count: int, by_predicate: Mapping[str, Sequence[int]]
    ) -> "TriggerIndex":
        """A fresh all-dirty index over *count* dependencies sharing *by_predicate*.

        The map is borrowed, never mutated; the caller (a
        :class:`~repro.chase.plans.SigmaPlans`) owns it.
        """
        self = cls.__new__(cls)
        self._clean = [False] * count
        self._by_predicate = by_predicate
        return self

    def is_clean(self, position: int) -> bool:
        """Can the dependency at *position* be skipped this round?"""
        return self._clean[position]

    def mark_clean(self, position: int) -> None:
        """Record a completed scan whose no-trigger verdict is growth-stable."""
        self._clean[position] = True

    def note_added(self, predicates: Iterable[str]) -> None:
        """A tgd step added atoms over *predicates*: dirty the affected deps."""
        clean = self._clean
        for predicate in predicates:
            for position in self._by_predicate.get(predicate, ()):
                clean[position] = False

    def reset(self) -> None:
        """An egd step rewrote the query: every dependency must rescan."""
        for position in range(len(self._clean)):
            self._clean[position] = False
