"""Delta trigger tracking: which dependencies can still fire after a step.

The chase drivers are deterministic first-trigger loops: every round scans
the dependencies in order and applies the first applicable (sound) step.
Rescanning every dependency against the whole current query each round is
what made the cold chase quadratic-and-worse; this module supplies the
bookkeeping that lets a round skip dependencies *provably* unable to
produce a new trigger, without changing which trigger fires.

The invariant is exact, not heuristic.  A dependency is marked **clean**
when a full scan found no applicable step whose absence is *stable under
adding atoms*:

* an egd scan that found no trigger stays trigger-free while the body only
  grows with atoms whose predicates miss the premise — the premise
  homomorphisms are then unchanged, and an egd trigger depends only on the
  homomorphism (the equality images);
* a tgd scan that found **no applicable premise homomorphism at all** stays
  that way under the same condition — extendability of each homomorphism to
  the conclusion is monotone in the body, so satisfied matches stay
  satisfied;
* a tgd scan that found applicable homomorphisms which merely failed the
  assignment-fixing test is *not* marked clean: Definition 4.3's verdict is
  computed against the whole current query, and growing the query can flip
  it from unsound to sound, so such dependencies are re-examined every
  round (their test chases are what the per-run memo in
  :mod:`repro.chase.sound_chase` exists for).

After a tgd step, exactly the clean dependencies whose premise mentions a
predicate of the added atoms are dirtied (:meth:`TriggerIndex.note_added`);
an egd step rewrites the whole query, so :meth:`TriggerIndex.reset` drops
every clean mark.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from ..dependencies.base import Dependency


class TriggerIndex:
    """Clean/dirty state for one ordered dependency list within a chase run.

    The predicate → dependency-positions map is per-Σ, not per-run: drivers
    holding a compiled :class:`~repro.chase.plans.SigmaPlans` construct the
    index through :meth:`from_trigger_map`, sharing the plans' precomputed
    map read-only across runs; only the clean/dirty bit vector is allocated
    per run.
    """

    __slots__ = ("_clean", "_by_predicate")

    def __init__(self, dependencies: Sequence[Dependency]):
        self._clean = [False] * len(dependencies)
        by_predicate: dict[str, list[int]] = {}
        for position, dependency in enumerate(dependencies):
            for predicate in {atom.predicate for atom in dependency.premise}:
                by_predicate.setdefault(predicate, []).append(position)
        self._by_predicate: Mapping[str, Sequence[int]] = by_predicate

    @classmethod
    def from_trigger_map(
        cls, count: int, by_predicate: Mapping[str, Sequence[int]]
    ) -> "TriggerIndex":
        """A fresh all-dirty index over *count* dependencies sharing *by_predicate*.

        The map is borrowed, never mutated; the caller (a
        :class:`~repro.chase.plans.SigmaPlans`) owns it.
        """
        self = cls.__new__(cls)
        self._clean = [False] * count
        self._by_predicate = by_predicate
        return self

    @classmethod
    def from_snapshot(
        cls,
        count: int,
        by_predicate: Mapping[str, Sequence[int]],
        clean: Sequence[bool],
    ) -> "TriggerIndex":
        """An index over *count* dependencies seeded from a prior run's bits.

        The incremental chase resumes a run whose terminal clean bits were
        captured by :meth:`snapshot`.  The seeded list may be shorter than
        *count* — dependencies appended to Σ since the snapshot start dirty.
        A seed *longer* than the current dependency list would silently
        misattribute verdicts, so it is rejected.
        """
        if len(clean) > count:
            raise ValueError(
                f"trigger snapshot covers {len(clean)} dependencies "
                f"but the current list has only {count}"
            )
        self = cls.__new__(cls)
        self._clean = list(clean) + [False] * (count - len(clean))
        self._by_predicate = by_predicate
        return self

    def snapshot(self) -> tuple[bool, ...]:
        """The clean bits, frozen — the trigger frontier of a checkpoint.

        Each ``True`` bit is a growth-stable "no trigger" verdict (see the
        module docstring): it remains valid for any future state that only
        *adds* atoms, provided :meth:`note_added` is called with the added
        predicates.  That is exactly the contract the resumable chase relies
        on when it seeds a continuation run via :meth:`from_snapshot`.
        """
        return tuple(self._clean)

    def is_clean(self, position: int) -> bool:
        """Can the dependency at *position* be skipped this round?"""
        return self._clean[position]

    def mark_clean(self, position: int) -> None:
        """Record a completed scan whose no-trigger verdict is growth-stable."""
        self._clean[position] = True

    def note_added(self, predicates: Iterable[str]) -> None:
        """A tgd step added atoms over *predicates*: dirty the affected deps."""
        clean = self._clean
        for predicate in predicates:
            for position in self._by_predicate.get(predicate, ()):
                clean[position] = False

    def reset(self) -> None:
        """An egd step rewrote the query: every dependency must rescan."""
        for position in range(len(self._clean)):
            self._clean[position] = False


class ChaseCapture:
    """Terminal-state capture slot passed into a chase driver.

    The drivers in :mod:`repro.chase.set_chase` / :mod:`repro.chase.sound_chase`
    fill this in exactly once, at the moment they prove the fixpoint: the
    trigger frontier (clean bits of both :class:`TriggerIndex` instances) and
    the full set of variable names the run ever produced (the labeled-null
    counter state — fresh-variable generation forbids every name in it).
    :mod:`repro.chase.incremental` turns a filled capture plus the driver's
    :class:`~repro.chase.set_chase.ChaseResult` into a ``ChaseCheckpoint``.

    A capture belongs to one run: drivers overwrite, never merge.  ``filled``
    distinguishes "run never terminated" from "terminated with empty state".
    """

    __slots__ = ("egd_clean", "tgd_clean", "used_names", "filled")

    def __init__(self) -> None:
        self.egd_clean: tuple[bool, ...] = ()
        self.tgd_clean: tuple[bool, ...] = ()
        self.used_names: frozenset[str] = frozenset()
        self.filled: bool = False

    def record(
        self,
        egd_state: TriggerIndex,
        tgd_state: TriggerIndex,
        used_names: Iterable[str],
    ) -> None:
        """Snapshot the terminal trigger frontier and the used-name set."""
        self.egd_clean = egd_state.snapshot()
        self.tgd_clean = tgd_state.snapshot()
        self.used_names = frozenset(used_names)
        self.filled = True
