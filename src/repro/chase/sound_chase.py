"""Sound chase under bag and bag-set semantics (Section 4 of the paper).

The ordinary set-semantics chase is *not* sound under bag or bag-set
semantics: a chase step can change answer multiplicities (Example 4.1).
Theorems 4.1 and 4.3 give the exact conditions under which a step preserves
equivalence:

* **bag semantics** (Theorem 4.1) — a tgd step is sound iff it is an
  assignment-fixing chase step *and* every subgoal it adds is over a
  relation required to be set valued in all instances; an egd step is always
  sound, but duplicate subgoals it creates may be dropped only for
  set-valued relations (Theorem 4.2).
* **bag-set semantics** (Theorem 4.3) — a tgd step is sound iff it is an
  assignment-fixing chase step; egd steps are always sound and duplicates
  may always be dropped.

``sound_chase`` applies only sound steps until none remains; by
Proposition 5.1 this terminates whenever the set chase terminates, and by
Theorem 5.1 (and its bag-set analogue, Theorem G.1) the result is unique up
to bag equivalence (modulo duplicate subgoals over set-valued relations).
Every tgd is regularized before chasing — Theorem 4.1/4.3 require it, and
Examples 4.4–4.5 show the failure modes otherwise.

The loop is delta-driven (see :mod:`repro.chase.delta`): one
:class:`~repro.core.homomorphism.TargetIndex` over the current body serves
every dependency probe of a round, a :class:`~repro.chase.delta.TriggerIndex`
skips dependencies that provably cannot have gained a trigger, and
Definition 4.3 verdicts are memoized per canonicalized test query within the
run.  The applied step sequence is byte-identical to the pre-index
implementation (frozen in :mod:`repro.chase.reference`); each result carries
a :class:`~repro.chase.profile.ChaseProfile` of the work done and skipped.
"""

from __future__ import annotations

import time
from typing import Hashable, Sequence

from ..core.homomorphism import Homomorphism, TargetIndex
from ..core.query import ConjunctiveQuery
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..exceptions import ChaseError, ChaseNonTerminationError
from ..semantics import Semantics
from .assignment_fixing import is_assignment_fixing_for
from .delta import ChaseCapture, TriggerIndex
from .plans import PlanCache, SigmaPlans, TGDPlan, default_plan_cache
from .profile import ChaseProfile, snapshot_core_stats
from .set_chase import DEFAULT_MAX_STEPS, ChaseResult, _first_applicable_egd_step, set_chase
from .steps import (
    ChaseStepRecord,
    apply_egd_step,
    apply_tgd_step,
    deduplicate_body,
    iter_applicable_tgd_bindings,
    trigger_homomorphism,
)


def _split(dependencies: DependencySet | Sequence[Dependency]) -> tuple[
    list[Dependency], frozenset[str]
]:
    if isinstance(dependencies, DependencySet):
        return list(dependencies.dependencies), dependencies.set_valued_predicates
    return list(dependencies), frozenset()


def _first_sound_tgd_step(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    all_dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics,
    set_valued: frozenset[str],
    max_steps: int,
    index: TargetIndex | None = None,
    state: TriggerIndex | None = None,
    profile: ChaseProfile | None = None,
    memo: dict[Hashable, bool] | None = None,
    plans: Sequence[TGDPlan] | None = None,
    plan_cache: PlanCache | None = None,
) -> tuple[TGD, Homomorphism] | None:
    """First sound tgd trigger in Σ order, delta-skipping where exact.

    A tgd is only marked clean when its scan found *no applicable
    homomorphism at all*: that verdict is stable while added atoms miss the
    premise.  A scan that found applicable-but-not-assignment-fixing
    homomorphisms is left dirty — Definition 4.3's verdict is taken against
    the whole current query and can flip to sound as the query grows, so the
    old full-rescan behaviour is preserved exactly for those tgds (the
    per-run ``memo`` absorbs the repeated test chases instead).
    """
    for position, tgd in enumerate(tgds):
        if semantics is Semantics.BAG:
            # Theorem 4.1(1): every added subgoal must be over a set-valued relation.
            if not all(atom.predicate in set_valued for atom in tgd.conclusion):
                continue
        if state is not None and state.is_clean(position):
            if profile is not None:
                profile.dependencies_skipped += 1
            continue
        applicable = False
        plan = plans[position] if plans is not None else TGDPlan(tgd)
        for match in iter_applicable_tgd_bindings(
            query, tgd, index=index, plan=plan,
        ):
            applicable = True
            if profile is not None:
                profile.triggers_examined += 1
            # The Definition 4.3 test needs the trigger as a mapping (it
            # instantiates the associated test query with it), so applicable
            # triggers — and only those — cross the dict boundary.
            homomorphism = trigger_homomorphism(plan, match)
            if is_assignment_fixing_for(
                query, tgd, homomorphism, all_dependencies, max_steps,
                memo=memo, profile=profile, plan_cache=plan_cache,
            ):
                return tgd, homomorphism
        if state is not None and not applicable:
            state.mark_clean(position)
    return None


def _drive_sound_chase(
    current: ConjunctiveQuery,
    plans: SigmaPlans,
    items_sigma: DependencySet,
    semantics: Semantics,
    set_valued: frozenset[str],
    dedup_predicates: set[str] | None,
    egd_state: TriggerIndex,
    tgd_state: TriggerIndex,
    used_names: set[str],
    records: list[ChaseStepRecord],
    profile: ChaseProfile,
    af_memo: dict[Hashable, bool],
    max_steps: int,
    cache: PlanCache,
) -> ConjunctiveQuery:
    """The delta-driven sound-chase loop, from *current* to its fixpoint.

    Shared by :func:`sound_chase` (fresh state) and the incremental resume
    in :mod:`repro.chase.incremental` (state seeded from a replayed
    checkpoint).  The caller owns the trigger indexes, the used-name set,
    the record list, and the Definition 4.3 memo; all are mutated in place.
    Returns the terminal query; raises :class:`ChaseNonTerminationError`
    after *max_steps* rounds.
    """
    egds, tgds = plans.egds, plans.tgds
    index = TargetIndex(current.body)
    for _ in range(max_steps):
        profile.rounds += 1
        # Egd steps are always sound under both semantics (Theorems 4.1/4.3 item 2).
        egd_step = _first_applicable_egd_step(
            current, egds, index, egd_state, profile, plans.egd_plans
        )
        if egd_step is not None:
            egd, hom, left, right = egd_step
            current, record = apply_egd_step(current, egd, hom, left, right)
            current = deduplicate_body(current, dedup_predicates)
            records.append(record)
            profile.egd_steps += 1
            egd_state.reset()
            tgd_state.reset()
            profile.retire_index(index)
            index = TargetIndex(current.body)
            continue

        tgd_step = _first_sound_tgd_step(
            current, tgds, items_sigma, semantics, set_valued, max_steps,
            index=index, state=tgd_state, profile=profile, memo=af_memo,
            plans=plans.tgd_plans, plan_cache=cache,
        )
        if tgd_step is not None:
            tgd, hom = tgd_step
            current, record = apply_tgd_step(current, tgd, hom, used_names)
            # No deduplication here, unlike the egd branch: a regularized tgd
            # step cannot duplicate an existing subgoal — every conclusion
            # atom of a regularized non-full tgd carries at least one
            # existential variable, instantiated fresh (regularized full tgds
            # are single-atom and applicability means that atom is absent).
            # Duplicates *among* the added atoms require syntactically
            # duplicated conclusion atoms and are harmless: the Theorem 6.2
            # bag-set test compares canonical representations, and under bag
            # semantics Theorem 4.2 only licenses dropping set-valued
            # duplicates anyway.  tests/test_sound_chase.py pins this down.
            records.append(record)
            profile.tgd_steps += 1
            added = {atom.predicate for atom in record.added_atoms}
            egd_state.note_added(added)
            tgd_state.note_added(added)
            profile.retire_index(index)
            index = TargetIndex(current.body)
            continue
        profile.retire_index(index)
        return current
    raise ChaseNonTerminationError(
        f"sound chase under {semantics} did not terminate within {max_steps} steps",
        steps_taken=len(records),
    )


def sound_chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG,
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    plan_cache: PlanCache | None = None,
    capture: ChaseCapture | None = None,
) -> ChaseResult:
    """Chase *query* applying only chase steps sound under *semantics*.

    For ``Semantics.SET`` this simply delegates to :func:`set_chase` (every
    step is sound under set semantics).  For bag semantics the
    :class:`DependencySet`'s ``set_valued_predicates`` determine which
    relations may receive new subgoals and which duplicate subgoals may be
    dropped.  ``plan_cache`` (default: the process-wide cache) serves the
    per-dependency compiled match plans, reused across rounds and runs.
    ``capture``, when given, receives the terminal trigger frontier and the
    run's used-name set — the raw material of a resumable checkpoint (see
    :mod:`repro.chase.incremental`).
    """
    semantics = Semantics.from_name(semantics)
    if semantics is Semantics.SET:
        return set_chase(
            query, dependencies, max_steps=max_steps,
            plan_cache=plan_cache, capture=capture,
        )

    cache = plan_cache if plan_cache is not None else default_plan_cache()
    plan_stats = cache.snapshot()
    _, set_valued = _split(dependencies)
    plans = cache.plans_for(dependencies, regularize=True)
    egds, tgds = plans.egds, plans.tgds
    # Wrapped once so the nested Definition 4.3 test chases key their plan
    # lookups on a memoized fingerprint instead of re-walking the list.
    items_sigma = DependencySet(plans.items)
    dedup_predicates: set[str] | None
    if semantics is Semantics.BAG:
        dedup_predicates = set(set_valued)
    else:
        dedup_predicates = None  # bag-set: all duplicates may be dropped

    profile = ChaseProfile(semantics=str(semantics))
    started = time.perf_counter()
    core_stats = snapshot_core_stats()
    records: list[ChaseStepRecord] = []
    # Forbid reuse of any variable name ever produced in this chase run.
    used_names = set(query.variable_names())
    # Per-run state of the acceleration layers: body index, delta trigger
    # tracking, and the Definition 4.3 verdict memo (Σ and the step budget
    # are fixed for the whole run, as the memo requires).
    egd_state = TriggerIndex.from_trigger_map(len(egds), plans.egd_trigger_map)
    tgd_state = TriggerIndex.from_trigger_map(len(tgds), plans.tgd_trigger_map)
    af_memo: dict[Hashable, bool] = {}
    terminal = _drive_sound_chase(
        query, plans, items_sigma, semantics, set_valued, dedup_predicates,
        egd_state, tgd_state, used_names, records, profile, af_memo,
        max_steps, cache,
    )
    profile.record_core_stats(core_stats)
    profile.record_plan_stats(plan_stats, cache)
    profile.wall_time = time.perf_counter() - started
    if capture is not None:
        capture.record(egd_state, tgd_state, used_names)
    return ChaseResult(terminal, records, semantics, terminated=True, profile=profile)


def chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """Uniform entry point: set chase or sound bag / bag-set chase by *semantics*."""
    return sound_chase(query, dependencies, semantics, max_steps)


def is_sound_chase_step(
    query: ConjunctiveQuery,
    dependency: Dependency,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG,
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    plan_cache: PlanCache | None = None,
    index: TargetIndex | None = None,
    memo: dict[Hashable, bool] | None = None,
    profile: ChaseProfile | None = None,
) -> bool:
    """Is every applicable chase step of *dependency* on *query* sound?

    This is the ``soundChaseStep`` predicate of Algorithms 1 and 2
    (Max-Bag-Σ-Subset and its bag-set counterpart): it returns True when
    *dependency* has no applicable step on *query* (vacuously sound) or when
    all its applicable steps satisfy the soundness conditions of Theorem 4.1
    (bag) / Theorem 4.3 (bag-set); it returns False when some applicable step
    is unsound.  Note that a *non-regularized* tgd with an applicable step is
    never sound under bag or bag-set semantics (Section 4.2.2), so it is
    checked against its regularized set: the step is sound only if each
    regularized component with an applicable step passes the test.

    The vacuous verdicts — egds (always sound) and set semantics (every step
    sound) — return before any Σ setup, so they are O(1).  The setup itself
    is served by ``plan_cache`` (default: the process-wide cache): both the
    regularized Σ for the nested Definition 4.3 test chases and the
    dependency's regularized component plans are compiled once and reused
    across calls.  A sigma-subset scan checks every dependency of Σ against
    the *same* terminal query, so it additionally shares one ``index`` over
    the query body, one Definition 4.3 verdict ``memo`` (sound only while
    Σ and *max_steps* stay fixed, which the scan guarantees), and one
    ``profile`` across the whole scan — see
    :func:`repro.chase.sigma_subset.max_bag_sigma_subset`.
    """
    semantics = Semantics.from_name(semantics)
    # Fast paths first (Theorems 4.1/4.3 item 2): no regularization, no
    # index build, no plan compilation for the vacuous verdicts.
    if isinstance(dependency, EGD):
        return True
    if semantics is Semantics.SET:
        return True
    if not isinstance(dependency, TGD):
        raise ChaseError(f"unsupported dependency {dependency!r}")

    cache = plan_cache if plan_cache is not None else default_plan_cache()
    plan_stats = cache.snapshot()
    _, set_valued = _split(dependencies)
    # One regularization of Σ per cache entry; the memoized DependencySet
    # wrapper keys the nested Definition 4.3 test chases' plan lookups on a
    # fingerprint computed once per Σ, not once per call.
    items_sigma = cache.plans_for(dependencies, regularize=True).dependency_set()
    component_plans = cache.plans_for((dependency,), regularize=True)
    if profile is not None:
        hits, _ = plan_stats
        profile.subset_plans_reused += cache.hits - hits
    if index is None:
        index = TargetIndex(query.body)
    for component, plan in zip(component_plans.tgds, component_plans.tgd_plans):
        if semantics is Semantics.BAG and not all(
            atom.predicate in set_valued for atom in component.conclusion
        ):
            # Theorem 4.1(1): an applicable step adding a non-set-valued
            # subgoal is unsound; probe applicability only (no dict needed).
            for _ in iter_applicable_tgd_bindings(query, component, index=index, plan=plan):
                return False
            continue
        for match in iter_applicable_tgd_bindings(query, component, index=index, plan=plan):
            homomorphism = trigger_homomorphism(plan, match)
            if not is_assignment_fixing_for(
                query, component, homomorphism, items_sigma, max_steps,
                memo=memo, profile=profile, plan_cache=cache,
            ):
                return False
    # Either not applicable at all (vacuously sound) or every applicable step
    # of every regularized component is sound.
    return True


def bag_chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """Sound chase under bag semantics, ``(Q)_{Σ,B}``."""
    return sound_chase(query, dependencies, Semantics.BAG, max_steps)


def bag_set_chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """Sound chase under bag-set semantics, ``(Q)_{Σ,BS}``."""
    return sound_chase(query, dependencies, Semantics.BAG_SET, max_steps)
