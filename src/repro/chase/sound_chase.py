"""Sound chase under bag and bag-set semantics (Section 4 of the paper).

The ordinary set-semantics chase is *not* sound under bag or bag-set
semantics: a chase step can change answer multiplicities (Example 4.1).
Theorems 4.1 and 4.3 give the exact conditions under which a step preserves
equivalence:

* **bag semantics** (Theorem 4.1) — a tgd step is sound iff it is an
  assignment-fixing chase step *and* every subgoal it adds is over a
  relation required to be set valued in all instances; an egd step is always
  sound, but duplicate subgoals it creates may be dropped only for
  set-valued relations (Theorem 4.2).
* **bag-set semantics** (Theorem 4.3) — a tgd step is sound iff it is an
  assignment-fixing chase step; egd steps are always sound and duplicates
  may always be dropped.

``sound_chase`` applies only sound steps until none remains; by
Proposition 5.1 this terminates whenever the set chase terminates, and by
Theorem 5.1 (and its bag-set analogue, Theorem G.1) the result is unique up
to bag equivalence (modulo duplicate subgoals over set-valued relations).
Every tgd is regularized before chasing — Theorem 4.1/4.3 require it, and
Examples 4.4–4.5 show the failure modes otherwise.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.query import ConjunctiveQuery
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..dependencies.regularize import regularize_dependencies
from ..exceptions import ChaseError, ChaseNonTerminationError
from ..semantics import Semantics
from .assignment_fixing import is_assignment_fixing_for
from .set_chase import DEFAULT_MAX_STEPS, ChaseResult, set_chase
from .steps import (
    ChaseStepRecord,
    apply_egd_step,
    apply_tgd_step,
    deduplicate_body,
    iter_applicable_egd_homomorphisms,
    iter_applicable_tgd_homomorphisms,
)


def _split(dependencies: DependencySet | Sequence[Dependency]) -> tuple[
    list[Dependency], frozenset[str]
]:
    if isinstance(dependencies, DependencySet):
        return list(dependencies.dependencies), dependencies.set_valued_predicates
    return list(dependencies), frozenset()


def _first_sound_tgd_step(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    all_dependencies: Sequence[Dependency],
    semantics: Semantics,
    set_valued: frozenset[str],
    max_steps: int,
):
    for tgd in tgds:
        if semantics is Semantics.BAG:
            # Theorem 4.1(1): every added subgoal must be over a set-valued relation.
            if not all(atom.predicate in set_valued for atom in tgd.conclusion):
                continue
        for homomorphism in iter_applicable_tgd_homomorphisms(query, tgd):
            if is_assignment_fixing_for(
                query, tgd, homomorphism, all_dependencies, max_steps
            ):
                return tgd, homomorphism
    return None


def sound_chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """Chase *query* applying only chase steps sound under *semantics*.

    For ``Semantics.SET`` this simply delegates to :func:`set_chase` (every
    step is sound under set semantics).  For bag semantics the
    :class:`DependencySet`'s ``set_valued_predicates`` determine which
    relations may receive new subgoals and which duplicate subgoals may be
    dropped.
    """
    semantics = Semantics.from_name(semantics)
    if semantics is Semantics.SET:
        return set_chase(query, dependencies, max_steps=max_steps)

    items, set_valued = _split(dependencies)
    items = regularize_dependencies(items)
    egds = [d for d in items if isinstance(d, EGD)]
    tgds = [d for d in items if isinstance(d, TGD)]
    dedup_predicates: set[str] | None
    if semantics is Semantics.BAG:
        dedup_predicates = set(set_valued)
    else:
        dedup_predicates = None  # bag-set: all duplicates may be dropped

    current = query
    records: list[ChaseStepRecord] = []
    # Forbid reuse of any variable name ever produced in this chase run.
    used_names = {v.name for v in query.all_variables()}
    for _ in range(max_steps):
        # Egd steps are always sound under both semantics (Theorems 4.1/4.3 item 2).
        egd_step = None
        for egd in egds:
            for hom, left, right in iter_applicable_egd_homomorphisms(current, egd):
                egd_step = (egd, hom, left, right)
                break
            if egd_step is not None:
                break
        if egd_step is not None:
            egd, hom, left, right = egd_step
            current, record = apply_egd_step(current, egd, hom, left, right)
            current = deduplicate_body(current, dedup_predicates)
            records.append(record)
            continue

        tgd_step = _first_sound_tgd_step(
            current, tgds, items, semantics, set_valued, max_steps
        )
        if tgd_step is not None:
            tgd, hom = tgd_step
            current, record = apply_tgd_step(current, tgd, hom, used_names)
            records.append(record)
            continue
        return ChaseResult(current, records, semantics, terminated=True)
    raise ChaseNonTerminationError(
        f"sound chase under {semantics} did not terminate within {max_steps} steps",
        steps_taken=len(records),
    )


def chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """Uniform entry point: set chase or sound bag / bag-set chase by *semantics*."""
    return sound_chase(query, dependencies, semantics, max_steps)


def is_sound_chase_step(
    query: ConjunctiveQuery,
    dependency: Dependency,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Is every applicable chase step of *dependency* on *query* sound?

    This is the ``soundChaseStep`` predicate of Algorithms 1 and 2
    (Max-Bag-Σ-Subset and its bag-set counterpart): it returns True when
    *dependency* has no applicable step on *query* (vacuously sound) or when
    all its applicable steps satisfy the soundness conditions of Theorem 4.1
    (bag) / Theorem 4.3 (bag-set); it returns False when some applicable step
    is unsound.  Note that a *non-regularized* tgd with an applicable step is
    never sound under bag or bag-set semantics (Section 4.2.2), so it is
    checked against its regularized set: the step is sound only if each
    regularized component with an applicable step passes the test.
    """
    semantics = Semantics.from_name(semantics)
    items, set_valued = _split(dependencies)
    items = regularize_dependencies(items)

    if isinstance(dependency, EGD):
        return True
    if semantics is Semantics.SET:
        return True
    if not isinstance(dependency, TGD):
        raise ChaseError(f"unsupported dependency {dependency!r}")

    components = regularize_dependencies([dependency])
    for component in components:
        assert isinstance(component, TGD)
        for homomorphism in iter_applicable_tgd_homomorphisms(query, component):
            if semantics is Semantics.BAG and not all(
                atom.predicate in set_valued for atom in component.conclusion
            ):
                return False
            if not is_assignment_fixing_for(
                query, component, homomorphism, items, max_steps
            ):
                return False
    # Either not applicable at all (vacuously sound) or every applicable step
    # of every regularized component is sound.
    return True


def bag_chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """Sound chase under bag semantics, ``(Q)_{Σ,B}``."""
    return sound_chase(query, dependencies, Semantics.BAG, max_steps)


def bag_set_chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ChaseResult:
    """Sound chase under bag-set semantics, ``(Q)_{Σ,BS}``."""
    return sound_chase(query, dependencies, Semantics.BAG_SET, max_steps)
