"""Individual chase steps with tgds and egds (Section 2.4 of the paper).

* A **tgd chase step** with ``σ : φ → ∃V̄ ψ`` applies to a query Q when there
  is a homomorphism h from φ to Q's body that cannot be extended to a
  homomorphism from φ ∧ ψ; the step adds ψ(h(X̄), V̄') to the body, with V̄'
  fresh variables.
* An **egd chase step** with ``e : φ → U1 = U2`` applies when there is a
  homomorphism h from φ to the body with h(U1) ≠ h(U2) and at least one of
  the two a variable; the step replaces the variable by the other term
  throughout the query.  If both images are distinct constants the chase
  *fails* (the query is unsatisfiable under the dependencies) — reported via
  :class:`ChaseFailedError`.

Each applied step is recorded in a :class:`ChaseStepRecord`, which the
higher-level chase drivers accumulate for provenance / debugging and which
the tests use to assert what the chase actually did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..core.atoms import Atom
from ..core.homomorphism import (
    Homomorphism,
    TargetIndex,
    find_match,
    has_match_from_binding,
    iter_binding_matches,
)
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, FreshVariableFactory, Term, Variable
from ..dependencies.base import EGD, TGD, Dependency
from ..exceptions import ChaseError
from .plans import EGDPlan, TGDPlan


class ChaseFailedError(ChaseError):
    """An egd tried to equate two distinct constants: the chase fails."""


@dataclass
class ChaseStepRecord:
    """Provenance of one applied chase step."""

    dependency: Dependency
    homomorphism: Homomorphism
    kind: str  # "tgd" or "egd"
    added_atoms: tuple[Atom, ...] = ()
    substitution: dict[Term, Term] = field(default_factory=dict)

    def __str__(self) -> str:
        name = self.dependency.name or self.kind
        if self.kind == "tgd":
            added = ", ".join(str(a) for a in self.added_atoms)
            return f"tgd step [{name}]: added {added}"
        pairs = ", ".join(f"{k}→{v}" for k, v in self.substitution.items())
        return f"egd step [{name}]: identified {pairs}"


# ---------------------------------------------------------------------- #
# TGD steps
# ---------------------------------------------------------------------- #

#: One binding-level premise match: the kernel's slot-uid array, the parallel
#: term array, and the trail of slots bound during the search (in binding
#: order).  All three are borrowed from the kernel and reused between yields;
#: :func:`trigger_homomorphism` is the copy-out boundary.
BindingMatch = tuple[list[int], "list[Term | None]", list[int]]


def trigger_homomorphism(plan: TGDPlan | EGDPlan, match: BindingMatch) -> Homomorphism:
    """Materialize one binding-level premise match as a ``{variable: term}`` dict.

    Built in trail (binding) order, exactly the dictionary the kernel's own
    result boundary (:func:`repro.core.homomorphism.iter_matches`) would have
    produced for the same match — chase step records stay byte-identical to
    the frozen reference engines.
    """
    _, bound_terms, trail = match
    slot_vars = plan.premise.slot_vars
    result: Homomorphism = {}
    for slot in trail:
        result[slot_vars[slot]] = bound_terms[slot]  # type: ignore[assignment]
    return result


def iter_applicable_tgd_bindings(
    query: ConjunctiveQuery,
    tgd: TGD,
    *,
    index: TargetIndex | None = None,
    plan: TGDPlan | None = None,
) -> Iterator[BindingMatch]:
    """Binding-level applicable-trigger scan: no dict per premise match.

    Yields one :data:`BindingMatch` per premise homomorphism that cannot be
    extended to cover the conclusion; the extension probe runs directly on
    the premise slot array through the plan's precompiled
    ``conclusion_links`` (:func:`~repro.core.homomorphism.
    has_match_from_binding`), so premise matches that are already satisfied
    are discharged without ever materializing a ``{variable: term}``
    dictionary.  The yielded arrays are borrowed — callers that keep a
    trigger must copy it out (:func:`trigger_homomorphism`).  ``index`` /
    ``plan`` play the same sharing roles as in
    :func:`iter_applicable_tgd_homomorphisms`.
    """
    if index is None:
        index = TargetIndex(query.body)
    if plan is None:
        plan = TGDPlan(tgd)
    conclusion = plan.conclusion
    links = plan.conclusion_links
    for match in iter_binding_matches(plan.premise, index):
        index.extension_probes += 1
        if has_match_from_binding(conclusion, index, links, match[0]):
            index.dicts_avoided += 1
            continue
        yield match


def iter_applicable_tgd_homomorphisms(
    query: ConjunctiveQuery,
    tgd: TGD,
    *,
    index: TargetIndex | None = None,
    plan: TGDPlan | None = None,
) -> Iterator[Homomorphism]:
    """Yield the homomorphisms from the tgd's premise that make a step applicable.

    A homomorphism h from the premise to the query body triggers a step only
    when it cannot be extended to also cover the conclusion (otherwise the
    dependency is already satisfied for this match).  This is the dict-yielding
    API boundary over :func:`iter_applicable_tgd_bindings` — the scan itself
    runs at the binding level and only applicable triggers are materialized.
    ``index`` lets a chase driver share one :class:`TargetIndex` over the
    query body across every dependency probe of a round; ``plan`` lets it
    reuse the tgd's compiled premise/conclusion
    :class:`~repro.chase.plans.TGDPlan` across rounds (when given it must be
    compiled from exactly *tgd*).
    """
    if plan is None:
        plan = TGDPlan(tgd)
    for match in iter_applicable_tgd_bindings(query, tgd, index=index, plan=plan):
        yield trigger_homomorphism(plan, match)


def is_tgd_applicable(query: ConjunctiveQuery, tgd: TGD) -> bool:
    """Is a chase step with *tgd* applicable to *query*?"""
    for _ in iter_applicable_tgd_bindings(query, tgd):
        return True
    return False


def is_recorded_trigger_applicable(
    query: ConjunctiveQuery,
    tgd: TGD,
    homomorphism: Mapping[Term, Term],
    *,
    index: TargetIndex | None = None,
    plan: TGDPlan | None = None,
) -> bool:
    """Is the *recorded* premise homomorphism still an applicable trigger?

    The incremental chase replays checkpointed step provenance against a
    state that has grown since the step originally fired.  A recorded
    trigger is still applicable exactly when (a) it still maps the premise
    into the current body — atom by atom, no search — and (b) it still
    cannot be extended to cover the conclusion.  Unlike premise validity,
    (b) is *not* monotone in the body: atoms added by a delta can satisfy
    the conclusion, in which case re-adding the recorded atoms would no
    longer be a chase step at all and the caller must fall back to a cold
    run.
    """
    if index is None:
        index = TargetIndex(query.body)
    if plan is None:
        plan = TGDPlan(tgd)
    body = set(query.body)
    if any(atom.substitute(homomorphism) not in body for atom in tgd.premise):
        return False
    return find_match(plan.conclusion, index, fixed=homomorphism) is None


def conclusion_instantiation(
    query: ConjunctiveQuery,
    tgd: TGD,
    homomorphism: Mapping[Term, Term],
    used_names: set[str] | None = None,
) -> tuple[tuple[Atom, ...], dict[Variable, Variable]]:
    """Instantiate the tgd's conclusion for one chase step.

    Universal variables are replaced by their image under *homomorphism*;
    existential variables are replaced by fresh variables that collide
    neither with the query nor with the dependency.  Returns the new atoms
    and the existential-variable renaming used.

    ``used_names`` lets a chase driver forbid *every* variable name it has
    ever produced, not just the names currently occurring in the query:
    without it, a name eliminated by an earlier egd step could be reused for
    an unrelated fresh variable, which would confuse provenance-based checks
    such as the assignment-fixing test (Definition 4.3).  The set is updated
    in place with the names generated here.
    """
    existential = tgd.existential_variables()
    forbidden = set(query.variable_names())
    forbidden |= {v.name for v in tgd.all_variables()}
    if used_names is not None:
        forbidden |= used_names
    factory = FreshVariableFactory(forbidden)
    fresh: dict[Variable, Variable] = {
        var: factory(hint=var.name) for var in existential
    }
    if used_names is not None:
        used_names.update(v.name for v in fresh.values())
    substitution: dict[Term, Term] = dict(homomorphism)
    substitution.update(fresh.items())
    atoms = tuple(atom.substitute(substitution) for atom in tgd.conclusion)
    return atoms, fresh


def apply_tgd_step(
    query: ConjunctiveQuery,
    tgd: TGD,
    homomorphism: Mapping[Term, Term],
    used_names: set[str] | None = None,
) -> tuple[ConjunctiveQuery, ChaseStepRecord]:
    """Apply one tgd chase step and return the rewritten query plus its record."""
    atoms, _ = conclusion_instantiation(query, tgd, homomorphism, used_names)
    new_query = query.add_atoms(atoms)
    record = ChaseStepRecord(
        dependency=tgd,
        homomorphism=dict(homomorphism),
        kind="tgd",
        added_atoms=atoms,
    )
    return new_query, record


# ---------------------------------------------------------------------- #
# EGD steps
# ---------------------------------------------------------------------- #
def iter_applicable_egd_bindings(
    query: ConjunctiveQuery,
    egd: EGD,
    *,
    index: TargetIndex | None = None,
    plan: EGDPlan | None = None,
) -> Iterator[tuple[BindingMatch, Term, Term]]:
    """Binding-level egd trigger scan: ``(match, image_left, image_right)``.

    The equality images are read straight off the premise match's term array
    through the plan's precompiled ``equality_codes`` — a premise match none
    of whose equalities fire is discharged without materializing a dict.
    Applicable means the two images differ; the yielded match is borrowed
    (copy out via :func:`trigger_homomorphism`).
    """
    if index is None:
        index = TargetIndex(query.body)
    if plan is None:
        plan = EGDPlan(egd)
    equality_codes = plan.equality_codes
    for match in iter_binding_matches(plan.premise, index):
        bound_terms = match[1]
        for left_slot, left_term, right_slot, right_term in equality_codes:
            left = bound_terms[left_slot] if left_slot >= 0 else left_term
            right = bound_terms[right_slot] if right_slot >= 0 else right_term
            if left != right:
                yield match, left, right  # type: ignore[misc]


def iter_applicable_egd_homomorphisms(
    query: ConjunctiveQuery,
    egd: EGD,
    *,
    index: TargetIndex | None = None,
    plan: EGDPlan | None = None,
) -> Iterator[tuple[Homomorphism, Term, Term]]:
    """Yield ``(h, image_left, image_right)`` for applicable egd steps.

    Applicable means the two images differ; the caller decides how to unify
    them (or to fail when both are constants).  This is the dict-yielding API
    boundary over :func:`iter_applicable_egd_bindings`; one dictionary is
    built per premise match with at least one firing equality (shared across
    that match's equalities, as before).  ``index`` and ``plan`` play the
    same sharing roles as in :func:`iter_applicable_tgd_homomorphisms`.
    """
    if plan is None:
        plan = EGDPlan(egd)
    hom: Homomorphism | None = None
    last_match: BindingMatch | None = None
    for match, left, right in iter_applicable_egd_bindings(
        query, egd, index=index, plan=plan
    ):
        if match is not last_match:
            hom = trigger_homomorphism(plan, match)
            last_match = match
        assert hom is not None
        yield hom, left, right


def is_egd_applicable(query: ConjunctiveQuery, egd: EGD) -> bool:
    """Is a chase step with *egd* applicable (or failing) on *query*?"""
    for _ in iter_applicable_egd_bindings(query, egd):
        return True
    return False


def apply_egd_step(
    query: ConjunctiveQuery,
    egd: EGD,
    homomorphism: Mapping[Term, Term],
    left: Term,
    right: Term,
) -> tuple[ConjunctiveQuery, ChaseStepRecord]:
    """Apply one egd chase step, identifying *left* and *right* in the query.

    A variable is replaced by the other term (preferring to keep constants);
    two distinct constants raise :class:`ChaseFailedError`.
    """
    if isinstance(left, Constant) and isinstance(right, Constant):
        raise ChaseFailedError(
            f"egd {egd} forces distinct constants {left} = {right}; "
            "the query is unsatisfiable under the dependencies"
        )
    if isinstance(left, Variable):
        substitution: dict[Term, Term] = {left: right}
    else:
        substitution = {right: left}
    new_query = query.substitute(substitution)
    record = ChaseStepRecord(
        dependency=egd,
        homomorphism=dict(homomorphism),
        kind="egd",
        substitution=substitution,
    )
    return new_query, record


def deduplicate_body(
    query: ConjunctiveQuery, predicates: set[str] | None = None
) -> ConjunctiveQuery:
    """Drop duplicate subgoals, optionally only for the given predicates.

    After an egd step identifies variables, duplicate subgoals can appear.
    Under set and bag-set semantics they may always be dropped; under bag
    semantics only subgoals over set-valued relations may be dropped
    (Theorem 4.1, item 2, justified by Theorem 4.2).
    """
    if predicates is None:
        return query.canonical_representation()
    return query.drop_duplicates_for(predicates)
