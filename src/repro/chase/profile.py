"""Chase profiling: what a chase run actually did, and what it skipped.

A :class:`ChaseProfile` is attached to every :class:`~repro.chase.set_chase.
ChaseResult` produced by the drivers in this package.  It records the work
visible at the chase level — rounds, steps by kind, candidate triggers
examined, dependencies skipped by the delta trigger index — plus the
homomorphism-index counters (lookups and posting-list narrowings) retired
from every :class:`~repro.core.homomorphism.TargetIndex` the run built,
including the ones built by nested assignment-fixing test chases.  Wall time
is measured with :func:`time.perf_counter` around the whole run.

Profiles are plain mutable counters: the Session engine merges the profile
of every cold chase into a per-session aggregate, and the CLI's
``chase --profile`` flag prints one run's summary.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.query import CANONICALIZATION_STATS
from ..core.terms import INTERN_STATS

if TYPE_CHECKING:  # imported for annotations only (profile sits below both)
    from ..core.homomorphism import TargetIndex
    from .plans import PlanCache

#: ``((intern hits, intern misses), (structural-key hits, misses))``.
CoreStatsSnapshot = tuple[tuple[int, int], tuple[int, int]]


def snapshot_core_stats() -> CoreStatsSnapshot:
    """Snapshot the process-wide interning / canonicalization counters.

    Chase drivers take one at run start and fold the delta into their
    profile via :meth:`ChaseProfile.record_core_stats`.
    """
    return (INTERN_STATS.snapshot(), CANONICALIZATION_STATS.snapshot())


@dataclass
class ChaseProfile:
    """Counters describing one chase run (or an aggregate of several)."""

    #: Semantics label the profiled chase ran under ("" for aggregates).
    semantics: str = ""
    #: Number of chase runs merged into this profile (1 for a single run).
    runs: int = 1
    #: Outer-loop iterations: one per applied step, plus the final
    #: no-step-found round.
    rounds: int = 0
    egd_steps: int = 0
    tgd_steps: int = 0
    #: Candidate triggers the driver inspected: applicable egd (hom,
    #: equality) pairs plus tgd premise homomorphisms tested for soundness.
    triggers_examined: int = 0
    #: Dependency scans skipped because the delta trigger index proved no
    #: new trigger can exist since the dependency's last clean scan.
    dependencies_skipped: int = 0
    #: TargetIndex candidate lookups / lookups narrowed by a posting list.
    index_lookups: int = 0
    index_hits: int = 0
    #: Compiled-match-kernel searches run (one per premise / conclusion /
    #: containment probe against a TargetIndex).
    kernel_searches: int = 0
    #: Binding-level tgd-conclusion extension probes run directly on a
    #: premise slot array, and premise matches those probes discharged
    #: without ever materializing a ``{variable: term}`` dictionary.
    extension_probes: int = 0
    dicts_avoided: int = 0
    #: Per-Σ plan sets a sigma-subset scan's ``is_sound_chase_step`` calls
    #: served from the PlanCache instead of re-regularizing / re-compiling
    #: (zero outside sigma-subset scans).
    subset_plans_reused: int = 0
    #: Per-Σ plan sets compiled vs served from the PlanCache during the run
    #: (the nested Definition 4.3 test chases consult the cache too, so a
    #: single run typically records many reuses).
    plans_compiled: int = 0
    plans_reused: int = 0
    #: Assignment-fixing verdicts computed via a test-query chase vs served
    #: from the per-run memo (Definition 4.3 work avoided).
    assignment_fixing_tests: int = 0
    assignment_fixing_cache_hits: int = 0
    #: Term intern-table hits / misses (Variable + Constant constructions
    #: served from / added to the per-process intern tables) during the run.
    intern_hits: int = 0
    intern_misses: int = 0
    #: ``structural_key()`` calls served from the per-query memo vs computed
    #: (a miss runs the full normal-form renaming once per query object).
    structural_key_hits: int = 0
    structural_key_misses: int = 0
    #: Chase-cache keys assembled vs reused from the Session's per-query
    #: memo, and the wall time spent assembling them (Session-level: cold
    #: chase runs leave these at zero).
    cache_keys_built: int = 0
    cache_keys_reused: int = 0
    key_build_time: float = 0.0
    wall_time: float = 0.0

    @property
    def steps(self) -> int:
        """Total applied chase steps."""
        return self.egd_steps + self.tgd_steps

    @property
    def index_hit_rate(self) -> float:
        """Fraction of index lookups a posting list narrowed (0.0 when unused)."""
        return self.index_hits / self.index_lookups if self.index_lookups else 0.0

    # ------------------------------------------------------------------ #
    def record_core_stats(self, baseline: CoreStatsSnapshot) -> None:
        """Fold in the interning / structural-key activity since *baseline*.

        The counters are process-global, so the delta attributes to this
        profile everything the run did — including nested test chases, whose
        construction work genuinely belongs to the outer run.
        """
        (intern_hits, intern_misses), (key_hits, key_misses) = baseline
        self.intern_hits += INTERN_STATS.hits - intern_hits
        self.intern_misses += INTERN_STATS.misses - intern_misses
        self.structural_key_hits += CANONICALIZATION_STATS.hits - key_hits
        self.structural_key_misses += CANONICALIZATION_STATS.misses - key_misses

    def retire_index(self, index: "TargetIndex") -> None:
        """Fold a :class:`TargetIndex`'s counters in and zero them out."""
        self.index_lookups += index.lookups
        self.index_hits += index.narrowed
        self.kernel_searches += index.searches
        self.extension_probes += index.extension_probes
        self.dicts_avoided += index.dicts_avoided
        index.lookups = 0
        index.narrowed = 0
        index.searches = 0
        index.extension_probes = 0
        index.dicts_avoided = 0

    def record_plan_stats(
        self, baseline: tuple[int, int], cache: "PlanCache"
    ) -> None:
        """Fold in the plan-cache activity since *baseline* (a cache snapshot).

        Like :meth:`record_core_stats`, the delta attributes to this profile
        everything the run did, including the plan lookups of nested
        assignment-fixing test chases that used the same cache.
        """
        hits, misses = baseline
        self.plans_reused += cache.hits - hits
        self.plans_compiled += cache.misses - misses

    def merge(self, other: "ChaseProfile") -> None:
        """Accumulate *other* into this profile (used for aggregates)."""
        if self.runs == 0:
            self.semantics = other.semantics
        elif self.semantics != other.semantics:
            self.semantics = ""  # mixed-semantics aggregate
        self.runs += other.runs
        self.rounds += other.rounds
        self.egd_steps += other.egd_steps
        self.tgd_steps += other.tgd_steps
        self.triggers_examined += other.triggers_examined
        self.dependencies_skipped += other.dependencies_skipped
        self.index_lookups += other.index_lookups
        self.index_hits += other.index_hits
        self.kernel_searches += other.kernel_searches
        self.extension_probes += other.extension_probes
        self.dicts_avoided += other.dicts_avoided
        self.subset_plans_reused += other.subset_plans_reused
        self.plans_compiled += other.plans_compiled
        self.plans_reused += other.plans_reused
        self.assignment_fixing_tests += other.assignment_fixing_tests
        self.assignment_fixing_cache_hits += other.assignment_fixing_cache_hits
        self.intern_hits += other.intern_hits
        self.intern_misses += other.intern_misses
        self.structural_key_hits += other.structural_key_hits
        self.structural_key_misses += other.structural_key_misses
        self.cache_keys_built += other.cache_keys_built
        self.cache_keys_reused += other.cache_keys_reused
        self.key_build_time += other.key_build_time
        self.wall_time += other.wall_time

    def as_dict(self) -> dict[str, object]:
        """A JSON-able snapshot of every counter plus the derived metrics.

        Used by :meth:`repro.session.Session.stats` (and through it the
        ``repro serve`` ``stats`` endpoint); a plain ``asdict`` would miss
        the derived ``steps`` / ``index_hit_rate`` properties.
        """
        snapshot: dict[str, object] = dataclasses.asdict(self)
        snapshot["steps"] = self.steps
        snapshot["index_hit_rate"] = self.index_hit_rate
        return snapshot

    def summary_lines(self) -> list[str]:
        """Human-readable summary, one counter per line (used by the CLI)."""
        label = self.semantics or "mixed"
        lines = [
            f"chase profile ({label}, {self.runs} run{'s' if self.runs != 1 else ''}):",
            f"  steps            : {self.steps} ({self.tgd_steps} tgd, {self.egd_steps} egd) in {self.rounds} rounds",
            f"  triggers examined: {self.triggers_examined} "
            f"({self.dependencies_skipped} dependency scans delta-skipped)",
            f"  index lookups    : {self.index_lookups} ({self.index_hit_rate:.1%} narrowed by postings)",
        ]
        if self.kernel_searches:
            lines.append(f"  kernel searches  : {self.kernel_searches}")
        if self.extension_probes:
            lines.append(
                f"  extension probes : {self.extension_probes} binding-level "
                f"({self.dicts_avoided} trigger dicts avoided)"
            )
        if self.subset_plans_reused:
            lines.append(
                f"  subset plan reuse: {self.subset_plans_reused} cache hits"
            )
        if self.plans_compiled or self.plans_reused:
            lines.append(
                f"  match plans      : {self.plans_reused} reused, "
                f"{self.plans_compiled} compiled"
            )
        if self.assignment_fixing_tests or self.assignment_fixing_cache_hits:
            lines.append(
                f"  assignment-fixing: {self.assignment_fixing_tests} test chases, "
                f"{self.assignment_fixing_cache_hits} memo hits"
            )
        if self.intern_hits or self.intern_misses:
            lines.append(
                f"  term interning   : {self.intern_hits} hits, "
                f"{self.intern_misses} new terms"
            )
        if self.structural_key_hits or self.structural_key_misses:
            lines.append(
                f"  structural keys  : {self.structural_key_hits} memo hits, "
                f"{self.structural_key_misses} computed"
            )
        if self.cache_keys_built or self.cache_keys_reused:
            lines.append(
                f"  cache keys       : {self.cache_keys_built} built, "
                f"{self.cache_keys_reused} reused "
                f"({self.key_build_time * 1000:.2f} ms building)"
            )
        lines.append(f"  wall time        : {self.wall_time * 1000:.2f} ms")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())
