"""Chase profiling: what a chase run actually did, and what it skipped.

A :class:`ChaseProfile` is attached to every :class:`~repro.chase.set_chase.
ChaseResult` produced by the drivers in this package.  It records the work
visible at the chase level — rounds, steps by kind, candidate triggers
examined, dependencies skipped by the delta trigger index — plus the
homomorphism-index counters (lookups and posting-list narrowings) retired
from every :class:`~repro.core.homomorphism.TargetIndex` the run built,
including the ones built by nested assignment-fixing test chases.  Wall time
is measured with :func:`time.perf_counter` around the whole run.

Profiles are plain mutable counters: the Session engine merges the profile
of every cold chase into a per-session aggregate, and the CLI's
``chase --profile`` flag prints one run's summary.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ChaseProfile:
    """Counters describing one chase run (or an aggregate of several)."""

    #: Semantics label the profiled chase ran under ("" for aggregates).
    semantics: str = ""
    #: Number of chase runs merged into this profile (1 for a single run).
    runs: int = 1
    #: Outer-loop iterations: one per applied step, plus the final
    #: no-step-found round.
    rounds: int = 0
    egd_steps: int = 0
    tgd_steps: int = 0
    #: Candidate triggers the driver inspected: applicable egd (hom,
    #: equality) pairs plus tgd premise homomorphisms tested for soundness.
    triggers_examined: int = 0
    #: Dependency scans skipped because the delta trigger index proved no
    #: new trigger can exist since the dependency's last clean scan.
    dependencies_skipped: int = 0
    #: TargetIndex candidate lookups / lookups narrowed by a posting list.
    index_lookups: int = 0
    index_hits: int = 0
    #: Assignment-fixing verdicts computed via a test-query chase vs served
    #: from the per-run memo (Definition 4.3 work avoided).
    assignment_fixing_tests: int = 0
    assignment_fixing_cache_hits: int = 0
    wall_time: float = 0.0

    @property
    def steps(self) -> int:
        """Total applied chase steps."""
        return self.egd_steps + self.tgd_steps

    @property
    def index_hit_rate(self) -> float:
        """Fraction of index lookups a posting list narrowed (0.0 when unused)."""
        return self.index_hits / self.index_lookups if self.index_lookups else 0.0

    # ------------------------------------------------------------------ #
    def retire_index(self, index) -> None:
        """Fold a :class:`TargetIndex`'s counters in and zero them out."""
        self.index_lookups += index.lookups
        self.index_hits += index.narrowed
        index.lookups = 0
        index.narrowed = 0

    def merge(self, other: "ChaseProfile") -> None:
        """Accumulate *other* into this profile (used for aggregates)."""
        if self.runs == 0:
            self.semantics = other.semantics
        elif self.semantics != other.semantics:
            self.semantics = ""  # mixed-semantics aggregate
        self.runs += other.runs
        self.rounds += other.rounds
        self.egd_steps += other.egd_steps
        self.tgd_steps += other.tgd_steps
        self.triggers_examined += other.triggers_examined
        self.dependencies_skipped += other.dependencies_skipped
        self.index_lookups += other.index_lookups
        self.index_hits += other.index_hits
        self.assignment_fixing_tests += other.assignment_fixing_tests
        self.assignment_fixing_cache_hits += other.assignment_fixing_cache_hits
        self.wall_time += other.wall_time

    def summary_lines(self) -> list[str]:
        """Human-readable summary, one counter per line (used by the CLI)."""
        label = self.semantics or "mixed"
        lines = [
            f"chase profile ({label}, {self.runs} run{'s' if self.runs != 1 else ''}):",
            f"  steps            : {self.steps} ({self.tgd_steps} tgd, {self.egd_steps} egd) in {self.rounds} rounds",
            f"  triggers examined: {self.triggers_examined} "
            f"({self.dependencies_skipped} dependency scans delta-skipped)",
            f"  index lookups    : {self.index_lookups} ({self.index_hit_rate:.1%} narrowed by postings)",
        ]
        if self.assignment_fixing_tests or self.assignment_fixing_cache_hits:
            lines.append(
                f"  assignment-fixing: {self.assignment_fixing_tests} test chases, "
                f"{self.assignment_fixing_cache_hits} memo hits"
            )
        lines.append(f"  wall time        : {self.wall_time * 1000:.2f} ms")
        return lines

    def __str__(self) -> str:
        return "\n".join(self.summary_lines())
