"""Assignment-fixing tgds (Definitions 4.3 and 4.4 of the paper).

A regularized tgd σ applicable to a query Q via homomorphism h is
*assignment fixing* w.r.t. (Q, h) when, in the terminal set-chase result of
the associated test query Q^{σ,h,θ}, at most one variable of each pair
(Zi, θ(Zi)) survives — intuitively, the dependencies force the existential
witnesses to be unique, so adding the conclusion to Q cannot change answer
multiplicities under bag or bag-set semantics.

Full tgds (no existential variables) are assignment fixing w.r.t. every
query they apply to (Proposition 4.3).

The notion is *query dependent* (Example 5.1) and strictly generalises
key-based tgds / UWDs (Definition 5.1, Example 4.8); the comparison helper
:func:`compare_with_key_based` makes that relationship easy to inspect.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..core.query import ConjunctiveQuery
from ..core.terms import Term
from ..dependencies.base import TGD, Dependency, DependencySet
from ..dependencies.classify import is_key_based_tgd
from .set_chase import DEFAULT_MAX_STEPS, set_chase
from .steps import iter_applicable_tgd_homomorphisms
from .test_query import associated_test_query


def is_assignment_fixing_for(
    query: ConjunctiveQuery,
    tgd: TGD,
    homomorphism: Mapping[Term, Term],
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Is *tgd* assignment fixing w.r.t. (*query*, *homomorphism*)?

    Definition 4.3: chase the associated test query under set semantics and
    check that at most one of Zi and θ(Zi) survives for every existential
    variable.

    Definition 4.3 is stated for regularized tgds; the test itself is well
    defined for any tgd, and the paper applies it verbatim to tgds such as
    σ4 of Example 4.3 (which admits a nonshared partition), so no
    regularization is enforced here.  The *sound chase* always regularizes
    its dependency set first, so soundness is unaffected.
    """
    if tgd.is_full():
        # Proposition 4.3.
        return True
    test = associated_test_query(query, tgd, homomorphism)
    chased = set_chase(test.query, dependencies, max_steps=max_steps)
    surviving = {v for atom in chased.query.body for v in atom.variables()}
    for z_var, theta_var in test.existential_pairs:
        if z_var in surviving and theta_var in surviving:
            return False
    return True


def is_assignment_fixing(
    query: ConjunctiveQuery,
    tgd: TGD,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Is *tgd* assignment fixing w.r.t. *query* (for some applicable homomorphism)?

    Returns False when the tgd is not applicable to the query at all.
    """
    for homomorphism in iter_applicable_tgd_homomorphisms(query, tgd):
        if is_assignment_fixing_for(query, tgd, homomorphism, dependencies, max_steps):
            return True
    return False


def compare_with_key_based(
    query: ConjunctiveQuery,
    tgd: TGD,
    dependencies: DependencySet,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> dict[str, bool]:
    """Compare the assignment-fixing and key-based classifications of *tgd*.

    Returns ``{"assignment_fixing": ..., "key_based": ...}``.  Key-based
    implies assignment fixing (for applicable tgds); the converse fails —
    Example 4.8 of the paper — which this helper lets tests and the ablation
    benchmark demonstrate directly.
    """
    return {
        "assignment_fixing": is_assignment_fixing(query, tgd, dependencies, max_steps),
        "key_based": is_key_based_tgd(tgd, dependencies),
    }
