"""Assignment-fixing tgds (Definitions 4.3 and 4.4 of the paper).

A regularized tgd σ applicable to a query Q via homomorphism h is
*assignment fixing* w.r.t. (Q, h) when, in the terminal set-chase result of
the associated test query Q^{σ,h,θ}, at most one variable of each pair
(Zi, θ(Zi)) survives — intuitively, the dependencies force the existential
witnesses to be unique, so adding the conclusion to Q cannot change answer
multiplicities under bag or bag-set semantics.

Full tgds (no existential variables) are assignment fixing w.r.t. every
query they apply to (Proposition 4.3).

The notion is *query dependent* (Example 5.1) and strictly generalises
key-based tgds / UWDs (Definition 5.1, Example 4.8); the comparison helper
:func:`compare_with_key_based` makes that relationship easy to inspect.
"""

from __future__ import annotations

from typing import Hashable, Mapping, MutableMapping, Sequence

from ..core.query import ConjunctiveQuery
from ..core.terms import Term
from ..dependencies.base import TGD, Dependency, DependencySet
from ..dependencies.classify import is_key_based_tgd
from .plans import PlanCache, TGDPlan
from .profile import ChaseProfile
from .set_chase import DEFAULT_MAX_STEPS, set_chase
from .steps import iter_applicable_tgd_bindings, trigger_homomorphism
from .test_query import AssociatedTestQuery, associated_test_query


def _canonical_verdict_key(test: AssociatedTestQuery, max_steps: int) -> Hashable:
    """A key under which structurally identical Definition 4.3 tests coincide.

    The verdict is a pure function of (test query, monitored pairs, Σ,
    max_steps).  The query contributes its structural key (a deterministic
    variable renaming), and each monitored variable is represented by its
    first-occurrence position in the head-then-body term stream — the same
    order the renaming canonicalizes on — so two alpha-variant tests that
    monitor corresponding variables share a key.  Σ is fixed by the memo's
    owner (one memo per chase run), so it does not appear in the key.
    """
    query = test.query
    positions: dict[Term, int] = {}
    for term in query.head_terms:
        positions.setdefault(term, len(positions))
    for atom in query.body:
        for term in atom.terms:
            positions.setdefault(term, len(positions))
    pair_positions = tuple(
        (positions.get(z_var, -1), positions.get(theta_var, -1))
        for z_var, theta_var in test.existential_pairs
    )
    return (query.structural_key(), pair_positions, max_steps)


def is_assignment_fixing_for(
    query: ConjunctiveQuery,
    tgd: TGD,
    homomorphism: Mapping[Term, Term],
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    memo: MutableMapping[Hashable, bool] | None = None,
    profile: ChaseProfile | None = None,
    plan_cache: PlanCache | None = None,
) -> bool:
    """Is *tgd* assignment fixing w.r.t. (*query*, *homomorphism*)?

    Definition 4.3: chase the associated test query under set semantics and
    check that at most one of Zi and θ(Zi) survives for every existential
    variable.

    Definition 4.3 is stated for regularized tgds; the test itself is well
    defined for any tgd, and the paper applies it verbatim to tgds such as
    σ4 of Example 4.3 (which admits a nonshared partition), so no
    regularization is enforced here.  The *sound chase* always regularizes
    its dependency set first, so soundness is unaffected.

    ``memo`` caches verdicts per canonicalized test query within one chase
    run (the owner must keep Σ and the step budget fixed for the memo's
    lifetime); the verdict being a pure function of the canonical test, a
    hit is exact, not approximate.  ``profile`` receives the test/hit
    counters and the index counters of the test chase; ``plan_cache`` is
    handed to the test chase so it reuses the caller's compiled plans.
    """
    if tgd.is_full():
        # Proposition 4.3.
        return True
    test = associated_test_query(query, tgd, homomorphism)
    if memo is not None:
        key = _canonical_verdict_key(test, max_steps)
        cached = memo.get(key)
        if cached is not None:
            if profile is not None:
                profile.assignment_fixing_cache_hits += 1
            return cached
    chased = set_chase(test.query, dependencies, max_steps=max_steps, plan_cache=plan_cache)
    if profile is not None:
        profile.assignment_fixing_tests += 1
        if chased.profile is not None:
            profile.index_lookups += chased.profile.index_lookups
            profile.index_hits += chased.profile.index_hits
            # Keep the kernel counter consistent with the index counters it
            # is read against: every lookup happens inside a kernel search,
            # so the nested chase's searches belong to this profile too.
            profile.kernel_searches += chased.profile.kernel_searches
    surviving = {v for atom in chased.query.body for v in atom.variables()}
    verdict = True
    for z_var, theta_var in test.existential_pairs:
        if z_var in surviving and theta_var in surviving:
            verdict = False
            break
    if memo is not None:
        memo[key] = verdict
    return verdict


def is_assignment_fixing(
    query: ConjunctiveQuery,
    tgd: TGD,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Is *tgd* assignment fixing w.r.t. *query* (for some applicable homomorphism)?

    Returns False when the tgd is not applicable to the query at all.
    """
    plan = TGDPlan(tgd)
    for match in iter_applicable_tgd_bindings(query, tgd, plan=plan):
        homomorphism = trigger_homomorphism(plan, match)
        if is_assignment_fixing_for(query, tgd, homomorphism, dependencies, max_steps):
            return True
    return False


def compare_with_key_based(
    query: ConjunctiveQuery,
    tgd: TGD,
    dependencies: DependencySet,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> dict[str, bool]:
    """Compare the assignment-fixing and key-based classifications of *tgd*.

    Returns ``{"assignment_fixing": ..., "key_based": ...}``.  Key-based
    implies assignment fixing (for applicable tgds); the converse fails —
    Example 4.8 of the paper — which this helper lets tests and the ablation
    benchmark demonstrate directly.
    """
    return {
        "assignment_fixing": is_assignment_fixing(query, tgd, dependencies, max_steps),
        "key_based": is_key_based_tgd(tgd, dependencies),
    }
