"""Incremental chase: resumable fixpoints for instance and Σ deltas.

A cold chase run throws away everything it learned the moment it returns:
the terminal atoms, the trigger frontier (which dependencies were proven
unable to fire), the provenance of every applied step, and the labeled-null
state (which variable names the run consumed).  This module captures that
state as a :class:`ChaseCheckpoint` and *resumes* from it when the base
query gains atoms or Σ gains a dependency — seeding only the delta into the
trigger index instead of rechasing from scratch.

Soundness is semantics-dependent and the resume strategy differs
accordingly:

* **Set semantics** — every checkpointed step stays equivalence-preserving
  on the grown base: a recorded tgd step whose trigger became satisfied by
  the delta is still an *oblivious* chase step (its atoms are homomorphically
  implied), and oblivious steps preserve set equivalence under Σ.  The resume
  therefore starts directly from ``fixpoint ∪ σ(Δ)`` — the checkpointed
  fixpoint plus the delta atoms rewritten by the run's composed egd
  substitution — with the trigger frontier seeded from the checkpoint and
  dirtied only for the delta's predicates.  No step is re-examined.
  The continuation ends in a terminal state Σ-equivalent to the cold chase
  of the new base (terminal chase results of set-equivalent inputs are
  homomorphically equivalent), though not in general *syntactically* equal
  to it: restricted-chase applicability is non-monotone, so a resumed run
  may carry an atom a cold run never generates.

* **Bag / bag-set semantics** — Definition 4.3's assignment-fixing verdict
  is taken against the *whole current query* and is non-monotone: a step
  that was sound against the old base may be unsound against the grown one.
  The resume therefore **replay-validates** the checkpointed provenance in
  order against states rebuilt with the delta present: egd records re-apply
  their recorded substitution (always sound — Theorems 4.1/4.3 item 2); tgd
  records re-check that the recorded trigger is still applicable and still
  assignment-fixing under the new Σ.  Any flip aborts to a cold run.  A
  successful replay *is* a sound-chase prefix of the new base, so by the
  uniqueness theorems (5.1 / G.1) the continuation's terminal result is
  bag-equivalent to the cold one.

Non-monotone edits — removing an atom or a dependency — always fall back to
a cold run, as does a delta whose atoms reuse a variable name the
checkpointed run generated (the name would silently alias a labeled null).
Every fallback is reported with a stable ``fallback_reason`` slug in the
:class:`ResumeOutcome`, and the cold run itself produces a fresh checkpoint,
so a fallback never breaks the resume chain.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping, Sequence

import time

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..exceptions import ChaseError, DeltaRejectedError, QueryError
from ..semantics import Semantics
from .assignment_fixing import is_assignment_fixing_for
from .delta import ChaseCapture, TriggerIndex
from .plans import PlanCache, SigmaPlans, default_plan_cache
from .profile import ChaseProfile, snapshot_core_stats
from .set_chase import DEFAULT_MAX_STEPS, ChaseResult, _drive_set_chase
from .sound_chase import _drive_sound_chase, _first_sound_tgd_step, sound_chase
from .steps import (
    ChaseStepRecord,
    deduplicate_body,
    is_recorded_trigger_applicable,
)

__all__ = [
    "ChaseCheckpoint",
    "ChaseDelta",
    "ResumableChase",
    "ResumeOutcome",
    "apply_delta_to_query",
    "apply_delta_to_sigma",
    "chase_with_checkpoint",
    "has_applicable_step",
    "resume_chase",
    "sigma_extension_suffix",
    "validate_delta",
]


# ---------------------------------------------------------------------- #
# Deltas
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaseDelta:
    """One edit to a chase input: atoms for the base query, dependencies for Σ.

    Additions are the monotone, resumable direction; removals force a cold
    fallback but are accepted so callers can express the full edit in one
    delta.  ``set_valued`` lists extra set-valued markers accompanying added
    dependencies (markers may only grow through a delta — shrinking them
    would invalidate checkpointed bag-soundness verdicts, so there is no
    removal field for them).
    """

    added_atoms: tuple[Atom, ...] = ()
    added_dependencies: tuple[Dependency, ...] = ()
    removed_atoms: tuple[Atom, ...] = ()
    removed_dependencies: tuple[Dependency, ...] = ()
    set_valued: frozenset[str] = frozenset()

    @property
    def is_empty(self) -> bool:
        return not (
            self.added_atoms
            or self.added_dependencies
            or self.removed_atoms
            or self.removed_dependencies
            or self.set_valued
        )

    @property
    def is_monotone(self) -> bool:
        """Only additions: the delta is eligible for a resumed run."""
        return not (self.removed_atoms or self.removed_dependencies)

    @classmethod
    def atoms(cls, *atoms: Atom) -> "ChaseDelta":
        return cls(added_atoms=tuple(atoms))

    @classmethod
    def dependencies(
        cls, *dependencies: Dependency, set_valued: Iterable[str] = ()
    ) -> "ChaseDelta":
        return cls(
            added_dependencies=tuple(dependencies), set_valued=frozenset(set_valued)
        )


def _dependency_key(dependency: Dependency) -> Hashable:
    """Structural identity of a dependency (names and object identity ignored)."""
    if isinstance(dependency, TGD):
        return ("tgd", dependency.premise, dependency.conclusion)
    if isinstance(dependency, EGD):
        return ("egd", dependency.premise, dependency.equalities)
    raise ChaseError(f"unsupported dependency {dependency!r}")


def _known_arities(
    query: ConjunctiveQuery, sigma: DependencySet
) -> dict[str, int]:
    arities: dict[str, int] = {}
    for atom in query.body:
        arities.setdefault(atom.predicate, atom.arity)
    for dependency in sigma:
        atoms: Iterable[Atom] = dependency.premise
        if isinstance(dependency, TGD):
            atoms = list(dependency.premise) + list(dependency.conclusion)
        for atom in atoms:
            arities.setdefault(atom.predicate, atom.arity)
    return arities


def validate_delta(
    query: ConjunctiveQuery, sigma: DependencySet, delta: ChaseDelta
) -> None:
    """Reject structurally invalid deltas before any state is touched.

    Raises :class:`DeltaRejectedError` with a stable ``reason`` slug:
    ``empty-delta``, ``unknown-atom`` (removing an atom the base query does
    not contain, counting multiplicity), ``unknown-dependency`` (removing a
    dependency Σ does not contain), or ``arity-conflict`` (an added atom or
    dependency disagrees with a predicate's known arity).
    """
    if delta.is_empty:
        raise DeltaRejectedError("the delta is empty", reason="empty-delta")
    if delta.removed_atoms:
        available = Counter(query.body)
        for atom in delta.removed_atoms:
            if available[atom] <= 0:
                raise DeltaRejectedError(
                    f"cannot remove {atom}: not in the base query body",
                    reason="unknown-atom",
                )
            available[atom] -= 1
    if delta.removed_dependencies:
        available_deps = Counter(_dependency_key(d) for d in sigma)
        for dependency in delta.removed_dependencies:
            key = _dependency_key(dependency)
            if available_deps[key] <= 0:
                raise DeltaRejectedError(
                    f"cannot remove dependency {dependency}: not in Σ",
                    reason="unknown-dependency",
                )
            available_deps[key] -= 1
    arities = _known_arities(query, sigma)
    new_atoms: list[Atom] = list(delta.added_atoms)
    for dependency in delta.added_dependencies:
        new_atoms.extend(dependency.premise)
        if isinstance(dependency, TGD):
            new_atoms.extend(dependency.conclusion)
    for atom in new_atoms:
        known = arities.setdefault(atom.predicate, atom.arity)
        if known != atom.arity:
            raise DeltaRejectedError(
                f"atom {atom} has arity {atom.arity} but predicate "
                f"{atom.predicate!r} is used with arity {known}",
                reason="arity-conflict",
            )


def apply_delta_to_query(
    query: ConjunctiveQuery, delta: ChaseDelta
) -> ConjunctiveQuery:
    """The base query after the delta: removals first, additions appended."""
    body = list(query.body)
    for atom in delta.removed_atoms:
        try:
            body.remove(atom)
        except ValueError:
            raise DeltaRejectedError(
                f"cannot remove {atom}: not in the base query body",
                reason="unknown-atom",
            ) from None
    body.extend(delta.added_atoms)
    try:
        return query.with_body(body)
    except QueryError as exc:
        raise DeltaRejectedError(
            f"delta leaves the query malformed: {exc}", reason="unsafe-removal"
        ) from exc


def sigma_extension_suffix(
    old: DependencySet, new: DependencySet
) -> tuple[tuple[Dependency, ...], frozenset[str]] | None:
    """If *new* extends *old*, the dependency suffix and new markers to add.

    *new* extends *old* when old's dependencies are a structural prefix of
    new's (in order) and old's set-valued markers a subset of new's.  The
    Session uses this to catch up a checkpoint taken under an earlier Σ:
    folding the returned suffix into a delta's added dependencies makes the
    checkpoint resumable against the current session state.  Returns ``None``
    when *new* is not an extension (the checkpoint can only be used cold).
    """
    old_deps = list(old.dependencies)
    new_deps = list(new.dependencies)
    if len(old_deps) > len(new_deps):
        return None
    for previous, current in zip(old_deps, new_deps):
        if _dependency_key(previous) != _dependency_key(current):
            return None
    if not old.set_valued_predicates <= new.set_valued_predicates:
        return None
    return (
        tuple(new_deps[len(old_deps):]),
        new.set_valued_predicates - old.set_valued_predicates,
    )


def apply_delta_to_sigma(sigma: DependencySet, delta: ChaseDelta) -> DependencySet:
    """Σ after the delta: removals first, additions appended, markers grown."""
    remaining = list(sigma.dependencies)
    for dependency in delta.removed_dependencies:
        key = _dependency_key(dependency)
        for position, existing in enumerate(remaining):
            if _dependency_key(existing) == key:
                del remaining[position]
                break
        else:
            raise DeltaRejectedError(
                f"cannot remove dependency {dependency}: not in Σ",
                reason="unknown-dependency",
            )
    remaining.extend(delta.added_dependencies)
    return DependencySet(
        remaining, sigma.set_valued_predicates | delta.set_valued
    )


# ---------------------------------------------------------------------- #
# Checkpoints
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class ChaseCheckpoint:
    """Everything a terminated chase run needs to be resumed.

    ``base_query`` is the *un-chased* input; ``result`` its terminal
    :class:`ChaseResult` (fixpoint atoms plus fired-step provenance);
    ``sigma`` the dependency set the run was chased under (frozen copy);
    ``used_names`` every variable name the run ever produced — the labeled
    null state, so continuation steps never reuse an eliminated name; and
    ``egd_clean`` / ``tgd_clean`` the terminal trigger frontier over the
    *regularized* Σ (growth-stable "cannot fire" verdicts, see
    :mod:`repro.chase.delta`).
    """

    base_query: ConjunctiveQuery
    result: ChaseResult
    sigma: DependencySet
    semantics: Semantics
    max_steps: int
    used_names: frozenset[str]
    egd_clean: tuple[bool, ...]
    tgd_clean: tuple[bool, ...]

    def composed_substitution(self) -> dict[Term, Term]:
        """The run's egd substitutions, composed into one mapping.

        Applying this to an atom of the base query yields the atom as it
        appears in the fixpoint; a delta atom that mentions a base variable
        the run later eliminated must be rewritten through it before being
        seeded into a resumed state.
        """
        composed: dict[Term, Term] = {}
        for record in self.result.steps:
            if record.kind != "egd":
                continue
            step = record.substitution
            for variable, image in composed.items():
                composed[variable] = step.get(image, image)
            for variable, image in step.items():
                composed.setdefault(variable, image)
        return composed

    def chase_generated_names(self) -> frozenset[str]:
        """Names invented by the run (labeled nulls): unusable in deltas."""
        return self.used_names - self.base_query.variable_names()

    # ------------------------------------------------------------------ #
    # Serialization.  Step provenance references the *regularized* items of
    # Σ by position; regularization is deterministic, so the positions are
    # stable across a render/parse round trip of the original Σ.
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, Any]:
        from ..datalog import render_dependency, render_query

        from ..dependencies.regularize import regularize_dependencies

        items = regularize_dependencies(self.sigma.dependencies)
        positions = {id(item): position for position, item in enumerate(items)}
        item_keys = {
            _dependency_key(item): position for position, item in enumerate(items)
        }

        def dependency_position(dependency: Dependency) -> int:
            position = positions.get(id(dependency))
            if position is None:
                position = item_keys.get(_dependency_key(dependency))
            if position is None:
                raise ChaseError(
                    f"checkpoint step references {dependency}, which is not "
                    "part of the regularized Σ"
                )
            return position

        return {
            "version": 1,
            "base_query": render_query(self.base_query),
            "fixpoint": render_query(self.result.query),
            "semantics": self.semantics.value,
            "max_steps": self.max_steps,
            "used_names": sorted(self.used_names),
            "egd_clean": list(self.egd_clean),
            "tgd_clean": list(self.tgd_clean),
            "sigma": {
                "dependencies": [
                    {"text": render_dependency(d), "name": d.name} for d in self.sigma
                ],
                "set_valued": sorted(self.sigma.set_valued_predicates),
            },
            "steps": [
                {
                    "kind": record.kind,
                    "dependency": dependency_position(record.dependency),
                    "homomorphism": _mapping_to_list(record.homomorphism),
                    "added_atoms": [_atom_to_dict(a) for a in record.added_atoms],
                    "substitution": _mapping_to_list(record.substitution),
                }
                for record in self.result.steps
            ],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ChaseCheckpoint":
        from ..datalog import parse_dependency, parse_query

        from ..dependencies.regularize import regularize_dependencies

        dependencies: list[Dependency] = []
        for entry in payload["sigma"]["dependencies"]:
            parsed = parse_dependency(entry["text"], name=entry.get("name", ""))
            if len(parsed) != 1:
                raise ChaseError(
                    f"checkpoint dependency {entry['text']!r} did not round-trip "
                    "to a single dependency"
                )
            dependencies.append(parsed[0])
        sigma = DependencySet(dependencies, payload["sigma"]["set_valued"])
        items = regularize_dependencies(sigma.dependencies)
        steps = []
        for entry in payload["steps"]:
            position = entry["dependency"]
            if not 0 <= position < len(items):
                raise ChaseError(
                    f"checkpoint step references dependency {position}, but the "
                    f"regularized Σ has {len(items)} items"
                )
            steps.append(
                ChaseStepRecord(
                    dependency=items[position],
                    homomorphism=_mapping_from_list(entry["homomorphism"]),
                    kind=entry["kind"],
                    added_atoms=tuple(
                        _atom_from_dict(a) for a in entry["added_atoms"]
                    ),
                    substitution=_mapping_from_list(entry["substitution"]),
                )
            )
        semantics = Semantics.from_name(payload["semantics"])
        result = ChaseResult(
            query=parse_query(payload["fixpoint"]),
            steps=steps,
            semantics=semantics,
            terminated=True,
            profile=None,
        )
        return cls(
            base_query=parse_query(payload["base_query"]),
            result=result,
            sigma=sigma,
            semantics=semantics,
            max_steps=int(payload["max_steps"]),
            used_names=frozenset(payload["used_names"]),
            egd_clean=tuple(bool(b) for b in payload["egd_clean"]),
            tgd_clean=tuple(bool(b) for b in payload["tgd_clean"]),
        )


def _term_to_dict(term: Term) -> dict[str, Any]:
    if isinstance(term, Variable):
        return {"var": term.name}
    if isinstance(term, Constant):
        return {"const": term.value}
    raise ChaseError(f"unsupported term {term!r}")


def _term_from_dict(payload: Mapping[str, Any]) -> Term:
    if "var" in payload:
        return Variable(payload["var"])
    return Constant(payload["const"])


def _atom_to_dict(atom: Atom) -> dict[str, Any]:
    return {"p": atom.predicate, "t": [_term_to_dict(t) for t in atom.terms]}


def _atom_from_dict(payload: Mapping[str, Any]) -> Atom:
    return Atom(payload["p"], [_term_from_dict(t) for t in payload["t"]])


def _mapping_to_list(mapping: Mapping[Term, Term]) -> list[list[dict[str, Any]]]:
    return [[_term_to_dict(k), _term_to_dict(v)] for k, v in mapping.items()]


def _mapping_from_list(payload: Iterable[Sequence[Mapping[str, Any]]]) -> dict[Term, Term]:
    return {_term_from_dict(k): _term_from_dict(v) for k, v in payload}


# ---------------------------------------------------------------------- #
# Outcomes
# ---------------------------------------------------------------------- #
@dataclass
class ResumeOutcome:
    """What one delta application did: the result, the new checkpoint, and
    how much work the resume avoided.

    ``replayed_steps`` counts checkpointed steps carried into the new run
    without a trigger search (under bag semantics each was re-validated
    against the grown state; under set semantics they are reused outright);
    ``new_steps`` counts steps the continuation actually searched for and
    applied.  ``fallback_reason`` is ``None`` on a resumed run and a stable
    slug (``"non-monotone-delta"``, ``"name-collision"``,
    ``"replay-trigger-invalid"``, ``"replay-not-assignment-fixing"``, ...)
    when the run fell back cold.
    """

    result: ChaseResult
    checkpoint: "ChaseCheckpoint | None"
    resumed: bool
    fallback_reason: str | None
    replayed_steps: int
    new_steps: int

    @property
    def steps_saved(self) -> int:
        """Checkpointed steps the resume did not have to re-derive by search."""
        return self.replayed_steps


class _ResumeAbandoned(Exception):
    """Internal: the resume path proved itself inapplicable; go cold."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


# ---------------------------------------------------------------------- #
# Cold runs with capture
# ---------------------------------------------------------------------- #
def chase_with_checkpoint(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    plan_cache: PlanCache | None = None,
) -> tuple[ChaseResult, ChaseCheckpoint]:
    """A cold sound chase that also captures a resumable checkpoint.

    Raises exactly what :func:`~repro.chase.sound_chase.sound_chase` raises;
    a checkpoint exists only for terminated runs.
    """
    semantics = Semantics.from_name(semantics)
    sigma = DependencySet.coerce(dependencies)
    # Freeze Σ: DependencySet is mutable and the checkpoint must not drift
    # under a caller's later add().
    frozen = DependencySet(list(sigma.dependencies), sigma.set_valued_predicates)
    capture = ChaseCapture()
    result = sound_chase(
        query, frozen, semantics, max_steps, plan_cache=plan_cache, capture=capture
    )
    checkpoint = ChaseCheckpoint(
        base_query=query,
        result=result,
        sigma=frozen,
        semantics=semantics,
        max_steps=max_steps,
        used_names=capture.used_names,
        egd_clean=capture.egd_clean,
        tgd_clean=capture.tgd_clean,
    )
    return result, checkpoint


def has_applicable_step(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    plan_cache: PlanCache | None = None,
) -> bool:
    """Does *query* admit any (sound) chase step under *semantics*?

    A direct, trust-nothing fixpoint probe: one full scan with an all-dirty
    trigger index.  The fuzz oracle and the tests use it to assert that a
    resumed run's terminal state is a genuine fixpoint rather than an
    artifact of wrongly-seeded clean bits.
    """
    from ..core.homomorphism import TargetIndex
    from .set_chase import _first_applicable_egd_step, _first_applicable_tgd_step

    semantics = Semantics.from_name(semantics)
    sigma = DependencySet.coerce(dependencies)
    cache = plan_cache if plan_cache is not None else default_plan_cache()
    plans = cache.plans_for(sigma, regularize=True)
    profile = ChaseProfile(semantics=str(semantics))
    index = TargetIndex(query.body)
    egd_state = TriggerIndex.from_trigger_map(len(plans.egds), plans.egd_trigger_map)
    if (
        _first_applicable_egd_step(
            query, plans.egds, index, egd_state, profile, plans.egd_plans
        )
        is not None
    ):
        return True
    tgd_state = TriggerIndex.from_trigger_map(len(plans.tgds), plans.tgd_trigger_map)
    if semantics is Semantics.SET:
        return (
            _first_applicable_tgd_step(
                query, plans.tgds, index, tgd_state, profile, plans.tgd_plans
            )
            is not None
        )
    return (
        _first_sound_tgd_step(
            query,
            plans.tgds,
            DependencySet(plans.items),
            semantics,
            sigma.set_valued_predicates,
            max_steps,
            index=index,
            state=tgd_state,
            profile=profile,
            memo={},
            plans=plans.tgd_plans,
            plan_cache=cache,
        )
        is not None
    )


# ---------------------------------------------------------------------- #
# Resume
# ---------------------------------------------------------------------- #
def _check_sigma_extends(old_plans: SigmaPlans, new_plans: SigmaPlans) -> None:
    """The checkpointed regularized Σ must be a prefix of the new one.

    Regularization is per-dependency and order-preserving, and deltas only
    append, so this holds by construction; the check guards against callers
    that hand-build a reordered Σ, where seeded clean bits and positional
    provenance would silently misattribute verdicts.
    """
    for kind, old_items, new_items in (
        ("egd", old_plans.egds, new_plans.egds),
        ("tgd", old_plans.tgds, new_plans.tgds),
    ):
        if len(old_items) > len(new_items):
            raise _ResumeAbandoned("sigma-not-extended")
        for old, new in zip(old_items, new_items):
            if _dependency_key(old) != _dependency_key(new):
                raise _ResumeAbandoned(f"sigma-reordered-{kind}")


def _resume_set(
    checkpoint: ChaseCheckpoint,
    delta: ChaseDelta,
    new_base: ConjunctiveQuery,
    new_sigma: DependencySet,
    max_steps: int,
    cache: PlanCache,
) -> ResumeOutcome:
    plan_stats = cache.snapshot()
    old_plans = cache.plans_for(checkpoint.sigma, regularize=True)
    plans = cache.plans_for(new_sigma, regularize=True)
    _check_sigma_extends(old_plans, plans)

    substitution = checkpoint.composed_substitution()
    seeded = tuple(atom.substitute(substitution) for atom in delta.added_atoms)
    fixpoint = checkpoint.result.query
    body = set(fixpoint.body)
    # Under set semantics an exact duplicate adds nothing; skipping it keeps
    # the resumed body close to what a cold run would build.
    fresh_atoms = [atom for atom in seeded if atom not in body]
    current = fixpoint.add_atoms(fresh_atoms)

    profile = ChaseProfile(semantics=str(Semantics.SET))
    started = time.perf_counter()
    core_stats = snapshot_core_stats()
    records = list(checkpoint.result.steps)
    replayed = len(records)
    used_names = set(checkpoint.used_names)
    used_names.update(v.name for atom in seeded for v in atom.variables())
    egd_state = TriggerIndex.from_snapshot(
        len(plans.egds), plans.egd_trigger_map, checkpoint.egd_clean
    )
    tgd_state = TriggerIndex.from_snapshot(
        len(plans.tgds), plans.tgd_trigger_map, checkpoint.tgd_clean
    )
    added_predicates = {atom.predicate for atom in fresh_atoms}
    egd_state.note_added(added_predicates)
    tgd_state.note_added(added_predicates)

    capture = ChaseCapture()
    terminal = _drive_set_chase(
        current, plans, egd_state, tgd_state, used_names, records, profile,
        max_steps, deduplicate=True,
    )
    profile.record_core_stats(core_stats)
    profile.record_plan_stats(plan_stats, cache)
    profile.wall_time = time.perf_counter() - started
    capture.record(egd_state, tgd_state, used_names)
    result = ChaseResult(terminal, records, Semantics.SET, terminated=True, profile=profile)
    new_checkpoint = ChaseCheckpoint(
        base_query=new_base,
        result=result,
        sigma=new_sigma,
        semantics=Semantics.SET,
        max_steps=max_steps,
        used_names=capture.used_names,
        egd_clean=capture.egd_clean,
        tgd_clean=capture.tgd_clean,
    )
    return ResumeOutcome(
        result=result,
        checkpoint=new_checkpoint,
        resumed=True,
        fallback_reason=None,
        replayed_steps=replayed,
        new_steps=len(records) - replayed,
    )


def _resume_bag(
    checkpoint: ChaseCheckpoint,
    delta: ChaseDelta,
    new_base: ConjunctiveQuery,
    new_sigma: DependencySet,
    semantics: Semantics,
    max_steps: int,
    cache: PlanCache,
) -> ResumeOutcome:
    from ..core.homomorphism import TargetIndex

    plan_stats = cache.snapshot()
    old_plans = cache.plans_for(checkpoint.sigma, regularize=True)
    plans = cache.plans_for(new_sigma, regularize=True)
    _check_sigma_extends(old_plans, plans)
    items_sigma = DependencySet(plans.items)
    set_valued = new_sigma.set_valued_predicates
    dedup_predicates: set[str] | None
    dedup_predicates = set(set_valued) if semantics is Semantics.BAG else None
    tgd_positions = {
        _dependency_key(tgd): position for position, tgd in enumerate(plans.tgds)
    }

    profile = ChaseProfile(semantics=str(semantics))
    started = time.perf_counter()
    core_stats = snapshot_core_stats()
    af_memo: dict[Hashable, bool] = {}
    used_names = set(checkpoint.used_names)
    used_names.update(new_base.variable_names())
    current = new_base
    records: list[ChaseStepRecord] = []

    # Replay-validate the checkpointed provenance in order against states
    # that include the delta.  Theorems 4.1/4.3: egd steps are always sound;
    # tgd steps must still be applicable (non-satisfied) triggers and still
    # assignment-fixing against the grown state and Σ.
    for record in checkpoint.result.steps:
        if record.kind == "egd":
            body = set(current.body)
            if any(
                atom.substitute(record.homomorphism) not in body
                for atom in record.dependency.premise
            ):
                raise _ResumeAbandoned("replay-premise-lost")
            current = current.substitute(record.substitution)
            current = deduplicate_body(current, dedup_predicates)
            records.append(record)
            continue
        tgd = record.dependency
        assert isinstance(tgd, TGD)
        if semantics is Semantics.BAG and not all(
            atom.predicate in set_valued for atom in tgd.conclusion
        ):
            raise _ResumeAbandoned("replay-set-valued-lost")
        position = tgd_positions.get(_dependency_key(tgd))
        if position is None:
            raise _ResumeAbandoned("replay-dependency-lost")
        index = TargetIndex(current.body)
        if not is_recorded_trigger_applicable(
            current, tgd, record.homomorphism,
            index=index, plan=plans.tgd_plans[position],
        ):
            raise _ResumeAbandoned("replay-trigger-invalid")
        if not is_assignment_fixing_for(
            current, tgd, record.homomorphism, items_sigma, max_steps,
            memo=af_memo, plan_cache=cache,
        ):
            raise _ResumeAbandoned("replay-not-assignment-fixing")
        current = current.add_atoms(record.added_atoms)
        records.append(record)

    replayed = len(records)
    egd_state = TriggerIndex.from_snapshot(
        len(plans.egds), plans.egd_trigger_map, checkpoint.egd_clean
    )
    tgd_state = TriggerIndex.from_snapshot(
        len(plans.tgds), plans.tgd_trigger_map, checkpoint.tgd_clean
    )
    added_predicates = {atom.predicate for atom in delta.added_atoms}
    egd_state.note_added(added_predicates)
    tgd_state.note_added(added_predicates)

    capture = ChaseCapture()
    terminal = _drive_sound_chase(
        current, plans, items_sigma, semantics, set_valued, dedup_predicates,
        egd_state, tgd_state, used_names, records, profile, af_memo,
        max_steps, cache,
    )
    profile.record_core_stats(core_stats)
    profile.record_plan_stats(plan_stats, cache)
    profile.wall_time = time.perf_counter() - started
    capture.record(egd_state, tgd_state, used_names)
    result = ChaseResult(terminal, records, semantics, terminated=True, profile=profile)
    new_checkpoint = ChaseCheckpoint(
        base_query=new_base,
        result=result,
        sigma=new_sigma,
        semantics=semantics,
        max_steps=max_steps,
        used_names=capture.used_names,
        egd_clean=capture.egd_clean,
        tgd_clean=capture.tgd_clean,
    )
    return ResumeOutcome(
        result=result,
        checkpoint=new_checkpoint,
        resumed=True,
        fallback_reason=None,
        replayed_steps=replayed,
        new_steps=len(records) - replayed,
    )


def resume_chase(
    checkpoint: ChaseCheckpoint,
    delta: ChaseDelta,
    *,
    max_steps: int | None = None,
    plan_cache: PlanCache | None = None,
) -> ResumeOutcome:
    """Apply *delta* to a checkpointed fixpoint, resuming where possible.

    Monotone deltas (additions only, no labeled-null name collisions) resume
    from the checkpoint; anything else falls back to a cold run of the new
    state, reported via ``fallback_reason``.  Either way the outcome carries
    a fresh checkpoint for the new state, so deltas chain indefinitely.

    Raises :class:`DeltaRejectedError` for structurally invalid deltas (no
    state exists for them at all), and propagates
    :class:`~repro.chase.steps.ChaseFailedError` /
    :class:`~repro.exceptions.ChaseNonTerminationError` exactly like a cold
    chase of the new state would.

    ``max_steps`` overrides the continuation budget (default: the
    checkpoint's); the budget counts continuation rounds only — replayed
    steps are free.
    """
    validate_delta(checkpoint.base_query, checkpoint.sigma, delta)
    new_base = apply_delta_to_query(checkpoint.base_query, delta)
    new_sigma = apply_delta_to_sigma(checkpoint.sigma, delta)
    budget = checkpoint.max_steps if max_steps is None else max_steps
    cache = plan_cache if plan_cache is not None else default_plan_cache()

    def cold(reason: str) -> ResumeOutcome:
        result, new_checkpoint = chase_with_checkpoint(
            new_base, new_sigma, checkpoint.semantics, budget, plan_cache=cache
        )
        return ResumeOutcome(
            result=result,
            checkpoint=new_checkpoint,
            resumed=False,
            fallback_reason=reason,
            replayed_steps=0,
            new_steps=result.step_count,
        )

    if not delta.is_monotone:
        return cold("non-monotone-delta")
    if not checkpoint.result.terminated:
        return cold("checkpoint-not-terminal")
    delta_names = {
        v.name for atom in delta.added_atoms for v in atom.variables()
    }
    if delta_names & checkpoint.chase_generated_names():
        return cold("name-collision")

    try:
        if checkpoint.semantics is Semantics.SET:
            return _resume_set(checkpoint, delta, new_base, new_sigma, budget, cache)
        return _resume_bag(
            checkpoint, delta, new_base, new_sigma, checkpoint.semantics, budget, cache
        )
    except _ResumeAbandoned as abandoned:
        return cold(abandoned.reason)


# ---------------------------------------------------------------------- #
# Stateful wrapper
# ---------------------------------------------------------------------- #
class ResumableChase:
    """A chase fixpoint maintained under a stream of deltas.

    Wraps :func:`chase_with_checkpoint` / :func:`resume_chase` with the
    obvious state machine: ``run()`` performs (or returns) the cold run,
    ``apply(delta)`` advances the base/Σ and resumes.  ``stats()`` reports
    resumed-vs-cold counts and the steps the resumes saved — the same
    numbers ``Session.stats()`` aggregates across queries.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        dependencies: DependencySet | Sequence[Dependency] = (),
        semantics: Semantics | str = Semantics.SET,
        max_steps: int = DEFAULT_MAX_STEPS,
        *,
        plan_cache: PlanCache | None = None,
    ):
        self._query = query
        self._sigma = DependencySet.coerce(dependencies)
        self._semantics = Semantics.from_name(semantics)
        self._max_steps = max_steps
        self._plan_cache = plan_cache if plan_cache is not None else default_plan_cache()
        self._checkpoint: ChaseCheckpoint | None = None
        self._result: ChaseResult | None = None
        self._counters = {
            "deltas_applied": 0,
            "resumed_runs": 0,
            "cold_runs": 0,
            "steps_replayed": 0,
            "steps_executed": 0,
        }

    @property
    def query(self) -> ConjunctiveQuery:
        """The current (delta-accumulated) base query."""
        return self._query

    @property
    def dependencies(self) -> DependencySet:
        """The current (delta-accumulated) Σ."""
        return self._sigma

    @property
    def checkpoint(self) -> ChaseCheckpoint | None:
        return self._checkpoint

    def run(self) -> ChaseResult:
        """The chase result for the current state (cold on first call)."""
        if self._result is None:
            self._result, self._checkpoint = chase_with_checkpoint(
                self._query,
                self._sigma,
                self._semantics,
                self._max_steps,
                plan_cache=self._plan_cache,
            )
            self._counters["cold_runs"] += 1
            self._counters["steps_executed"] += self._result.step_count
        return self._result

    def apply(self, delta: ChaseDelta) -> ResumeOutcome:
        """Apply *delta* and return the (resumed or cold) outcome."""
        self.run()
        assert self._checkpoint is not None
        outcome = resume_chase(
            self._checkpoint, delta, plan_cache=self._plan_cache
        )
        self._counters["deltas_applied"] += 1
        if outcome.resumed:
            self._counters["resumed_runs"] += 1
        else:
            self._counters["cold_runs"] += 1
        self._counters["steps_replayed"] += outcome.replayed_steps
        self._counters["steps_executed"] += outcome.new_steps
        self._checkpoint = outcome.checkpoint
        self._result = outcome.result
        if outcome.checkpoint is not None:
            self._query = outcome.checkpoint.base_query
            self._sigma = outcome.checkpoint.sigma
        return outcome

    def stats(self) -> dict[str, int]:
        return dict(self._counters)
