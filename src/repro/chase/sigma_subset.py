"""Maximal satisfied dependency subsets (Section 5.3, Appendix I).

Theorem 5.3 (and its bag-set analogue, Theorem I.1): for a CQ query Q and a
dependency set Σ whose set chase terminates, there is a *unique maximal*
subset Σ^max of Σ satisfied by the canonical database of the sound-chase
result of Q.  Algorithms 1 and 2 of the paper compute it by removing from Σ
exactly those dependencies that are (unsoundly) applicable to the terminal
sound-chase result.

``max_bag_sigma_subset`` and ``max_bag_set_sigma_subset`` implement
Algorithms 1 and 2 verbatim; :class:`SigmaSubsetResult` also carries the
chase result so callers can verify the canonical-database satisfaction claim
(the tests do).

The scan itself shares its state across the per-dependency
``is_sound_chase_step`` calls: one :class:`~repro.core.homomorphism.
TargetIndex` over the terminal query body, one regularized Σ and one set of
compiled plans (served by the :class:`~repro.chase.plans.PlanCache`, keyed
on Σ's memoized fingerprint), and one Definition 4.3 verdict memo — Σ and
the step budget are fixed for the whole scan, which is exactly the memo's
soundness condition.  ``SigmaSubsetResult.scan_profile`` records what the
scan did (the nested chase that produced ``chase_result`` keeps its own
profile).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.homomorphism import TargetIndex
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from .plans import PlanCache, default_plan_cache
from .profile import ChaseProfile, snapshot_core_stats
from .set_chase import DEFAULT_MAX_STEPS, ChaseResult
from .sound_chase import is_sound_chase_step, sound_chase


@dataclass
class SigmaSubsetResult:
    """Output of Max-Bag-Σ-Subset / Max-Bag-Set-Σ-Subset."""

    subset: DependencySet
    removed: list[Dependency]
    chase_result: ChaseResult
    semantics: Semantics
    #: What the per-dependency soundness scan did (index probes, binding-level
    #: extension probes, plan-cache reuse, Definition 4.3 memo hits); ``None``
    #: only for results built by hand.
    scan_profile: ChaseProfile | None = None

    def __contains__(self, dependency: Dependency) -> bool:
        return dependency in self.subset.dependencies


def scan_sigma_subset(
    chased: ChaseResult,
    dependencies: DependencySet,
    semantics: Semantics,
    max_steps: int,
    plan_cache: PlanCache | None = None,
) -> SigmaSubsetResult:
    """The per-dependency soundness scan of Algorithms 1/2, given the chase.

    *chased* must be the terminal sound-chase result of the input query under
    *dependencies* and *semantics* — callers that already hold one (the
    :class:`~repro.session.Session` serves it from its chase cache) skip the
    chase entirely.  Every dependency is checked against the same terminal
    query under the same Σ and budget, so one body index, one plan-cache
    view, and one Definition 4.3 verdict memo serve the whole scan.
    """
    cache = plan_cache if plan_cache is not None else default_plan_cache()
    profile = ChaseProfile(semantics=str(semantics))
    core_stats = snapshot_core_stats()
    plan_stats = cache.snapshot()
    index = TargetIndex(chased.query.body)
    memo: dict[Hashable, bool] = {}
    kept: list[Dependency] = []
    removed: list[Dependency] = []
    for dependency in dependencies:
        if is_sound_chase_step(
            chased.query, dependency, dependencies, semantics, max_steps,
            plan_cache=cache, index=index, memo=memo, profile=profile,
        ):
            kept.append(dependency)
        else:
            removed.append(dependency)
    profile.retire_index(index)
    profile.record_core_stats(core_stats)
    profile.record_plan_stats(plan_stats, cache)
    subset = dependencies.restricted_to(kept)
    return SigmaSubsetResult(subset, removed, chased, semantics, profile)


def _max_sigma_subset(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics,
    max_steps: int,
    plan_cache: PlanCache | None,
) -> SigmaSubsetResult:
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    cache = plan_cache if plan_cache is not None else default_plan_cache()
    chased = sound_chase(query, dependencies, semantics, max_steps, plan_cache=cache)
    return scan_sigma_subset(chased, dependencies, semantics, max_steps, cache)


def max_bag_sigma_subset(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    plan_cache: PlanCache | None = None,
) -> SigmaSubsetResult:
    """Algorithm 1 (Max-Bag-Σ-Subset): the maximal Σ^max_B(Q, Σ) ⊆ Σ satisfied
    by the canonical database of ``(Q)_{Σ,B}``.

    ``plan_cache`` (default: the process-wide cache) serves the compiled
    match plans of both the initial sound chase and the per-dependency
    soundness scan.
    """
    return _max_sigma_subset(query, dependencies, Semantics.BAG, max_steps, plan_cache)


def max_bag_set_sigma_subset(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    *,
    plan_cache: PlanCache | None = None,
) -> SigmaSubsetResult:
    """Algorithm 2 (Max-Bag-Set-Σ-Subset): the maximal Σ^max_BS(Q, Σ) ⊆ Σ
    satisfied by the canonical database of ``(Q)_{Σ,BS}``.

    ``plan_cache`` plays the same role as in :func:`max_bag_sigma_subset`.
    """
    return _max_sigma_subset(
        query, dependencies, Semantics.BAG_SET, max_steps, plan_cache
    )
