"""Maximal satisfied dependency subsets (Section 5.3, Appendix I).

Theorem 5.3 (and its bag-set analogue, Theorem I.1): for a CQ query Q and a
dependency set Σ whose set chase terminates, there is a *unique maximal*
subset Σ^max of Σ satisfied by the canonical database of the sound-chase
result of Q.  Algorithms 1 and 2 of the paper compute it by removing from Σ
exactly those dependencies that are (unsoundly) applicable to the terminal
sound-chase result.

``max_bag_sigma_subset`` and ``max_bag_set_sigma_subset`` implement
Algorithms 1 and 2 verbatim; :class:`SigmaSubsetResult` also carries the
chase result so callers can verify the canonical-database satisfaction claim
(the tests do).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from .set_chase import DEFAULT_MAX_STEPS, ChaseResult
from .sound_chase import is_sound_chase_step, sound_chase


@dataclass
class SigmaSubsetResult:
    """Output of Max-Bag-Σ-Subset / Max-Bag-Set-Σ-Subset."""

    subset: DependencySet
    removed: list[Dependency]
    chase_result: ChaseResult
    semantics: Semantics

    def __contains__(self, dependency: Dependency) -> bool:
        return dependency in self.subset.dependencies


def _max_sigma_subset(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics,
    max_steps: int,
) -> SigmaSubsetResult:
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    chased = sound_chase(query, dependencies, semantics, max_steps)
    kept: list[Dependency] = []
    removed: list[Dependency] = []
    for dependency in dependencies:
        if is_sound_chase_step(
            chased.query, dependency, dependencies, semantics, max_steps
        ):
            kept.append(dependency)
        else:
            removed.append(dependency)
    subset = dependencies.restricted_to(kept)
    return SigmaSubsetResult(subset, removed, chased, semantics)


def max_bag_sigma_subset(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> SigmaSubsetResult:
    """Algorithm 1 (Max-Bag-Σ-Subset): the maximal Σ^max_B(Q, Σ) ⊆ Σ satisfied
    by the canonical database of ``(Q)_{Σ,B}``."""
    return _max_sigma_subset(query, dependencies, Semantics.BAG, max_steps)


def max_bag_set_sigma_subset(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> SigmaSubsetResult:
    """Algorithm 2 (Max-Bag-Set-Σ-Subset): the maximal Σ^max_BS(Q, Σ) ⊆ Σ
    satisfied by the canonical database of ``(Q)_{Σ,BS}``."""
    return _max_sigma_subset(query, dependencies, Semantics.BAG_SET, max_steps)
