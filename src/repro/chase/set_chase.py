"""Set-semantics chase of conjunctive queries (Section 2.4).

``set_chase(Q, Σ)`` repeatedly applies tgd and egd chase steps until the
canonical database of the current query satisfies every dependency (i.e. no
step is applicable), or the step budget is exhausted.  The chase is run with
a deterministic strategy — egds are given priority, dependencies are tried in
their given order, and the first applicable homomorphism (in the
deterministic order produced by the homomorphism search) is applied — so
repeated runs produce the same result.  All terminal chase results of a
query are set-equivalent in the absence of dependencies, so determinism is a
convenience, not a correctness requirement.

Chase termination is undecidable in general; weakly acyclic dependency sets
(see :mod:`repro.dependencies.weak_acyclicity`) are guaranteed to terminate.
A :class:`~repro.exceptions.ChaseNonTerminationError` is raised when the
budget runs out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..core.homomorphism import Homomorphism, TargetIndex
from ..core.query import ConjunctiveQuery
from ..core.terms import Term
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..exceptions import ChaseNonTerminationError
from ..semantics import Semantics
from .delta import ChaseCapture, TriggerIndex
from .plans import EGDPlan, PlanCache, SigmaPlans, TGDPlan, default_plan_cache
from .profile import ChaseProfile, snapshot_core_stats
from .steps import (
    ChaseStepRecord,
    apply_egd_step,
    apply_tgd_step,
    deduplicate_body,
    iter_applicable_egd_bindings,
    iter_applicable_tgd_bindings,
    trigger_homomorphism,
)

DEFAULT_MAX_STEPS = 2000


@dataclass
class ChaseResult:
    """The outcome of a chase run."""

    query: ConjunctiveQuery
    steps: list[ChaseStepRecord] = field(default_factory=list)
    semantics: Semantics = Semantics.SET
    terminated: bool = True
    #: What the run did and skipped; ``None`` only for results built by hand.
    profile: ChaseProfile | None = None

    @property
    def step_count(self) -> int:
        """Number of chase steps applied."""
        return len(self.steps)

    def __str__(self) -> str:
        lines = [f"chase result ({self.semantics}): {self.query}"]
        lines.extend(f"  {record}" for record in self.steps)
        return "\n".join(lines)


def _first_applicable_egd_step(
    query: ConjunctiveQuery,
    egds: Sequence[EGD],
    index: TargetIndex,
    state: TriggerIndex,
    profile: ChaseProfile,
    plans: Sequence[EGDPlan],
) -> tuple[EGD, Homomorphism, Term, Term] | None:
    """First applicable egd trigger in Σ order, delta-skipping clean egds.

    Every egd scanned to exhaustion without a trigger is marked clean: its
    no-trigger verdict is stable until an added atom matches its premise or
    an egd step rewrites the query (see :mod:`repro.chase.delta`).
    """
    for position, egd in enumerate(egds):
        if state.is_clean(position):
            profile.dependencies_skipped += 1
            continue
        plan = plans[position]
        for match, left, right in iter_applicable_egd_bindings(
            query, egd, index=index, plan=plan
        ):
            profile.triggers_examined += 1
            # Only the applied trigger crosses the dict boundary.
            return egd, trigger_homomorphism(plan, match), left, right
        state.mark_clean(position)
    return None


def _first_applicable_tgd_step(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    index: TargetIndex,
    state: TriggerIndex,
    profile: ChaseProfile,
    plans: Sequence[TGDPlan],
) -> tuple[TGD, Homomorphism] | None:
    """First applicable tgd trigger in Σ order, delta-skipping clean tgds.

    Under set semantics every applicable homomorphism fires, so a completed
    scan means the tgd has no applicable homomorphism at all — a verdict
    stable under growth (extendability to the conclusion is monotone) and
    therefore always safe to mark clean.
    """
    for position, tgd in enumerate(tgds):
        if state.is_clean(position):
            profile.dependencies_skipped += 1
            continue
        plan = plans[position]
        for match in iter_applicable_tgd_bindings(
            query, tgd, index=index, plan=plan
        ):
            profile.triggers_examined += 1
            # Only the applied trigger crosses the dict boundary.
            return tgd, trigger_homomorphism(plan, match)
        state.mark_clean(position)
    return None


def _drive_set_chase(
    current: ConjunctiveQuery,
    plans: SigmaPlans,
    egd_state: TriggerIndex,
    tgd_state: TriggerIndex,
    used_names: set[str],
    records: list[ChaseStepRecord],
    profile: ChaseProfile,
    max_steps: int,
    deduplicate: bool,
) -> ConjunctiveQuery:
    """The delta-driven set-chase loop, from *current* to its fixpoint.

    Shared by :func:`set_chase` (fresh state) and the incremental resume in
    :mod:`repro.chase.incremental` (state seeded from a checkpoint): the
    caller owns the trigger indexes, the used-name set, and the record list,
    so a continuation run starts exactly where a previous fixpoint left off.
    Mutates *records*, *used_names*, and the trigger states in place and
    returns the terminal query; raises :class:`ChaseNonTerminationError`
    after *max_steps* rounds.
    """
    egds, tgds = plans.egds, plans.tgds
    index = TargetIndex(current.body)
    for _ in range(max_steps):
        profile.rounds += 1
        egd_step = _first_applicable_egd_step(
            current, egds, index, egd_state, profile, plans.egd_plans
        )
        if egd_step is not None:
            egd, hom, left, right = egd_step
            current, record = apply_egd_step(current, egd, hom, left, right)
            if deduplicate:
                current = deduplicate_body(current)
            records.append(record)
            profile.egd_steps += 1
            egd_state.reset()
            tgd_state.reset()
            profile.retire_index(index)
            index = TargetIndex(current.body)
            continue
        tgd_step = _first_applicable_tgd_step(
            current, tgds, index, tgd_state, profile, plans.tgd_plans
        )
        if tgd_step is not None:
            tgd, hom = tgd_step
            current, record = apply_tgd_step(current, tgd, hom, used_names)
            records.append(record)
            profile.tgd_steps += 1
            added = {atom.predicate for atom in record.added_atoms}
            egd_state.note_added(added)
            tgd_state.note_added(added)
            profile.retire_index(index)
            index = TargetIndex(current.body)
            continue
        profile.retire_index(index)
        return current
    raise ChaseNonTerminationError(
        f"set chase did not terminate within {max_steps} steps "
        f"({len(plans.items)} dependencies); "
        "either raise max_steps or use weakly acyclic dependencies",
        steps_taken=len(records),
    )


def set_chase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    regularize: bool = True,
    deduplicate: bool = True,
    *,
    plan_cache: PlanCache | None = None,
    capture: ChaseCapture | None = None,
) -> ChaseResult:
    """Chase *query* with *dependencies* under set semantics to termination.

    ``regularize`` replaces every tgd by its regularized set first
    (Proposition 4.1 guarantees this does not change the result up to
    equivalence); ``deduplicate`` drops duplicate subgoals after egd steps,
    which is always harmless under set semantics.

    The loop is delta-driven: one :class:`TargetIndex` over the current body
    is shared by every dependency probe of a round, a :class:`TriggerIndex`
    per dependency kind skips dependencies that provably cannot have gained
    a trigger since their last clean scan, and each dependency's compiled
    match plans are served per Σ from ``plan_cache`` (default: the
    process-wide cache) and reused across rounds and runs.  The applied step
    sequence is identical to a full rescan every round.

    ``capture``, when given, receives the terminal trigger frontier and the
    run's used-name set — the raw material of a resumable checkpoint (see
    :mod:`repro.chase.incremental`).  Nothing is captured on non-termination.
    """
    cache = plan_cache if plan_cache is not None else default_plan_cache()
    plan_stats = cache.snapshot()
    plans = cache.plans_for(dependencies, regularize=regularize)
    egds, tgds = plans.egds, plans.tgds

    profile = ChaseProfile(semantics=str(Semantics.SET))
    started = time.perf_counter()
    core_stats = snapshot_core_stats()
    records: list[ChaseStepRecord] = []
    # Names of every variable ever used in this chase run, so fresh variables
    # never reuse a name eliminated by an earlier egd step.
    used_names = set(query.variable_names())
    egd_state = TriggerIndex.from_trigger_map(len(egds), plans.egd_trigger_map)
    tgd_state = TriggerIndex.from_trigger_map(len(tgds), plans.tgd_trigger_map)
    terminal = _drive_set_chase(
        query, plans, egd_state, tgd_state, used_names, records, profile,
        max_steps, deduplicate,
    )
    profile.record_core_stats(core_stats)
    profile.record_plan_stats(plan_stats, cache)
    profile.wall_time = time.perf_counter() - started
    if capture is not None:
        capture.record(egd_state, tgd_state, used_names)
    return ChaseResult(terminal, records, Semantics.SET, terminated=True, profile=profile)


def set_chase_terminates(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Convenience wrapper: does the set chase terminate within the budget?"""
    try:
        set_chase(query, dependencies, max_steps=max_steps)
    except ChaseNonTerminationError:
        return False
    return True
