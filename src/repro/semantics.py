"""Query-evaluation semantics used throughout the library.

The paper distinguishes three semantics for evaluating conjunctive queries
(Sections 2.1–2.2):

* **set semantics** — stored relations and query answers are sets;
* **bag-set semantics** — stored relations are sets, answers are bags
  (the SQL default without ``DISTINCT``);
* **bag semantics** — both stored relations and answers are bags
  (the SQL behaviour when no PRIMARY KEY / UNIQUE constraints force
  set-valuedness).
"""

from __future__ import annotations

import enum


class Semantics(enum.Enum):
    """The three query-evaluation semantics of the paper."""

    SET = "set"
    BAG = "bag"
    BAG_SET = "bag-set"

    @classmethod
    def from_name(cls, name: "str | Semantics") -> "Semantics":
        """Parse a semantics name (``"set"``, ``"bag"``, ``"bag-set"``/``"bagset"``)."""
        if isinstance(name, Semantics):
            return name
        lowered = name.strip().lower().replace("_", "-")
        if lowered in ("bagset", "bag-set", "bs"):
            return cls.BAG_SET
        if lowered in ("bag", "b"):
            return cls.BAG
        if lowered in ("set", "s"):
            return cls.SET
        raise ValueError(f"unknown semantics {name!r}")

    def __str__(self) -> str:
        return self.value
