"""Command-line interface.

The CLI exposes the library's main entry points so the decision procedures
can be used without writing Python::

    python -m repro chase --query "Q(X) :- p(X,Y)" --dependencies deps.txt \
        --semantics bag --set-valued s,t

    python -m repro equivalence --query "Q1(X) :- ..." --other "Q2(X) :- ..." \
        --dependencies deps.txt --semantics all

    python -m repro reformulate --query "Q(X) :- ..." --dependencies deps.txt \
        --semantics bag-set --show-all

    python -m repro sql --ddl schema.sql \
        --query "SELECT o.oid FROM orders o, customer c WHERE o.cid = c.cid"

    python -m repro batch --pairs pairs.txt --dependencies deps.txt \
        --semantics bag --jobs 4

    python -m repro fuzz --cases 500 --seed 0 --shrink

Every command builds a :class:`~repro.session.Session` around the supplied
dependencies and dispatches through it, so repeated chases within one
invocation are served from the session's cache.

Dependencies are written in the rule notation accepted by
:mod:`repro.datalog` (one dependency per line; ``#`` comments); the
``--dependencies`` / ``--ddl`` / ``--pairs`` arguments accept either a file
path or the literal text.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .datalog import parse_dependencies, parse_query, render_query
from .exceptions import ParseError, ReproError
from .semantics import Semantics
from .session import Session
from .sql import query_to_sql, schema_from_ddl, translate_sql


def _read_text_or_file(value: str) -> str:
    """Return the contents of *value* if it names a file, else *value* itself."""
    path = Path(value)
    try:
        if path.is_file():
            return path.read_text()
    except OSError:
        pass
    return value


def _load_dependencies(args) -> "DependencySet":
    from .dependencies import DependencySet

    set_valued = [name.strip() for name in (args.set_valued or "").split(",") if name.strip()]
    if not args.dependencies:
        return DependencySet([], set_valued)
    text = _read_text_or_file(args.dependencies)
    return parse_dependencies(text, set_valued=set_valued)


def _build_session(args, *, chase_resumable: bool = False) -> Session:
    """One Session per CLI invocation: shared cache, registry dispatch."""
    return Session(
        dependencies=_load_dependencies(args),
        max_steps=args.max_steps,
        precheck=getattr(args, "precheck", None),
        chase_resumable=chase_resumable,
    )


def _add_dependency_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dependencies",
        help="embedded dependencies: a file path or literal rule-notation text",
    )
    parser.add_argument(
        "--set-valued",
        help="comma-separated relations required to be set valued in every instance",
    )


def _semantics_argument(parser: argparse.ArgumentParser, allow_all: bool = False) -> None:
    choices = ["set", "bag", "bag-set"] + (["all"] if allow_all else [])
    parser.add_argument(
        "--semantics",
        default="bag-set",
        choices=choices,
        help="query-evaluation semantics (default: bag-set, the SQL default)",
    )


def _print_plan_cache_line(session: Session) -> None:
    """One ``--profile`` line for the compiled-plan cache state.

    Reads the unified :meth:`Session.stats` surface — the same dict the
    ``repro serve`` ``stats`` endpoint returns — so the CLI and the service
    can never report different numbers.  The cache is process-wide by
    default, so the counters cover every chase of this CLI invocation
    (per-run compile/reuse deltas are on the profile lines above).
    """
    plans = session.stats()["plan_cache"]
    print(
        f"  plan cache       : {plans['hits']} hits, {plans['misses']} misses, "
        f"{plans['evictions']} evictions"
    )


# --------------------------------------------------------------------------- #
# Subcommands
# --------------------------------------------------------------------------- #
def _cmd_chase(args) -> int:
    if (args.add_atoms or args.add_dependencies) and not args.resume:
        print(
            "error: --add-atoms/--add-dependencies require --resume",
            file=sys.stderr,
        )
        return 2
    session = _build_session(args, chase_resumable=args.resume)
    query = parse_query(args.query)
    result = session.chase(query, args.semantics)
    print(render_query(result.query))
    if args.show_steps:
        for record in result.steps:
            print(f"  {record}")
    if args.resume:
        from .chase.incremental import ChaseDelta
        from .datalog import parse_atoms

        deltas = [
            ChaseDelta.atoms(*parse_atoms(_read_text_or_file(text)))
            for text in (args.add_atoms or [])
        ]
        deltas.extend(
            ChaseDelta.dependencies(
                *parse_dependencies(_read_text_or_file(text)).dependencies
            )
            for text in (args.add_dependencies or [])
        )
        current = query
        for number, delta in enumerate(deltas, 1):
            outcome = session.apply_delta(current, delta, args.semantics)
            label = (
                "resumed"
                if outcome.resumed
                else f"cold ({outcome.fallback_reason})"
            )
            print(
                f"# delta {number}: {label}, {outcome.replayed_steps} steps "
                f"replayed, {outcome.new_steps} new steps"
            )
            print(render_query(outcome.result.query))
            if args.show_steps:
                for record in outcome.result.steps[outcome.replayed_steps:]:
                    print(f"  {record}")
            if outcome.checkpoint is not None:
                current = outcome.checkpoint.base_query
            result = outcome.result
    if args.profile and result.profile is not None:
        for line in result.profile.summary_lines():
            print(line)
        _print_plan_cache_line(session)
    return 0


def _cmd_equivalence(args) -> int:
    session = _build_session(args)
    query = parse_query(args.query)
    other = parse_query(args.other)
    if args.semantics == "all":
        verdicts = session.decide_all(query, other)
        equivalent_somewhere = False
        for semantics, verdict in verdicts.items():
            status = "equivalent" if verdict else "not equivalent"
            print(f"{semantics!s:8s}: {status}")
            equivalent_somewhere |= bool(verdict)
        if args.profile:
            for line in session.chase_profile().summary_lines():
                print(line)
            _print_plan_cache_line(session)
        return 0 if equivalent_somewhere else 1
    verdict = session.decide(query, other, args.semantics)
    print("equivalent" if verdict else "not equivalent")
    if args.verbose:
        print(f"  chased left : {verdict.chased_left}")
        print(f"  chased right: {verdict.chased_right}")
    if args.profile:
        for line in session.chase_profile().summary_lines():
            print(line)
        _print_plan_cache_line(session)
    return 0 if verdict else 1


def _cmd_reformulate(args) -> int:
    session = _build_session(args)
    query = parse_query(args.query)
    result = session.reformulate(
        query, args.semantics, check_sigma_minimality=not args.show_all
    )
    print(f"universal plan: {render_query(result.universal_plan)}")
    pool = result.reformulations if args.show_all else result.minimal_reformulations
    label = "equivalent reformulations" if args.show_all else "Σ-minimal reformulations"
    print(f"{len(pool)} {label}:")
    for reformulation in sorted(pool, key=lambda q: len(q.body)):
        print(f"  {render_query(reformulation)}")
    return 0


def _cmd_check(args) -> int:
    import json as json_module

    from .analysis.static import analyze
    from .database import DatabaseInstance

    dependencies = _load_dependencies(args)
    queries = [parse_query(text) for text in (args.query or [])]
    if args.queries:
        for line in _read_text_or_file(args.queries).splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                queries.append(parse_query(line))
    instance = None
    if args.instance:
        payload = json_module.loads(_read_text_or_file(args.instance))
        instance = DatabaseInstance.from_dict(payload)
    report = analyze(
        dependencies,
        queries=queries,
        instance=instance,
        subsumption=not args.no_subsumption,
    )
    if args.format == "json":
        print(json_module.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_table())
    # 0 clean, 1 warnings only, 2 errors — mirrors AnalysisReport.exit_code.
    return report.exit_code()


def _cmd_sql(args) -> int:
    ddl = _read_text_or_file(args.ddl)
    schema, dependencies = schema_from_ddl(ddl)
    session = Session(schema=schema, dependencies=dependencies, max_steps=args.max_steps)
    translated = translate_sql(args.query, schema)
    semantics = Semantics.from_name(args.semantics) if args.semantics else translated.semantics
    if translated.is_aggregate:
        print("aggregate queries are reformulated via their cores; core:", file=sys.stderr)
        print(f"  {translated.query.core()}", file=sys.stderr)
        query = translated.query.core()
    else:
        query = translated.query
    print(f"-- evaluation semantics: {semantics}")
    print(f"-- as conjunctive query: {query}")
    result = session.reformulate(query, semantics, check_sigma_minimality=False)
    print(f"-- {len(result.reformulations)} equivalent reformulations:")
    for reformulation in sorted(result.reformulations, key=lambda q: len(q.body)):
        print(query_to_sql(reformulation, schema, semantics) + ";")
    return 0


def _parse_pairs(text: str) -> list[tuple]:
    """Parse the ``batch`` pair list: one ``Q1 ; Q2`` pair per line."""
    pairs = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        left, separator, right = line.partition(";")
        if not separator or not left.strip() or not right.strip():
            raise ParseError(
                f"pairs line {lineno}: expected 'QUERY ; QUERY', got {line!r}"
            )
        pairs.append((parse_query(left.strip()), parse_query(right.strip())))
    return pairs


def _cmd_fuzz(args) -> int:
    from .fuzz import load_corpus, load_corpus_file, replay_cases, run_campaign

    if args.replay:
        replay_path = Path(args.replay)
        if replay_path.is_dir():
            corpus = load_corpus(replay_path)
        else:
            corpus = [load_corpus_file(replay_path)]
        if not corpus:
            print(f"error: no corpus cases under {args.replay}", file=sys.stderr)
            return 2
        for entry in corpus:
            print(f"replaying {entry.name}: {entry.case}")
        result = replay_cases(
            [entry.case for entry in corpus],
            shrink=args.shrink,
            failure_dir=args.failure_dir,
        )
    else:
        result = run_campaign(
            args.seed,
            args.cases,
            jobs=args.jobs,
            shrink=args.shrink,
            failure_dir=args.failure_dir,
        )
    import json as json_module

    from .fuzz import case_to_dict

    for failure in result.failures:
        print(f"FAIL {failure.summary()}")
        for mismatch in failure.report.mismatches:
            print(f"  {mismatch}")
        # The full reproduction JSON goes to the log itself: a CI job's
        # artifacts may be gone when someone reads the failure, the log is not.
        shrunk = failure.shrunk if failure.shrunk is not None else failure.case
        print("  reproduce (save as a corpus .json and --replay it):")
        print(
            "    "
            + json_module.dumps(case_to_dict(shrunk), sort_keys=False)
        )
        if failure.case.seed is not None and failure.case.index is not None:
            print(
                f"  regenerate: repro fuzz --seed {failure.case.seed} "
                f"--cases {failure.case.index + 1}"
            )
    for line in result.summary_lines():
        print(line)
    if result.failure_reports:
        print(
            f"{len(result.failure_reports)} failure reports written under "
            f"{args.failure_dir}"
        )
    return 0 if result.ok else 1


def _cmd_batch(args) -> int:
    session = _build_session(args)
    pairs = _parse_pairs(_read_text_or_file(args.pairs))
    report = session.decide_many(
        pairs, semantics=args.semantics, concurrency=args.jobs
    )
    for item in report:
        q1, q2 = item.input
        label = f"{q1.head_predicate} vs {q2.head_predicate}"
        if item.ok:
            status = "equivalent" if item.result else "not equivalent"
            print(f"[{item.index}] {label}: {status}")
        else:
            print(f"[{item.index}] {label}: error ({item.error_type}: {item.error})")
    print(f"{report.ok_count} decided, {report.error_count} failed")
    return 0 if report.error_count == 0 else 1


def _cmd_serve(args) -> int:
    import asyncio
    import signal

    from .serve import ChaseStore, ReproServer

    store = ChaseStore(args.store) if args.store else None
    # Resumable: the daemon's apply-delta op stores and resumes checkpoints.
    session = _build_session(args, chase_resumable=True)
    server = ReproServer(
        session,
        host=args.host,
        port=args.port,
        timeout=args.timeout,
        max_request_bytes=args.max_request_bytes,
        store=store,
        workers=args.workers,
        max_inflight=args.max_inflight,
    )

    async def _run() -> None:
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, stop.set)
            except NotImplementedError:  # pragma: no cover - non-POSIX loops
                pass
        await server.start()
        # One parseable line on stdout so scripts (and the CI smoke job) can
        # wait for readiness and discover the port when --port 0 was used.
        print(f"repro serve: listening on {server.host}:{server.port}", flush=True)
        print(
            f"repro serve: engine backend {server.backend.kind} "
            f"({args.workers} worker{'s' if args.workers != 1 else ''})",
            flush=True,
        )
        if store is not None:
            entries = store.stats()["entries"]
            print(f"repro serve: chase store {store.path} ({entries} entries)", flush=True)
        serve_task = asyncio.create_task(server.serve_forever())
        stop_task = asyncio.create_task(stop.wait())
        await asyncio.wait({serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED)
        stop_task.cancel()
        serve_task.cancel()
        # serve_forever absorbs the cancellation and closes the store and
        # executor before returning.
        await asyncio.gather(serve_task, return_exceptions=True)

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:  # pragma: no cover - direct ^C without handler
        pass
    print("repro serve: shut down cleanly", flush=True)
    return 0


def _cmd_client(args) -> int:
    import json as json_module

    from .serve import ClientError, ReproClient

    params: dict = {}
    if args.query is not None:
        params["query"] = args.query
    if args.other is not None:
        params["other"] = args.other
    if args.semantics is not None:
        params["semantics"] = args.semantics
    if args.minimal_only:
        params["minimal_only"] = True
    if args.op == "analyze":
        # The analyze op takes a query *list*; fold the single --query flag in.
        params.pop("query", None)
        if args.query is not None:
            params["queries"] = [args.query]
        if args.dependencies is not None:
            params["dependencies"] = _read_text_or_file(args.dependencies)
        if args.strict:
            params["strict"] = True
    if args.op == "apply-delta":
        if args.add_atoms is not None:
            params["add_atoms"] = _read_text_or_file(args.add_atoms)
        if args.add_dependencies is not None:
            params["add_dependencies"] = _read_text_or_file(args.add_dependencies)
        if args.remove_atoms is not None:
            params["remove_atoms"] = _read_text_or_file(args.remove_atoms)
        if args.remove_dependencies is not None:
            params["remove_dependencies"] = _read_text_or_file(
                args.remove_dependencies
            )
        if args.set_valued:
            params["set_valued"] = [
                name.strip() for name in args.set_valued.split(",") if name.strip()
            ]
    if args.op == "batch":
        if not args.pairs:
            print("error: batch needs --pairs", file=sys.stderr)
            return 2
        params["pairs"] = [
            [left.strip(), right.strip()]
            for left, _, right in (
                line.partition(";")
                for line in _read_text_or_file(args.pairs).splitlines()
                if line.strip() and not line.strip().startswith("#")
            )
        ]
    try:
        with ReproClient(args.host, args.port, timeout=args.timeout) as client:
            response = client.request(args.op, params, check=False)
    except ClientError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    print(json_module.dumps(response, indent=2, sort_keys=True))
    return 0 if response.get("ok") else 1


# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    """Build the top-level argument parser (exposed for testing and docs)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Equivalence and reformulation of SQL/conjunctive queries "
        "in presence of embedded dependencies (Chirkova & Genesereth, PODS 2009).",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=2000,
        help="chase step budget (guards against non-terminating dependency sets)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    chase_parser = subparsers.add_parser(
        "chase", help="chase a query with the chase sound for the chosen semantics"
    )
    chase_parser.add_argument("--query", required=True, help="query in rule notation")
    _add_dependency_arguments(chase_parser)
    _semantics_argument(chase_parser)
    chase_parser.add_argument(
        "--show-steps", action="store_true", help="print the applied chase steps"
    )
    chase_parser.add_argument(
        "--profile",
        action="store_true",
        help="print the chase profile (steps by kind, triggers examined, "
        "index hit rate, wall time)",
    )
    chase_parser.add_argument(
        "--resume",
        action="store_true",
        help="capture a resumable checkpoint and apply --add-atoms / "
        "--add-dependencies deltas incrementally instead of rechasing",
    )
    chase_parser.add_argument(
        "--add-atoms",
        action="append",
        metavar="ATOMS",
        help="with --resume: apply one instance delta (a conjunction of "
        "atoms, file or text); repeatable, applied in order",
    )
    chase_parser.add_argument(
        "--add-dependencies",
        action="append",
        metavar="SIGMA",
        help="with --resume: apply one Σ delta (rule-notation dependencies, "
        "file or text); repeatable, applied after the --add-atoms deltas",
    )
    chase_parser.set_defaults(handler=_cmd_chase)

    equivalence_parser = subparsers.add_parser(
        "equivalence", help="decide Σ-equivalence of two queries"
    )
    equivalence_parser.add_argument("--query", required=True)
    equivalence_parser.add_argument("--other", required=True)
    _add_dependency_arguments(equivalence_parser)
    _semantics_argument(equivalence_parser, allow_all=True)
    equivalence_parser.add_argument("--verbose", action="store_true")
    equivalence_parser.add_argument(
        "--profile",
        action="store_true",
        help="print the session's aggregate cold-chase profile",
    )
    equivalence_parser.set_defaults(handler=_cmd_equivalence)

    reformulate_parser = subparsers.add_parser(
        "reformulate", help="enumerate equivalent (Σ-minimal) reformulations"
    )
    reformulate_parser.add_argument("--query", required=True)
    _add_dependency_arguments(reformulate_parser)
    _semantics_argument(reformulate_parser)
    reformulate_parser.add_argument(
        "--show-all",
        action="store_true",
        help="report every equivalent reformulation, not only Σ-minimal ones",
    )
    reformulate_parser.set_defaults(handler=_cmd_reformulate)

    check_parser = subparsers.add_parser(
        "check",
        help="statically analyze Σ (and queries/instance): lint diagnostics "
        "plus a termination certificate or witness cycle — no chase runs",
    )
    _add_dependency_arguments(check_parser)
    check_parser.add_argument(
        "--query",
        action="append",
        help="query in rule notation (repeatable)",
    )
    check_parser.add_argument(
        "--queries",
        help="more queries: a file path or literal text, one query per line",
    )
    check_parser.add_argument(
        "--instance",
        help='database instance JSON (file or text): {"pred": [[values...], ...]}',
    )
    check_parser.add_argument(
        "--format",
        choices=["table", "json"],
        default="table",
        help="output format (default: table); json round-trips via "
        "AnalysisReport.from_dict",
    )
    check_parser.add_argument(
        "--no-subsumption",
        action="store_true",
        help="skip the pairwise dependency-subsumption pass (the only "
        "super-linear one)",
    )
    check_parser.set_defaults(handler=_cmd_check)

    sql_parser = subparsers.add_parser(
        "sql", help="reformulate a SQL query against a SQL DDL schema"
    )
    sql_parser.add_argument("--ddl", required=True, help="CREATE TABLE script (file or text)")
    sql_parser.add_argument("--query", required=True, help="the SELECT statement")
    sql_parser.add_argument(
        "--semantics",
        choices=["set", "bag", "bag-set"],
        help="override the semantics inferred from the statement and schema",
    )
    sql_parser.set_defaults(handler=_cmd_sql)

    batch_parser = subparsers.add_parser(
        "batch", help="decide Σ-equivalence for a whole list of query pairs"
    )
    batch_parser.add_argument(
        "--pairs",
        required=True,
        help="pair list (file or text): one 'QUERY ; QUERY' pair per line",
    )
    _add_dependency_arguments(batch_parser)
    _semantics_argument(batch_parser)
    batch_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="decide pairs in N worker processes (default: in-process, shared cache)",
    )
    batch_parser.set_defaults(handler=_cmd_batch)

    fuzz_parser = subparsers.add_parser(
        "fuzz",
        help="differential fuzzing: random queries and Σ, accelerated vs "
        "reference engines, Proposition 6.1, front-end round trips",
    )
    fuzz_parser.add_argument(
        "--seed", type=int, default=0, help="campaign seed (default: 0)"
    )
    fuzz_parser.add_argument(
        "--cases", type=int, default=200, help="number of cases (default: 200)"
    )
    fuzz_parser.add_argument(
        "--shrink",
        action="store_true",
        help="greedily 1-minimize every failing case before reporting it",
    )
    fuzz_parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="run oracle passes in N worker processes (the first block's "
        "decisions also exercise the batch multiprocessing pipeline)",
    )
    fuzz_parser.add_argument(
        "--replay",
        help="replay a corpus case (JSON file) or a whole corpus directory "
        "instead of generating cases",
    )
    fuzz_parser.add_argument(
        "--failure-dir",
        default="fuzz-failures",
        help="directory for per-failure reproduction JSON (default: fuzz-failures)",
    )
    fuzz_parser.set_defaults(handler=_cmd_fuzz)

    serve_parser = subparsers.add_parser(
        "serve",
        help="run the long-lived equivalence daemon (newline-delimited JSON "
        "over TCP; one warm Session shared by every client)",
    )
    _add_dependency_arguments(serve_parser)
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: 127.0.0.1)"
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=7464,
        help="TCP port; 0 picks a free port and prints it (default: 7464)",
    )
    serve_parser.add_argument(
        "--store",
        help="path of the disk-backed chase-result store (JSONL); restarts "
        "with the same path start warm",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-request wall-clock budget in seconds (default: 30)",
    )
    serve_parser.add_argument(
        "--max-request-bytes",
        type=int,
        default=1 << 20,
        help="cap on one request line; larger requests are refused and the "
        "connection closed (default: 1 MiB)",
    )
    serve_parser.add_argument(
        "--precheck",
        choices=["off", "warn", "strict"],
        default=None,
        help="statically analyze Σ at startup; 'strict' refuses an "
        "uncertified Σ, both modes seed chase budgets from the certificate",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="engine worker processes; 1 (default) keeps engine work on a "
        "single thread in this process, N>=2 fans requests out to N "
        "long-lived worker processes sharing the chase store",
    )
    serve_parser.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        help="bound on engine requests in flight before new ones are "
        "refused with an 'overloaded' error (workers>=2 only; default: "
        "32 per worker)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    client_parser = subparsers.add_parser(
        "client",
        help="send one request to a running repro serve daemon and print the "
        "JSON response",
    )
    client_parser.add_argument(
        "op",
        choices=[
            "decide",
            "reformulate",
            "batch",
            "analyze",
            "apply-delta",
            "stats",
            "health",
        ],
        help="operation to invoke",
    )
    client_parser.add_argument("--host", default="127.0.0.1")
    client_parser.add_argument("--port", type=int, default=7464)
    client_parser.add_argument(
        "--timeout", type=float, default=60.0, help="socket timeout in seconds"
    )
    client_parser.add_argument("--query", help="query in rule notation")
    client_parser.add_argument("--other", help="second query (decide)")
    client_parser.add_argument(
        "--semantics", choices=["set", "bag", "bag-set"], help="semantics name"
    )
    client_parser.add_argument(
        "--minimal-only",
        action="store_true",
        help="reformulate: also report only the Σ-minimal reformulations",
    )
    client_parser.add_argument(
        "--pairs", help="batch: pair list (file or text), one 'QUERY ; QUERY' per line"
    )
    client_parser.add_argument(
        "--dependencies",
        help="analyze: rule-notation Σ (file or text) to analyze instead of "
        "the server session's Σ",
    )
    client_parser.add_argument(
        "--strict",
        action="store_true",
        help="analyze: answer with a precheck-failed error when the analyzed "
        "Σ has error-severity diagnostics",
    )
    client_parser.add_argument(
        "--add-atoms", help="apply-delta: atoms to add (conjunction text)"
    )
    client_parser.add_argument(
        "--add-dependencies",
        help="apply-delta: dependencies to add to the server's Σ (rule "
        "notation, file or text)",
    )
    client_parser.add_argument(
        "--remove-atoms", help="apply-delta: atoms to remove (conjunction text)"
    )
    client_parser.add_argument(
        "--remove-dependencies",
        help="apply-delta: dependencies to remove from the server's Σ (rule "
        "notation, file or text)",
    )
    client_parser.add_argument(
        "--set-valued",
        help="apply-delta: comma-separated set-valued markers to add",
    )
    client_parser.set_defaults(handler=_cmd_client)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
