"""Attribute-level functional dependencies, attribute closure, keys.

Appendix B of the paper defines functional dependencies (fds), implied fds,
superkeys, and keys of a relation.  This module implements the standard
machinery over *attribute names*:

* :class:`FunctionalDependency` — ``lhs → rhs`` over the attributes of one
  relation;
* :func:`attribute_closure` — the classical closure algorithm;
* :func:`implies` — whether a set of fds implies another fd
  (Definition B.1);
* :func:`is_superkey`, :func:`is_key`, :func:`candidate_keys`
  (Definitions B.2, B.3).

The egd encodings of fds and keys (used by the chase) are produced by
:mod:`repro.dependencies.builders`, which builds on this module.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Sequence

from ..exceptions import SchemaError
from .schema import RelationSchema


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``lhs → rhs`` on one relation's attributes."""

    relation: str
    lhs: frozenset[str]
    rhs: frozenset[str]

    def __init__(
        self, relation: str, lhs: Iterable[str], rhs: Iterable[str] | str
    ):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "lhs", frozenset(lhs))
        if isinstance(rhs, str):
            rhs = [rhs]
        object.__setattr__(self, "rhs", frozenset(rhs))
        if not self.lhs:
            raise SchemaError("functional dependency needs a nonempty left-hand side")
        if not self.rhs:
            raise SchemaError("functional dependency needs a nonempty right-hand side")

    def is_trivial(self) -> bool:
        """True when rhs ⊆ lhs (holds on every instance)."""
        return self.rhs <= self.lhs

    def __str__(self) -> str:
        lhs = ", ".join(sorted(self.lhs))
        rhs = ", ".join(sorted(self.rhs))
        return f"{self.relation}: {{{lhs}}} -> {{{rhs}}}"


def _check_attributes(relation: RelationSchema, attributes: Iterable[str]) -> None:
    known = set(relation.attribute_names)
    unknown = set(attributes) - known
    if unknown:
        raise SchemaError(
            f"attributes {sorted(unknown)} are not attributes of {relation.name}"
        )


def attribute_closure(
    attributes: Iterable[str],
    fds: Sequence[FunctionalDependency],
) -> frozenset[str]:
    """The closure of *attributes* under *fds* (standard fixpoint algorithm)."""
    closure = set(attributes)
    changed = True
    while changed:
        changed = False
        for fd in fds:
            if fd.lhs <= closure and not fd.rhs <= closure:
                closure |= fd.rhs
                changed = True
    return frozenset(closure)


def implies(
    fds: Sequence[FunctionalDependency], candidate: FunctionalDependency
) -> bool:
    """Is *candidate* implied by *fds* (Definition B.1)?

    Only fds over the same relation participate; the test is
    ``candidate.rhs ⊆ closure(candidate.lhs)``.
    """
    relevant = [fd for fd in fds if fd.relation == candidate.relation]
    return candidate.rhs <= attribute_closure(candidate.lhs, relevant)


def is_superkey(
    relation: RelationSchema,
    attributes: Iterable[str],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Definition B.2: *attributes* functionally determine every attribute."""
    attributes = set(attributes)
    _check_attributes(relation, attributes)
    relevant = [fd for fd in fds if fd.relation == relation.name]
    closure = attribute_closure(attributes, relevant)
    return set(relation.attribute_names) <= closure


def is_key(
    relation: RelationSchema,
    attributes: Iterable[str],
    fds: Sequence[FunctionalDependency],
) -> bool:
    """Definition B.3: a minimal superkey."""
    attributes = set(attributes)
    if not is_superkey(relation, attributes, fds):
        return False
    for size in range(1, len(attributes)):
        for subset in combinations(sorted(attributes), size):
            if is_superkey(relation, subset, fds):
                return False
    return True


def candidate_keys(
    relation: RelationSchema, fds: Sequence[FunctionalDependency]
) -> list[frozenset[str]]:
    """All candidate keys of *relation* under *fds*.

    Exhaustive search over attribute subsets in increasing size order; fine
    for the small relation arities used in query reformulation workloads.
    """
    attributes = list(relation.attribute_names)
    keys: list[frozenset[str]] = []
    for size in range(1, len(attributes) + 1):
        for subset in combinations(attributes, size):
            subset_set = frozenset(subset)
            if any(key <= subset_set for key in keys):
                continue
            if is_superkey(relation, subset_set, fds):
                keys.append(subset_set)
    return keys


def key_positions(
    relation: RelationSchema, attributes: Iterable[str]
) -> tuple[int, ...]:
    """0-based positions of *attributes* within the relation, sorted."""
    _check_attributes(relation, attributes)
    return tuple(sorted(relation.attribute_position(a) for a in attributes))
