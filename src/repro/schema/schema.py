"""Database schemas and relation schemas.

A database schema (Section 2.1 / Appendix B of the paper) is a finite set of
relation symbols with arities.  Each relation may optionally carry attribute
names (used by the SQL front end and by the attribute-level functional
dependency machinery in :mod:`repro.schema.keys`) and a ``set_valued`` flag
recording that the relation is required to be set valued in every instance —
the constraint the paper encodes with tuple-ID egds (Appendix C) and that
drives the bag-semantics soundness conditions of Theorem 4.1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..exceptions import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """A relation symbol: name, arity, optional attribute names, set-valuedness."""

    name: str
    arity: int
    attributes: tuple[str, ...] = ()
    set_valued: bool = False

    def __post_init__(self) -> None:
        if self.arity <= 0:
            raise SchemaError(f"relation {self.name} must have positive arity")
        if self.attributes and len(self.attributes) != self.arity:
            raise SchemaError(
                f"relation {self.name}: {len(self.attributes)} attribute names "
                f"given but arity is {self.arity}"
            )
        if self.attributes and len(set(self.attributes)) != len(self.attributes):
            raise SchemaError(f"relation {self.name} has duplicate attribute names")

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names, synthesising ``a1..ak`` when none were declared."""
        if self.attributes:
            return self.attributes
        return tuple(f"a{i + 1}" for i in range(self.arity))

    def attribute_position(self, attribute: str) -> int:
        """0-based position of *attribute* in the relation."""
        try:
            return self.attribute_names.index(attribute)
        except ValueError as exc:
            raise SchemaError(
                f"relation {self.name} has no attribute {attribute!r}"
            ) from exc

    def as_set_valued(self) -> "RelationSchema":
        """A copy of the schema marked as set valued."""
        return RelationSchema(self.name, self.arity, self.attributes, True)

    def __str__(self) -> str:
        attrs = ", ".join(self.attribute_names)
        marker = " [set-valued]" if self.set_valued else ""
        return f"{self.name}({attrs}){marker}"


@dataclass
class DatabaseSchema:
    """A finite collection of relation schemas indexed by name."""

    relations: dict[str, RelationSchema] = field(default_factory=dict)

    @classmethod
    def from_arities(
        cls,
        arities: Mapping[str, int],
        set_valued: Iterable[str] = (),
    ) -> "DatabaseSchema":
        """Build a schema from a name→arity mapping.

        ``set_valued`` lists the relations required to be set valued in every
        instance (Theorem 4.1 / Appendix C).
        """
        set_valued = set(set_valued)
        schema = cls()
        for name, arity in arities.items():
            schema.add_relation(
                RelationSchema(name, arity, set_valued=name in set_valued)
            )
        return schema

    def add_relation(self, relation: RelationSchema) -> None:
        """Add (or replace) a relation schema."""
        self.relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        """Look up a relation schema by name."""
        try:
            return self.relations[name]
        except KeyError as exc:
            raise SchemaError(f"schema has no relation named {name!r}") from exc

    def __contains__(self, name: str) -> bool:
        return name in self.relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self.relations.values())

    def __len__(self) -> int:
        return len(self.relations)

    def arity(self, name: str) -> int:
        """Arity of relation *name*."""
        return self.relation(name).arity

    def relation_names(self) -> list[str]:
        """All relation names, in insertion order."""
        return list(self.relations)

    def set_valued_relations(self) -> set[str]:
        """Names of relations required to be set valued in every instance."""
        return {rel.name for rel in self if rel.set_valued}

    def mark_set_valued(self, names: Sequence[str] | str) -> "DatabaseSchema":
        """Return a copy of the schema with *names* marked set valued."""
        if isinstance(names, str):
            names = [names]
        copy = DatabaseSchema(dict(self.relations))
        for name in names:
            copy.relations[name] = copy.relation(name).as_set_valued()
        return copy

    def validate_atom_arity(self, predicate: str, arity: int) -> None:
        """Raise :class:`SchemaError` when an atom's arity mismatches the schema."""
        expected = self.arity(predicate)
        if expected != arity:
            raise SchemaError(
                f"atom over {predicate} has arity {arity}, schema says {expected}"
            )

    def __str__(self) -> str:
        return "{" + ", ".join(str(rel) for rel in self) + "}"
