"""Database schemas, functional dependencies, and key inference."""

from .keys import (
    FunctionalDependency,
    attribute_closure,
    candidate_keys,
    implies,
    is_key,
    is_superkey,
    key_positions,
)
from .schema import DatabaseSchema, RelationSchema

__all__ = [
    "DatabaseSchema",
    "FunctionalDependency",
    "RelationSchema",
    "attribute_closure",
    "candidate_keys",
    "implies",
    "is_key",
    "is_superkey",
    "key_positions",
]
