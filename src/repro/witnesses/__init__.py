"""Counterexample-database witnesses for inequivalence verdicts."""

from .counterexamples import (
    CounterexampleWitness,
    canonical_candidates,
    find_counterexample,
    lemma_d1_counterexample,
)

__all__ = [
    "CounterexampleWitness",
    "canonical_candidates",
    "find_counterexample",
    "lemma_d1_counterexample",
]
