"""Counterexample databases witnessing query inequivalence.

Every negative claim in the paper is backed by a concrete database on which
the two queries return different bags (Examples 4.1, 4.5–4.7, 4.9, D.1, D.2,
E.1, E.2, F).  This module turns those proof techniques into a constructive
search, so that an inequivalence verdict can be accompanied by a witness the
user can inspect and replay:

* :func:`lemma_d1_counterexample` — the Appendix D construction: when one
  query has strictly more subgoals over some not-set-enforced relation than
  the other, scale that relation of the canonical database by a factor m
  chosen per Lemma D.1 so that the bag answers must differ.
* :func:`canonical_candidates` — canonical databases of the two (chased)
  queries and of the associated test queries of applicable tgds; these are
  exactly the databases the paper's unsoundness proofs use (Theorem 4.1
  case 2, Propositions E.2/E.3).
* :func:`find_counterexample` — evaluate the two queries on the candidate
  databases (restricted to those satisfying Σ) and return the first that
  separates them, as a :class:`CounterexampleWitness`.

The search is sound (any returned witness really separates the queries and
satisfies the dependencies) but not complete: if it returns None the queries
may still be inequivalent — the symbolic tests in :mod:`repro.equivalence`
remain the decision procedure; witnesses are the explanation layer on top.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..chase.set_chase import DEFAULT_MAX_STEPS
from ..chase.sound_chase import sound_chase
from ..chase.steps import iter_applicable_tgd_homomorphisms
from ..chase.test_query import associated_test_query
from ..core.query import ConjunctiveQuery
from ..database.canonical import canonical_database
from ..database.instance import DatabaseInstance
from ..database.satisfaction import satisfies_all
from ..dependencies.base import TGD, Dependency, DependencySet
from ..evaluation.bag import Bag
from ..evaluation.engine import evaluate
from ..semantics import Semantics


@dataclass
class CounterexampleWitness:
    """A database on which the two queries disagree, plus the two answers."""

    database: DatabaseInstance
    semantics: Semantics
    left_answer: Bag
    right_answer: Bag
    description: str = ""

    def __str__(self) -> str:
        return (
            f"counterexample ({self.description or 'search'}) under {self.semantics}:\n"
            f"{self.database}\n"
            f"  left  answer: {self.left_answer}\n"
            f"  right answer: {self.right_answer}"
        )


def _scale_relation(
    instance: DatabaseInstance, relation: str, factor: int
) -> DatabaseInstance:
    scaled = instance.copy()
    if scaled.has_relation(relation) and factor > 1:
        scaled.relations[relation] = scaled.relation(relation).scaled(factor)
    return scaled


def lemma_d1_counterexample(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    set_valued_predicates: Iterable[str] = (),
) -> DatabaseInstance | None:
    """The Lemma D.1 construction separating two queries under bag semantics.

    Applicable when, after dropping duplicate subgoals over set-enforced
    relations, some relation R that is *not* set enforced has strictly more
    subgoals in one query than in the other.  Returns the scaled canonical
    database (m copies of R's canonical tuples, m chosen per Equation 5 of
    the paper), or None when the precondition does not hold.
    """
    set_valued = set(set_valued_predicates)
    reduced1 = q1.drop_duplicates_for(set_valued)
    reduced2 = q2.drop_duplicates_for(set_valued)
    counts1 = reduced1.predicate_counts()
    counts2 = reduced2.predicate_counts()

    candidates = []
    for predicate in set(counts1) | set(counts2):
        if predicate in set_valued:
            continue
        n1, n2 = counts1.get(predicate, 0), counts2.get(predicate, 0)
        if n1 != n2 and min(n1, n2) > 0:
            candidates.append((predicate, n1, n2))
    if not candidates:
        return None

    predicate, n1, n2 = candidates[0]
    # Work with the query that has MORE subgoals over the chosen relation as
    # "Q1" of the lemma; build the canonical database of its canonical
    # representation and scale the chosen relation.
    rich = q1 if n1 > n2 else q2
    poor_counts = min(n1, n2)
    rich_counts = max(n1, n2)
    other = (q2 if rich is q1 else q1).predicate_counts()
    n3 = sum(other.values())
    n4 = sum(
        count for name, count in rich.predicate_counts().items() if name != predicate
    )
    # Equation 5 / 9 of the paper (a safely large multiplicity).
    if n3 > poor_counts and n4 > 0:
        m = 1 + rich_counts ** (2 * poor_counts) * n4 ** (n3 - poor_counts)
    else:
        m = 1 + rich_counts ** (2 * poor_counts)
    canonical = canonical_database(rich.canonical_representation()).instance
    return _scale_relation(canonical, predicate, m)


def canonical_candidates(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet,
    semantics: Semantics,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Iterator[tuple[str, DatabaseInstance]]:
    """Candidate counterexample databases drawn from the paper's constructions."""
    chased1 = sound_chase(q1, dependencies, semantics, max_steps).query
    chased2 = sound_chase(q2, dependencies, semantics, max_steps).query

    yield "canonical database of the chased left query", canonical_database(chased1).instance
    yield "canonical database of the chased right query", canonical_database(chased2).instance

    # Canonical databases of associated test queries of applicable tgds
    # (Theorem 4.1 case 2 / Proposition E.3 style witnesses).
    for label, chased in (("left", chased1), ("right", chased2)):
        for dependency in dependencies:
            if not isinstance(dependency, TGD):
                continue
            for homomorphism in iter_applicable_tgd_homomorphisms(chased, dependency):
                test = associated_test_query(chased, dependency, homomorphism)
                terminal = sound_chase(
                    test.query, dependencies, Semantics.SET, max_steps
                ).query
                yield (
                    f"test-query canonical database ({label}, {dependency.name or 'tgd'})",
                    canonical_database(terminal).instance,
                )
                break  # one homomorphism per dependency keeps the pool small

    # Lemma D.1 scaled databases (bag semantics only).
    if semantics is Semantics.BAG:
        scaled = lemma_d1_counterexample(
            chased1, chased2, dependencies.set_valued_predicates
        )
        if scaled is not None:
            yield "Lemma D.1 scaled canonical database", scaled

    # Duplicated-tuple variants of the canonical databases (Proposition E.2
    # style): under bag semantics a duplicate in a non-set-enforced relation
    # often separates the queries.
    if semantics is Semantics.BAG:
        for label, chased in (("left", chased1), ("right", chased2)):
            base = canonical_database(chased).instance
            for relation in base.relation_names():
                if relation in dependencies.set_valued_predicates:
                    continue
                yield (
                    f"canonical database of {label} with {relation} doubled",
                    _scale_relation(base, relation, 2),
                )


def find_counterexample(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency] = (),
    semantics: Semantics | str = Semantics.BAG,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> CounterexampleWitness | None:
    """Search the paper's candidate constructions for a separating database.

    Only candidates that satisfy the dependencies (including set-valuedness
    of the marked relations) are considered, so a returned witness is a
    genuine refutation of ``Q1 ≡Σ,X Q2``.  Returns None when no candidate
    separates the queries — which does *not* prove equivalence.
    """
    semantics = Semantics.from_name(semantics)
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    seen: set[int] = set()
    for description, database in canonical_candidates(
        q1, q2, dependencies, semantics, max_steps
    ):
        key = hash(str(database))
        if key in seen:
            continue
        seen.add(key)
        if not satisfies_all(database, dependencies):
            continue
        left = evaluate(q1, database, semantics)
        right = evaluate(q2, database, semantics)
        if left != right:
            return CounterexampleWitness(database, semantics, left, right, description)
    return None
