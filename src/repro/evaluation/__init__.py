"""Query evaluation under set, bag, and bag-set semantics, plus aggregates."""

from .aggregates import aggregate_answers_agree, evaluate_aggregate
from .assignments import (
    InstanceIndex,
    assignment_satisfies,
    instantiate_terms,
    iter_satisfying_assignments,
)
from .bag import Bag
from .engine import (
    answers_agree,
    evaluate,
    evaluate_all_semantics,
    evaluate_bag,
    evaluate_bag_set,
    evaluate_set,
)

__all__ = [
    "Bag",
    "InstanceIndex",
    "aggregate_answers_agree",
    "answers_agree",
    "assignment_satisfies",
    "evaluate",
    "evaluate_aggregate",
    "evaluate_all_semantics",
    "evaluate_bag",
    "evaluate_bag_set",
    "evaluate_set",
    "instantiate_terms",
    "iter_satisfying_assignments",
]
