"""Evaluation of conjunctive queries under set, bag, and bag-set semantics.

Implements the three query-evaluation semantics of Sections 2.1–2.2 exactly
as defined in the paper:

* **set** — the answer is the set of tuples γ(X̄) over satisfying
  assignments γ (evaluated against the core sets of the stored relations);
* **bag-set** — the stored relations are first deduplicated; every distinct
  satisfying assignment contributes one copy of γ(X̄);
* **bag** — every distinct satisfying assignment γ contributes
  ``Π_i m_i`` copies of γ(X̄), where ``m_i`` is the multiplicity, in the
  stored bag, of the tuple that γ maps the *i*-th subgoal onto.

All three return a :class:`~repro.evaluation.bag.Bag`; under set semantics
every multiplicity is 1.
"""

from __future__ import annotations

from typing import Mapping

from ..core.query import ConjunctiveQuery
from ..database.instance import DatabaseInstance
from ..exceptions import EvaluationError
from ..semantics import Semantics
from .assignments import InstanceIndex, instantiate_terms, iter_satisfying_assignments
from .bag import Bag


def _check_relations_exist(query: ConjunctiveQuery, instance: DatabaseInstance) -> None:
    # A missing relation is treated as empty; mismatched arities are an error.
    for atom in query.body:
        if instance.has_relation(atom.predicate):
            relation = instance.relation(atom.predicate)
            if relation.arity != atom.arity:
                raise EvaluationError(
                    f"atom {atom} has arity {atom.arity} but relation "
                    f"{atom.predicate} has arity {relation.arity}"
                )


def evaluate_set(query: ConjunctiveQuery, instance: DatabaseInstance) -> Bag:
    """Answer under set semantics: distinct head tuples, each with multiplicity 1."""
    _check_relations_exist(query, instance)
    deduplicated = instance.distinct()
    index = InstanceIndex(deduplicated)
    seen: set[tuple] = set()
    for assignment in iter_satisfying_assignments(
        query.body, deduplicated, index, plan=query.body_plan()
    ):
        seen.add(instantiate_terms(query.head_terms, assignment))
    return Bag(seen)


def evaluate_bag_set(query: ConjunctiveQuery, instance: DatabaseInstance) -> Bag:
    """Answer under bag-set semantics: one copy of γ(X̄) per distinct assignment γ.

    The stored relations are deduplicated first, matching the paper's setting
    where bag-set semantics is defined over set-valued databases; evaluating
    a bag-valued instance under bag-set semantics therefore means "evaluate
    against its core sets".
    """
    _check_relations_exist(query, instance)
    deduplicated = instance.distinct()
    index = InstanceIndex(deduplicated)
    answer = Bag()
    for assignment in iter_satisfying_assignments(
        query.body, deduplicated, index, plan=query.body_plan()
    ):
        answer.add(instantiate_terms(query.head_terms, assignment))
    return answer


def evaluate_bag(query: ConjunctiveQuery, instance: DatabaseInstance) -> Bag:
    """Answer under bag semantics (Section 2.2).

    Each distinct satisfying assignment γ contributes ``Π_i m_i`` copies of
    γ(X̄), where ``m_i`` is the stored multiplicity of the tuple γ maps the
    i-th subgoal onto.
    """
    _check_relations_exist(query, instance)
    deduplicated = instance.distinct()
    index = InstanceIndex(deduplicated)
    answer = Bag()
    for assignment in iter_satisfying_assignments(
        query.body, deduplicated, index, plan=query.body_plan()
    ):
        multiplicity = 1
        for atom in query.body:
            row = instantiate_terms(atom.terms, assignment)
            if not instance.has_relation(atom.predicate):
                multiplicity = 0
                break
            multiplicity *= instance.relation(atom.predicate).multiplicity(row)
            if multiplicity == 0:
                break
        if multiplicity > 0:
            answer.add(
                instantiate_terms(query.head_terms, assignment), multiplicity
            )
    return answer


_EVALUATORS = {
    Semantics.SET: evaluate_set,
    Semantics.BAG: evaluate_bag,
    Semantics.BAG_SET: evaluate_bag_set,
}


def evaluate(
    query: ConjunctiveQuery,
    instance: DatabaseInstance,
    semantics: Semantics | str = Semantics.BAG_SET,
) -> Bag:
    """Evaluate *query* on *instance* under the chosen semantics."""
    semantics = Semantics.from_name(semantics)
    return _EVALUATORS[semantics](query, instance)


def answers_agree(
    query1: ConjunctiveQuery,
    query2: ConjunctiveQuery,
    instance: DatabaseInstance,
    semantics: Semantics | str = Semantics.BAG_SET,
) -> bool:
    """Do the two queries produce identical answers (as bags) on *instance*?

    This is the per-database check used by counterexample searches; full
    equivalence requires the symbolic tests in :mod:`repro.equivalence`.
    """
    return evaluate(query1, instance, semantics) == evaluate(query2, instance, semantics)


def evaluate_all_semantics(
    query: ConjunctiveQuery, instance: DatabaseInstance
) -> Mapping[Semantics, Bag]:
    """Answers of *query* under all three semantics (handy for examples/benchmarks)."""
    return {semantics: _EVALUATORS[semantics](query, instance) for semantics in Semantics}
