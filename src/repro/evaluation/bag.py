"""Multisets (bags) of tuples.

Query answers under bag and bag-set semantics are bags of tuples
(Section 2.2).  :class:`Bag` is a thin, explicit wrapper around
:class:`collections.Counter` with the vocabulary the paper uses: core set,
multiplicity, cardinality, bag equality, bag containment (sub-bag), and bag
projection (Appendix E.1).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Sequence


class Bag:
    """A finite multiset of tuples."""

    def __init__(self, elements: Iterable[Sequence[object]] = ()):
        self._counts: Counter[tuple] = Counter()
        for element in elements:
            self.add(element)

    @classmethod
    def from_counts(cls, counts: dict[tuple, int]) -> "Bag":
        """Build a bag from a ``tuple -> multiplicity`` mapping."""
        bag = cls()
        for element, count in counts.items():
            bag.add(element, count)
        return bag

    # ------------------------------------------------------------------ #
    def add(self, element: Sequence[object], multiplicity: int = 1) -> None:
        """Add *multiplicity* copies of *element*."""
        if multiplicity <= 0:
            raise ValueError("multiplicity must be positive")
        self._counts[tuple(element)] += multiplicity

    def multiplicity(self, element: Sequence[object]) -> int:
        """Number of copies of *element* (0 when absent)."""
        return self._counts.get(tuple(element), 0)

    def core_set(self) -> set[tuple]:
        """The set of distinct elements."""
        return set(self._counts)

    @property
    def cardinality(self) -> int:
        """Total number of elements, counting duplicates."""
        return sum(self._counts.values())

    def is_set(self) -> bool:
        """True when no element has multiplicity greater than 1."""
        return all(count == 1 for count in self._counts.values())

    def distinct(self) -> "Bag":
        """The bag with every multiplicity clamped to 1."""
        return Bag.from_counts({element: 1 for element in self._counts})

    def __iter__(self) -> Iterator[tuple]:
        """Iterate over elements, repeating each according to its multiplicity."""
        return iter(self._counts.elements())

    def iter_with_multiplicity(self) -> Iterator[tuple[tuple, int]]:
        """Iterate over ``(element, multiplicity)`` pairs."""
        return iter(self._counts.items())

    def __len__(self) -> int:
        return self.cardinality

    def __contains__(self, element: Sequence[object]) -> bool:
        return tuple(element) in self._counts

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Bag):
            return self._counts == other._counts
        if isinstance(other, (set, frozenset)):
            return self.is_set() and self.core_set() == {tuple(e) for e in other}
        return NotImplemented

    def __le__(self, other: "Bag") -> bool:
        """Sub-bag test: every element's multiplicity here is ≤ its multiplicity in *other*."""
        return all(count <= other.multiplicity(element) for element, count in self._counts.items())

    def __add__(self, other: "Bag") -> "Bag":
        """Bag union (multiplicities add)."""
        result = Bag()
        for element, count in self._counts.items():
            result.add(element, count)
        for element, count in other._counts.items():
            result.add(element, count)
        return result

    def project(self, positions: Sequence[int]) -> "Bag":
        """Bag projection π^bag onto *positions* (Appendix E.1)."""
        result = Bag()
        for element, count in self._counts.items():
            result.add(tuple(element[p] for p in positions), count)
        return result

    def as_counter(self) -> Counter[tuple]:
        """A copy of the underlying counter."""
        return Counter(self._counts)

    def __str__(self) -> str:
        parts = []
        for element, count in sorted(self._counts.items(), key=repr):
            parts.extend([str(element)] * count)
        return "{{" + ", ".join(parts) + "}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Bag({self!s})"
