"""Evaluation of aggregate queries (grouping + aggregation, Section 2.5).

The paper defines the answer of an aggregate query ``Q(S̄, α(Y)) :- A`` on a
set-valued database in three steps:

1. evaluate the core Q̆ under **bag-set** semantics,
2. group the resulting bag by the values of the grouping arguments,
3. apply the aggregate function to the bag of aggregated-argument values of
   each group, returning one tuple per group.

``count(*)`` counts the tuples of the group; ``count(y)`` counts the (non-
null — nulls do not arise in CQ answers) values of ``y`` including
duplicates, which over CQ cores coincides with the group size; ``sum``,
``max``, ``min`` behave as usual.
"""

from __future__ import annotations

from ..core.aggregate import AggregateFunction, AggregateQuery
from ..database.instance import DatabaseInstance
from ..evaluation.bag import Bag
from ..evaluation.engine import evaluate_bag_set
from ..exceptions import EvaluationError


def _aggregate_values(function: AggregateFunction, values: list[object]) -> object:
    if function in (AggregateFunction.COUNT, AggregateFunction.COUNT_STAR):
        return len(values)
    if not values:
        raise EvaluationError("aggregate over an empty group")
    numeric = list(values)
    if function is AggregateFunction.SUM:
        return sum(numeric)  # type: ignore[arg-type]
    if function is AggregateFunction.MAX:
        return max(numeric)  # type: ignore[type-var]
    if function is AggregateFunction.MIN:
        return min(numeric)  # type: ignore[type-var]
    raise EvaluationError(f"unsupported aggregate function {function}")


def evaluate_aggregate(query: AggregateQuery, instance: DatabaseInstance) -> Bag:
    """Evaluate *query* on *instance*; the answer is a set of one tuple per group.

    Each answer tuple carries the grouping values followed by the aggregated
    value.  The result is returned as a :class:`Bag` in which every
    multiplicity is 1 (grouping collapses duplicates by definition).
    """
    core = query.core()
    core_answer = evaluate_bag_set(core, instance)

    group_width = len(query.grouping_terms)
    groups: dict[tuple, list[object]] = {}
    for row, multiplicity in core_answer.iter_with_multiplicity():
        key = row[:group_width]
        bucket = groups.setdefault(key, [])
        if query.aggregate.argument is None:
            # count(*): only the group size matters.
            bucket.extend([None] * multiplicity)
        else:
            bucket.extend([row[group_width]] * multiplicity)

    answer = Bag()
    for key, values in groups.items():
        aggregated = _aggregate_values(query.aggregate.function, values)
        answer.add((*key, aggregated))
    return answer


def aggregate_answers_agree(
    query1: AggregateQuery, query2: AggregateQuery, instance: DatabaseInstance
) -> bool:
    """Do the two aggregate queries return the same relation on *instance*?"""
    return evaluate_aggregate(query1, instance) == evaluate_aggregate(query2, instance)
