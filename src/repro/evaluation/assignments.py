"""Enumeration of satisfying assignments for a conjunction of atoms.

An *assignment* γ maps the variables of a conjunction of atoms to constants
(and constants to themselves); it satisfies the conjunction with respect to a
database when each atom, instantiated by γ, is a tuple of the corresponding
relation (Section 2.1).  Query evaluation under every semantics, dependency
satisfaction, and the counterexample constructions all enumerate satisfying
assignments, so this module implements the enumeration once, as a
backtracking join:

* relations are indexed per column on demand,
* at each step the next atom joined is the one with the fewest candidate
  tuples given the variables bound so far (most-constrained-first),
* assignments are yielded as plain ``{Variable: value}`` dictionaries.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..core.atoms import Atom
from ..core.terms import Constant, Variable
from ..database.instance import DatabaseInstance, Relation

Assignment = dict[Variable, object]


class _RelationIndex:
    """Per-column hash indexes over a relation's distinct tuples, built lazily."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.tuples = list(relation)
        self._by_column: dict[int, dict[object, list[tuple]]] = {}

    def column_index(self, position: int) -> dict[object, list[tuple]]:
        if position not in self._by_column:
            index: dict[object, list[tuple]] = {}
            for row in self.tuples:
                index.setdefault(row[position], []).append(row)
            self._by_column[position] = index
        return self._by_column[position]

    def candidates(self, bound: Sequence[tuple[int, object]]) -> list[tuple]:
        """Distinct tuples compatible with the given (position, value) bindings."""
        if not bound:
            return self.tuples
        # Probe the index of the first bound column, then filter on the rest.
        first_position, first_value = bound[0]
        rows = self.column_index(first_position).get(first_value, [])
        if len(bound) == 1:
            return rows
        rest = bound[1:]
        return [row for row in rows if all(row[p] == v for p, v in rest)]


class InstanceIndex:
    """Indexes for every relation of a database instance, built lazily and shared
    across multiple evaluations of queries against the same instance."""

    def __init__(self, instance: DatabaseInstance):
        self.instance = instance
        self._indexes: dict[str, _RelationIndex] = {}

    def for_predicate(self, predicate: str) -> _RelationIndex | None:
        if predicate not in self._indexes:
            if not self.instance.has_relation(predicate):
                return None
            self._indexes[predicate] = _RelationIndex(self.instance.relation(predicate))
        return self._indexes[predicate]


def _bound_positions(atom: Atom, assignment: Assignment) -> tuple[list[tuple[int, object]], bool]:
    """(position, value) pairs fixed by constants / bound variables; also reports
    whether the atom has repeated variables that must agree."""
    bound: list[tuple[int, object]] = []
    has_repeats = len(set(atom.terms)) != len(atom.terms)
    for position, term in enumerate(atom.terms):
        if isinstance(term, Constant):
            bound.append((position, term.value))
        elif term in assignment:
            bound.append((position, assignment[term]))
    return bound, has_repeats


def _match_atom(atom: Atom, row: tuple, assignment: Assignment) -> Assignment | None:
    """New bindings needed for *atom* to match *row* under *assignment*, or None."""
    new_bindings: Assignment = {}
    for term, value in zip(atom.terms, row):
        if isinstance(term, Constant):
            if term.value != value:
                return None
            continue
        bound_value = assignment.get(term, new_bindings.get(term))
        if bound_value is None and term not in assignment and term not in new_bindings:
            new_bindings[term] = value
        elif bound_value != value:
            return None
    return new_bindings


def iter_satisfying_assignments(
    atoms: Sequence[Atom],
    instance: DatabaseInstance,
    index: InstanceIndex | None = None,
    fixed: Mapping[Variable, object] | None = None,
) -> Iterator[Assignment]:
    """Yield every assignment of the variables of *atoms* satisfied by *instance*.

    ``fixed`` pre-binds some variables (used by tgd-satisfaction checks where
    the premise assignment is extended over the conclusion).
    """
    if index is None:
        index = InstanceIndex(instance)
    atom_list = list(atoms)
    base: Assignment = dict(fixed or {})

    def candidate_rows(atom: Atom, assignment: Assignment) -> list[tuple] | None:
        relation_index = index.for_predicate(atom.predicate)
        if relation_index is None:
            return []
        if relation_index.relation.arity != atom.arity:
            return []
        bound, _ = _bound_positions(atom, assignment)
        return relation_index.candidates(bound)

    def search(remaining: list[Atom], assignment: Assignment) -> Iterator[Assignment]:
        if not remaining:
            yield dict(assignment)
            return
        # Most-constrained-first atom selection.
        best_index = 0
        best_rows: list[tuple] | None = None
        for position, atom in enumerate(remaining):
            rows = candidate_rows(atom, assignment)
            if best_rows is None or len(rows) < len(best_rows):
                best_index, best_rows = position, rows
                if not rows:
                    return
        atom = remaining[best_index]
        rest = remaining[:best_index] + remaining[best_index + 1 :]
        assert best_rows is not None
        for row in best_rows:
            new_bindings = _match_atom(atom, row, assignment)
            if new_bindings is None:
                continue
            assignment.update(new_bindings)
            yield from search(rest, assignment)
            for key in new_bindings:
                del assignment[key]

    yield from search(atom_list, base)


def assignment_satisfies(
    atoms: Sequence[Atom],
    instance: DatabaseInstance,
    fixed: Mapping[Variable, object] | None = None,
) -> bool:
    """Is there at least one satisfying assignment extending *fixed*?"""
    for _ in iter_satisfying_assignments(atoms, instance, fixed=fixed):
        return True
    return False


def instantiate_terms(
    terms: Sequence, assignment: Mapping[Variable, object]
) -> tuple:
    """Apply an assignment to a term vector, producing a tuple of values."""
    values = []
    for term in terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            values.append(assignment[term])
    return tuple(values)
