"""Enumeration of satisfying assignments for a conjunction of atoms.

An *assignment* γ maps the variables of a conjunction of atoms to constants
(and constants to themselves); it satisfies the conjunction with respect to a
database when each atom, instantiated by γ, is a tuple of the corresponding
relation (Section 2.1).  Query evaluation under every semantics, dependency
satisfaction, and the counterexample constructions all enumerate satisfying
assignments, so this module implements the enumeration once, as a
backtracking join:

* relations are indexed per column on demand,
* at each step the next atom joined is the one with the fewest candidate
  tuples given the variables bound so far (most-constrained-first),
* assignments are yielded as plain ``{Variable: value}`` dictionaries.

The join runs on the same compiled representation as the homomorphism
kernel: the conjunction is compiled (once, via
:class:`~repro.core.plan.MatchPlan` — query bodies memoize theirs through
:meth:`~repro.core.query.ConjunctiveQuery.body_plan`) into per-atom
slot/constant codes, and the working assignment is a slot-indexed array of
database values instead of a dictionary keyed by term objects.  Variables
and values reappear only at the yield boundary, so the enumeration order and
the yielded dictionaries are identical to the pre-plan implementation.
"""

from __future__ import annotations

from typing import Iterator, Mapping, Sequence

from ..core.atoms import Atom
from ..core.plan import MatchPlan
from ..core.terms import Constant, Variable
from ..database.instance import DatabaseInstance, Relation

Assignment = dict[Variable, object]

#: Slot sentinel: distinguishes "unbound" from bound-to-a-falsy-or-None
#: database value.
_UNBOUND = object()


class _RelationIndex:
    """Per-column hash indexes over a relation's distinct tuples, built lazily."""

    def __init__(self, relation: Relation):
        self.relation = relation
        self.tuples = list(relation)
        self._by_column: dict[int, dict[object, list[tuple]]] = {}

    def column_index(self, position: int) -> dict[object, list[tuple]]:
        if position not in self._by_column:
            index: dict[object, list[tuple]] = {}
            for row in self.tuples:
                index.setdefault(row[position], []).append(row)
            self._by_column[position] = index
        return self._by_column[position]

    def candidates(self, bound: Sequence[tuple[int, object]]) -> list[tuple]:
        """Distinct tuples compatible with the given (position, value) bindings."""
        if not bound:
            return self.tuples
        # Probe the index of the first bound column, then filter on the rest.
        first_position, first_value = bound[0]
        rows = self.column_index(first_position).get(first_value, [])
        if len(bound) == 1:
            return rows
        rest = bound[1:]
        return [row for row in rows if all(row[p] == v for p, v in rest)]


class InstanceIndex:
    """Indexes for every relation of a database instance, built lazily and shared
    across multiple evaluations of queries against the same instance."""

    def __init__(self, instance: DatabaseInstance):
        self.instance = instance
        self._indexes: dict[str, _RelationIndex] = {}

    def for_predicate(self, predicate: str) -> _RelationIndex | None:
        if predicate not in self._indexes:
            if not self.instance.has_relation(predicate):
                return None
            self._indexes[predicate] = _RelationIndex(self.instance.relation(predicate))
        return self._indexes[predicate]


def iter_satisfying_assignments(
    atoms: Sequence[Atom],
    instance: DatabaseInstance,
    index: InstanceIndex | None = None,
    fixed: Mapping[Variable, object] | None = None,
    plan: MatchPlan | None = None,
) -> Iterator[Assignment]:
    """Yield every assignment of the variables of *atoms* satisfied by *instance*.

    ``fixed`` pre-binds some variables (used by tgd-satisfaction checks where
    the premise assignment is extended over the conclusion); ``plan`` lets
    callers that evaluate the same conjunction repeatedly pass its compiled
    :class:`~repro.core.plan.MatchPlan` (it must be compiled from exactly
    *atoms*).
    """
    if index is None:
        index = InstanceIndex(instance)
    if plan is None:
        plan = MatchPlan(atoms)
    base: Assignment = dict(fixed or {})

    plan_atoms = plan.atoms
    atom_codes = plan.codes
    slot_vars = plan.slot_vars
    # Constant positions, precomputed per atom as (position, value) pairs —
    # the codes encode constants as ~uid, but the join compares raw database
    # values, so the values are pulled from the source terms once here.
    const_bound: list[tuple[tuple[int, object], ...]] = [
        tuple(
            (position, atom.terms[position].value)  # type: ignore[union-attr]
            for position, code in enumerate(codes)
            if code < 0
        )
        for atom, codes in zip(plan_atoms, atom_codes)
    ]

    values: list[object] = [_UNBOUND] * len(slot_vars)
    slot_of = plan.slot_of
    for key, value in base.items():
        slot = slot_of.get(key.uid)
        if slot is not None:
            values[slot] = value

    def candidate_rows(source_pos: int) -> list[tuple]:
        atom = plan_atoms[source_pos]
        relation_index = index.for_predicate(atom.predicate)
        if relation_index is None:
            return []
        if relation_index.relation.arity != atom.arity:
            return []
        bound = list(const_bound[source_pos])
        for position, code in enumerate(atom_codes[source_pos]):
            if code >= 0:
                value = values[code]
                if value is not _UNBOUND:
                    bound.append((position, value))
        return relation_index.candidates(bound)

    remaining = list(range(len(plan_atoms)))
    trail: list[int] = []
    scratch = [0] * plan.max_arity

    def search() -> Iterator[Assignment]:
        if not remaining:
            result = dict(base)
            for slot in trail:
                result[slot_vars[slot]] = values[slot]
            yield result
            return
        # Most-constrained-first atom selection.
        best_at = 0
        best_rows: list[tuple] | None = None
        for position, source_pos in enumerate(remaining):
            rows = candidate_rows(source_pos)
            if best_rows is None or len(rows) < len(best_rows):
                best_at, best_rows = position, rows
                if not rows:
                    return
        source_pos = remaining.pop(best_at)
        codes = atom_codes[source_pos]
        consts = const_bound[source_pos]
        assert best_rows is not None
        for row in best_rows:
            # Match the row against the atom's codes, binding free slots.
            ok = True
            for position, value in consts:
                if row[position] != value:
                    ok = False
                    break
            touched = 0
            if ok:
                for position, code in enumerate(codes):
                    if code < 0:
                        continue
                    bound_value = values[code]
                    row_value = row[position]
                    if bound_value is _UNBOUND:
                        values[code] = row_value
                        scratch[touched] = code
                        touched += 1
                    elif bound_value != row_value:
                        ok = False
                        break
            if not ok:
                while touched:
                    touched -= 1
                    values[scratch[touched]] = _UNBOUND
                continue
            trail.extend(scratch[:touched])
            yield from search()
            while touched:
                touched -= 1
                values[trail.pop()] = _UNBOUND
        remaining.insert(best_at, source_pos)

    yield from search()


def assignment_satisfies(
    atoms: Sequence[Atom],
    instance: DatabaseInstance,
    fixed: Mapping[Variable, object] | None = None,
) -> bool:
    """Is there at least one satisfying assignment extending *fixed*?"""
    for _ in iter_satisfying_assignments(atoms, instance, fixed=fixed):
        return True
    return False


def instantiate_terms(
    terms: Sequence, assignment: Mapping[Variable, object]
) -> tuple:
    """Apply an assignment to a term vector, producing a tuple of values."""
    values = []
    for term in terms:
        if isinstance(term, Constant):
            values.append(term.value)
        else:
            values.append(assignment[term])
    return tuple(values)
