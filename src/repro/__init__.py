"""repro — Equivalence of SQL queries in presence of embedded dependencies.

A from-scratch Python implementation of Chirkova & Genesereth,
"Equivalence of SQL Queries in Presence of Embedded Dependencies"
(PODS 2009, arXiv:0812.2195): sound chase under bag and bag-set semantics,
Σ-aware equivalence tests for conjunctive and aggregate queries, and the
C&B / Bag-C&B / Bag-Set-C&B / Max-Min-C&B / Sum-Count-C&B reformulation
algorithms — plus the substrates they need (query model, bag-valued database
engine, dependency machinery, SQL and datalog front ends).

Typical use — the :class:`Session` engine binds Σ once and serves chases,
decisions, and reformulations through a shared cache and semantics
registry::

    from repro import Session, parse_dependencies, parse_query

    sigma = parse_dependencies('''
        p(X,Y) -> t(X,Y,W)
        t(X,Y,Z) & t(X,Y,W) -> Z = W
    ''', set_valued=["t"])
    session = Session(dependencies=sigma)
    q1 = parse_query("Q1(X) :- p(X,Y)")
    q2 = parse_query("Q2(X) :- p(X,Y), t(X,Y,W)")
    verdict = session.decide(q1, q2, semantics="bag")
    assert verdict.equivalent

The flat functional API (``decide_equivalence``, ``sound_chase``,
``chase_and_backchase``, ...) remains available and delegates to the same
engine.
"""

from .core import (
    AggregateFunction,
    AggregateQuery,
    AggregateTerm,
    Atom,
    ConjunctiveQuery,
    Constant,
    EqualityAtom,
    Variable,
    are_isomorphic,
    cq,
    is_bag_equivalent,
    is_bag_equivalent_with_set_enforced,
    is_bag_set_equivalent,
    is_set_contained,
    is_set_equivalent,
    minimize,
)
from .chase import (
    ChaseResult,
    bag_chase,
    bag_set_chase,
    chase,
    is_assignment_fixing,
    max_bag_set_sigma_subset,
    max_bag_sigma_subset,
    set_chase,
    sound_chase,
)
from .database import (
    DatabaseInstance,
    Relation,
    canonical_database,
    satisfies,
    satisfies_all,
)
from .datalog import (
    parse_aggregate_query,
    parse_dependencies,
    parse_dependency,
    parse_query,
    render_dependency,
    render_query,
)
from .dependencies import (
    EGD,
    TGD,
    DependencySet,
    is_weakly_acyclic,
    regularize,
)
from .equivalence import (
    EquivalenceVerdict,
    decide_all,
    decide_equivalence,
    equivalent_aggregate_queries,
    equivalent_aggregate_queries_under_dependencies,
    equivalent_under_dependencies,
    equivalent_under_dependencies_bag,
    equivalent_under_dependencies_bag_set,
    equivalent_under_dependencies_set,
)
from .evaluation import Bag, evaluate, evaluate_aggregate
from .analysis import AnalysisReport, Diagnostic, TerminationCertificate, analyze
from .exceptions import (
    ChaseError,
    ChaseNonTerminationError,
    DependencyError,
    EvaluationError,
    ParseError,
    PrecheckFailedError,
    QueryError,
    ReformulationError,
    ReproError,
    SchemaError,
    SemanticsError,
    TranslationError,
    UnknownSemanticsError,
)
from .fuzz import (
    CampaignResult,
    FuzzCase,
    GeneratorConfig,
    generate_case,
    run_campaign,
    run_oracle,
)
from .reformulation import (
    ReformulationResult,
    bag_c_and_b,
    bag_set_c_and_b,
    c_and_b,
    chase_and_backchase,
    max_min_c_and_b,
    reformulate_aggregate_query,
    sum_count_c_and_b,
)
from .schema import DatabaseSchema, RelationSchema
from .semantics import Semantics
from .session import (
    BatchItem,
    BatchReport,
    CacheStats,
    ChaseCache,
    SemanticsRegistry,
    SemanticsStrategy,
    Session,
    default_registry,
)
from .sql import query_to_sql, schema_from_ddl, translate_sql
from .views import ViewDefinition, ViewSet, rewrite_query_using_views
from .witnesses import CounterexampleWitness, find_counterexample

__version__ = "1.0.0"

__all__ = [
    "AggregateFunction",
    "AggregateQuery",
    "AggregateTerm",
    "Atom",
    "AnalysisReport",
    "Bag",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "CampaignResult",
    "FuzzCase",
    "GeneratorConfig",
    "ChaseCache",
    "ChaseError",
    "ChaseNonTerminationError",
    "ChaseResult",
    "ConjunctiveQuery",
    "Constant",
    "CounterexampleWitness",
    "DatabaseInstance",
    "DatabaseSchema",
    "Diagnostic",
    "DependencyError",
    "DependencySet",
    "EGD",
    "EqualityAtom",
    "EquivalenceVerdict",
    "EvaluationError",
    "ParseError",
    "QueryError",
    "PrecheckFailedError",
    "ReformulationError",
    "ReformulationResult",
    "Relation",
    "RelationSchema",
    "ReproError",
    "SchemaError",
    "Semantics",
    "SemanticsError",
    "SemanticsRegistry",
    "SemanticsStrategy",
    "Session",
    "TGD",
    "TerminationCertificate",
    "TranslationError",
    "UnknownSemanticsError",
    "Variable",
    "ViewDefinition",
    "ViewSet",
    "analyze",
    "are_isomorphic",
    "bag_c_and_b",
    "bag_chase",
    "bag_set_c_and_b",
    "bag_set_chase",
    "c_and_b",
    "canonical_database",
    "chase",
    "chase_and_backchase",
    "cq",
    "decide_all",
    "decide_equivalence",
    "default_registry",
    "equivalent_aggregate_queries",
    "equivalent_aggregate_queries_under_dependencies",
    "equivalent_under_dependencies",
    "equivalent_under_dependencies_bag",
    "equivalent_under_dependencies_bag_set",
    "equivalent_under_dependencies_set",
    "evaluate",
    "evaluate_aggregate",
    "find_counterexample",
    "generate_case",
    "is_assignment_fixing",
    "is_bag_equivalent",
    "is_bag_equivalent_with_set_enforced",
    "is_bag_set_equivalent",
    "is_set_contained",
    "is_set_equivalent",
    "is_weakly_acyclic",
    "max_bag_set_sigma_subset",
    "max_bag_sigma_subset",
    "max_min_c_and_b",
    "minimize",
    "parse_aggregate_query",
    "parse_dependencies",
    "parse_dependency",
    "parse_query",
    "query_to_sql",
    "reformulate_aggregate_query",
    "regularize",
    "rewrite_query_using_views",
    "render_dependency",
    "render_query",
    "run_campaign",
    "run_oracle",
    "satisfies",
    "satisfies_all",
    "schema_from_ddl",
    "set_chase",
    "sound_chase",
    "sum_count_c_and_b",
    "translate_sql",
]
