"""Synthetic workload generators used by the benchmark harness.

The paper's complexity claims (Theorem 5.2, Examples H.1/H.2) and its
reformulation algorithms are exercised on three families of workloads:

* :func:`h_family` — the explicit lower-bound family of Examples H.1/H.2:
  ``m`` binary relations, the tgds σ(1)_{i,j} / σ(2)_{i,j}, and the fds that
  make every tgd key based; the terminal chase of ``Q(X,Y) :- p1(X,Y)``
  has size exponential in ``m``.
* :func:`chain_workload` — path-shaped queries ``Q(X0,Xn) :- r1(X0,X1),
  ..., rn(X_{n-1},Xn)`` with key and inclusion dependencies; chase output
  grows linearly with query size, which is the "polynomial in |Q|" half of
  Theorem 5.2.
* :func:`orders_workload` — a small order/customer/product schema with
  primary-key and foreign-key constraints, used by the SQL end-to-end
  experiment (E10) and the reformulation experiment (E9): the foreign keys
  make some joins redundant under set semantics but not under bag semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable
from ..dependencies.base import TGD, Dependency, DependencySet
from ..dependencies.builders import (
    functional_dependency_egd,
    inclusion_dependency,
    key_egds,
)
from ..schema.schema import DatabaseSchema

if TYPE_CHECKING:
    from ..fuzz.generator import GeneratorConfig


@dataclass(frozen=True)
class Workload:
    """A benchmark workload: a schema, a dependency set, and a query."""

    name: str
    schema: DatabaseSchema
    dependencies: DependencySet
    query: ConjunctiveQuery
    parameters: dict


def h_family(m: int, key_based: bool = True) -> Workload:
    """The Examples H.1/H.2 family on ``m`` binary relations p1..pm.

    Tgds: for every i < j,  σ(1)_{i,j}: p_i(X,Y) → ∃Z p_j(Z,X)  and
    σ(2)_{i,j}: p_i(X,Y) → ∃W p_j(Y,W).  With ``key_based=True`` the fds of
    Example H.2 are added (each attribute of each p_i is a key) and every
    relation is marked set valued, which makes every tgd key based and hence
    the sound bag / bag-set chase applies all of them — producing a chase
    result of size exponential in m.
    """
    if m < 1:
        raise ValueError("the H family needs at least one relation")
    relation_names = [f"p{i}" for i in range(1, m + 1)]
    schema = DatabaseSchema.from_arities(
        {name: 2 for name in relation_names},
        set_valued=relation_names if key_based else (),
    )
    dependencies: list[Dependency] = []
    x, y, z, w = Variable("X"), Variable("Y"), Variable("Z"), Variable("W")
    for i in range(1, m):
        for j in range(i + 1, m + 1):
            source, target = f"p{i}", f"p{j}"
            dependencies.append(
                _tgd_from_atoms(
                    [Atom(source, [x, y])], [Atom(target, [z, x])],
                    name=f"sigma1_{i}_{j}",
                )
            )
            dependencies.append(
                _tgd_from_atoms(
                    [Atom(source, [x, y])], [Atom(target, [y, w])],
                    name=f"sigma2_{i}_{j}",
                )
            )
    if key_based:
        for name in relation_names:
            dependencies.append(
                functional_dependency_egd(name, 2, [0], 1, name=f"fd1_{name}")
            )
            dependencies.append(
                functional_dependency_egd(name, 2, [1], 0, name=f"fd2_{name}")
            )
    query = ConjunctiveQuery("Q", [x, y], [Atom("p1", [x, y])])
    return Workload(
        name=f"h_family(m={m})",
        schema=schema,
        dependencies=DependencySet(
            dependencies, set_valued_predicates=relation_names if key_based else ()
        ),
        query=query,
        parameters={"m": m, "key_based": key_based},
    )


def _tgd_from_atoms(
    premise: list[Atom], conclusion: list[Atom], name: str = ""
) -> TGD:
    return TGD(premise, conclusion, name=name)


def chain_workload(length: int, with_keys: bool = True) -> Workload:
    """A chain (path) query of the given length with key + inclusion dependencies.

    Query: ``Q(X0) :- r1(X0, X1), r2(X1, X2), ..., rn(X_{n-1}, Xn)``.
    Dependencies: the first attribute of each r_i is its key (egd), every
    relation is set valued, and r_i[1] ⊆ r_{i+1}[0] (inclusion tgds), so the
    chase of a prefix of the query regenerates the remaining subgoals and
    C&B can shorten the query all the way down to its first subgoal.
    """
    if length < 1:
        raise ValueError("chain length must be at least 1")
    relation_names = [f"r{i}" for i in range(1, length + 1)]
    schema = DatabaseSchema.from_arities(
        {name: 2 for name in relation_names}, set_valued=relation_names
    )
    dependencies: list[Dependency] = []
    if with_keys:
        for name in relation_names:
            dependencies.extend(key_egds(name, 2, [0], name_prefix=f"key_{name}"))
    for index in range(length - 1):
        dependencies.append(
            inclusion_dependency(
                relation_names[index], 2, [1],
                relation_names[index + 1], 2, [0],
                name=f"inc_{index + 1}",
            )
        )
    variables = [Variable(f"X{i}") for i in range(length + 1)]
    body = [
        Atom(relation_names[i], [variables[i], variables[i + 1]])
        for i in range(length)
    ]
    query = ConjunctiveQuery("Q", [variables[0]], body)
    return Workload(
        name=f"chain(length={length})",
        schema=schema,
        dependencies=DependencySet(
            dependencies, set_valued_predicates=relation_names
        ),
        query=query,
        parameters={"length": length, "with_keys": with_keys},
    )


def star_workload(spokes: int, distractors: int = 0) -> Workload:
    """A hub relation fanning out to *spokes* distinct spoke relations.

    Query: ``Q(X) :- hub(X)``.  Dependencies: for every spoke relation
    ``s_i``, a tgd ``hub(X) → ∃Y s_i(X, Y)`` plus the fd ``s_i[0] → s_i[1]``
    that makes the tgd assignment fixing (the key forces the witness to be
    unique), with every spoke set valued.  The sound chase applies each tgd
    exactly once, so the chase takes ``spokes`` tgd steps while Σ holds
    ``2·spokes`` dependencies — a worst case for drivers that rescan all of
    Σ every round and the best case for the delta trigger index.

    ``distractors`` appends inert inclusion dependencies over relations the
    query never mentions, growing Σ without changing the chase — the
    "growing Σ" axis of the scaling benchmark.
    """
    if spokes < 1:
        raise ValueError("the star needs at least one spoke")
    spoke_names = [f"s{i}" for i in range(1, spokes + 1)]
    arities = {"hub": 1}
    arities.update({name: 2 for name in spoke_names})
    dependencies: list[Dependency] = []
    x, y = Variable("X"), Variable("Y")
    for name in spoke_names:
        dependencies.append(
            _tgd_from_atoms([Atom("hub", [x])], [Atom(name, [x, y])], name=f"spoke_{name}")
        )
        dependencies.append(
            functional_dependency_egd(name, 2, [0], 1, name=f"fd_{name}")
        )
    distractor_names = [f"d{i}" for i in range(1, distractors + 1)]
    for index, name in enumerate(distractor_names):
        arities[name] = 2
        dependencies.append(
            inclusion_dependency(name, 2, [1], name, 2, [0], name=f"inert_{index + 1}")
        )
    schema = DatabaseSchema.from_arities(arities, set_valued=spoke_names)
    query = ConjunctiveQuery("Q", [x], [Atom("hub", [x])])
    return Workload(
        name=f"star(spokes={spokes}, distractors={distractors})",
        schema=schema,
        dependencies=DependencySet(dependencies, set_valued_predicates=spoke_names),
        query=query,
        parameters={"spokes": spokes, "distractors": distractors},
    )


def clique_workload(size: int, distractors: int = 0) -> Workload:
    """A clique query over one edge relation, saturated by a triangle tgd.

    Query: ``Q(X1) :- e(Xi, Xj)`` for every ``i < j`` — ``size·(size-1)/2``
    subgoals over a *single* predicate, the worst case for homomorphism
    search without per-position filtering.  The full tgd
    ``e(X,Y) ∧ e(Y,Z) ∧ e(X,Z) → t(X,Y,Z)`` materialises one triangle per
    step (``C(size, 3)`` steps in total; full tgds are assignment fixing by
    Proposition 4.3, so every step is sound under bag and bag-set
    semantics).  Each round re-matches the three-atom premise and checks
    conclusion extendability against a body that keeps growing with
    ``t``-atoms: the indexed engine narrows both through bound positions,
    where the old search scanned every same-predicate atom.

    ``distractors`` adds inert dependencies exactly as in
    :func:`star_workload`.
    """
    if size < 3:
        raise ValueError("the clique needs at least three nodes")
    variables = [Variable(f"X{i}") for i in range(1, size + 1)]
    body = [
        Atom("e", [variables[i], variables[j]])
        for i in range(size)
        for j in range(i + 1, size)
    ]
    x, y, z = Variable("X"), Variable("Y"), Variable("Z")
    dependencies: list[Dependency] = [
        _tgd_from_atoms(
            [Atom("e", [x, y]), Atom("e", [y, z]), Atom("e", [x, z])],
            [Atom("t", [x, y, z])],
            name="triangle",
        )
    ]
    arities = {"e": 2, "t": 3}
    distractor_names = [f"d{i}" for i in range(1, distractors + 1)]
    for index, name in enumerate(distractor_names):
        arities[name] = 2
        dependencies.append(
            inclusion_dependency(name, 2, [1], name, 2, [0], name=f"inert_{index + 1}")
        )
    schema = DatabaseSchema.from_arities(arities, set_valued=("e", "t"))
    query = ConjunctiveQuery("Q", [variables[0]], body)
    return Workload(
        name=f"clique(size={size}, distractors={distractors})",
        schema=schema,
        dependencies=DependencySet(dependencies, set_valued_predicates=("e", "t")),
        query=query,
        parameters={"size": size, "distractors": distractors},
    )


def random_workload(
    seed: int, index: int = 0, config: GeneratorConfig | None = None
) -> Workload:
    """A random (but deterministic) workload drawn from the fuzz generator.

    Bridges the structured families above and the scenario-diversity layer of
    :mod:`repro.fuzz`: benchmarks and experiments can sample arbitrary
    weakly-acyclic shapes — self-joins, constants in dependency conclusions,
    egd/tgd interleavings — with the exact reproduction recipe (``seed``,
    ``index``) carried in the workload parameters.
    """
    from ..fuzz.generator import DEFAULT_CONFIG, generate_case

    case = generate_case(seed, index, config or DEFAULT_CONFIG)
    schema = DatabaseSchema.from_arities(
        case.arities(),
        set_valued=case.dependencies.set_valued_predicates
        & set(case.arities()),
    )
    return Workload(
        name=f"random(seed={seed}, index={index})",
        schema=schema,
        dependencies=case.dependencies,
        query=case.query,
        parameters={"seed": seed, "index": index, "other": case.other},
    )


def orders_workload() -> Workload:
    """An orders/customer/product schema with PK + FK constraints.

    The query joins ``orders`` with ``customer`` and ``product``; the foreign
    keys make both lookups redundant under set semantics (the set-semantics
    C&B finds the single-subgoal reformulation) while under bag and bag-set
    semantics the sound algorithms keep exactly the joins whose multiplicity
    contribution is pinned down by the key constraints.
    """
    schema = DatabaseSchema.from_arities(
        {"orders": 3, "customer": 2, "product": 2},
        set_valued=("customer", "product"),
    )
    dependencies: list[Dependency] = []
    dependencies.extend(key_egds("customer", 2, [0], name_prefix="pk_customer"))
    dependencies.extend(key_egds("product", 2, [0], name_prefix="pk_product"))
    dependencies.append(
        inclusion_dependency("orders", 3, [1], "customer", 2, [0], name="fk_customer")
    )
    dependencies.append(
        inclusion_dependency("orders", 3, [2], "product", 2, [0], name="fk_product")
    )
    o, c, pr, cn, pn = (
        Variable("O"),
        Variable("C"),
        Variable("P"),
        Variable("CName"),
        Variable("PName"),
    )
    query = ConjunctiveQuery(
        "Q",
        [o],
        [
            Atom("orders", [o, c, pr]),
            Atom("customer", [c, cn]),
            Atom("product", [pr, pn]),
        ],
    )
    return Workload(
        name="orders",
        schema=schema,
        dependencies=DependencySet(
            dependencies, set_valued_predicates=("customer", "product")
        ),
        query=query,
        parameters={},
    )


ORDERS_DDL = """
CREATE TABLE customer (cid INT PRIMARY KEY, cname TEXT);
CREATE TABLE product (pid INT PRIMARY KEY, pname TEXT);
CREATE TABLE orders (
    oid INT,
    cid INT,
    pid INT,
    FOREIGN KEY (cid) REFERENCES customer (cid),
    FOREIGN KEY (pid) REFERENCES product (pid)
);
"""
