"""The paper's worked examples as ready-to-use Python objects.

Every example of Chirkova & Genesereth (PODS 2009) that defines concrete
queries, dependency sets, or counterexample databases is reconstructed here
so that tests, benchmarks, and users can reproduce the paper's claims
verbatim:

* Example 4.1 (with Examples 4.4, 4.5, 4.9, D.1, D.2 building on it),
* Examples 4.2 / 4.3 / 4.7 / 5.1 (assignment-fixing positive & negative),
* Examples 4.6 / 4.8 (the regularized-but-not-key-based tgd ν1),
* Examples E.1 / E.2 (unsound key-based steps over bag-valued relations /
  non-key-based steps under bag-set semantics).

Each example is exposed as a small frozen dataclass bundling its schema,
dependencies, queries, and counterexample databases.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Mapping

from ..core.query import ConjunctiveQuery
from ..database.instance import DatabaseInstance
from ..datalog.parser import parse_dependency, parse_query
from ..dependencies.base import Dependency, DependencySet
from ..schema.schema import DatabaseSchema


def _dependencies(named: Mapping[str, str], set_valued: tuple[str, ...] = ()) -> DependencySet:
    parsed: list[Dependency] = []
    for name, text in named.items():
        parsed.extend(parse_dependency(text, name=name))
    return DependencySet(parsed, set_valued_predicates=set_valued)


@dataclass(frozen=True)
class Example41:
    """Example 4.1 — the paper's motivating example.

    Schema D = {P, R, S, T, U}; Σ contains tgds σ1–σ4, set-enforcing
    constraints on S and T (σ5, σ6 — represented as set-valuedness markers),
    and key egds σ7 (first attribute of S) and σ8 (first two attributes of T).
    Queries Q1–Q4 satisfy:

    * Q1 ≡Σ,S Q4 but Q1 ≢Σ,B Q4 and Q1 ≢Σ,BS Q4;
    * (Q4)Σ,B ≃ Q3, (Q4)Σ,BS ≃ Q2, (Q4)Σ,S ≡S Q1;
    * the bag-valued database ``counterexample`` (with U = {(1,5),(1,6)})
      witnesses the bag inequivalence: Q4 returns {{(1)}} and Q1 returns
      {{(1),(1)}}.
    """

    schema: DatabaseSchema
    dependencies: DependencySet
    q1: ConjunctiveQuery
    q2: ConjunctiveQuery
    q3: ConjunctiveQuery
    q4: ConjunctiveQuery
    q5: ConjunctiveQuery
    q7: ConjunctiveQuery
    q8: ConjunctiveQuery
    counterexample: DatabaseInstance
    counterexample_d1: DatabaseInstance
    dependencies_without_sigma2: DependencySet = field(default=None)  # type: ignore[assignment]


def example_4_1() -> Example41:
    """Build Example 4.1 (and the queries of Examples 4.9 and D.2)."""
    schema = DatabaseSchema.from_arities(
        {"p": 2, "r": 1, "s": 2, "t": 3, "u": 2}, set_valued=("s", "t")
    )
    dependencies = _dependencies(
        {
            "sigma1": "p(X,Y) -> s(X,Z) & t(X,V,W)",
            "sigma2": "p(X,Y) -> t(X,Y,W)",
            "sigma3": "p(X,Y) -> r(X)",
            "sigma4": "p(X,Y) -> u(X,Z) & t(X,Y,W)",
            "sigma7": "s(X,Y) & s(X,Z) -> Y = Z",
            "sigma8": "t(X,Y,Z) & t(X,Y,W) -> Z = W",
        },
        set_valued=("s", "t"),
    )
    without_sigma2 = DependencySet(
        [d for d in dependencies if d.name != "sigma2"],
        dependencies.set_valued_predicates,
    )
    q1 = parse_query("Q1(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X), u(X,U)")
    q2 = parse_query("Q2(X) :- p(X,Y), t(X,Y,W), s(X,Z), r(X)")
    q3 = parse_query("Q3(X) :- p(X,Y), t(X,Y,W), s(X,Z)")
    q4 = parse_query("Q4(X) :- p(X,Y)")
    # Example 4.9: Q5 duplicates the s-subgoal of Q3.
    q5 = parse_query("Q5(X) :- p(X,Y), t(X,Y,W), s(X,Z), s(X,Z)")
    # Example D.2.
    q7 = parse_query("Q7(X) :- p(X,Y), r(X), r(X)")
    q8 = parse_query("Q8(X) :- p(X,Y), r(X)")
    counterexample = DatabaseInstance.from_dict(
        {
            "p": [(1, 2)],
            "r": [(1,)],
            "s": [(1, 3)],
            "t": [(1, 2, 4)],
            "u": [(1, 5), (1, 6)],
        },
        schema,
    )
    # Example D.1: S is a bag with two copies of (1, 3); R and U are empty.
    counterexample_d1 = DatabaseInstance.from_dict(
        {
            "p": [(1, 2)],
            "r": [],
            "s": [(1, 3), (1, 3)],
            "t": [(1, 2, 5)],
            "u": [],
        },
        schema,
    )
    return Example41(
        schema=schema,
        dependencies=dependencies,
        q1=q1,
        q2=q2,
        q3=q3,
        q4=q4,
        q5=q5,
        q7=q7,
        q8=q8,
        counterexample=counterexample,
        counterexample_d1=counterexample_d1,
        dependencies_without_sigma2=without_sigma2,
    )


@dataclass(frozen=True)
class Example42:
    """Example 4.2 — σ1 is assignment fixing w.r.t. Q(X) :- p(X,Y)."""

    schema: DatabaseSchema
    dependencies: DependencySet
    query: ConjunctiveQuery
    sigma1_name: str = "sigma1"


def example_4_2() -> Example42:
    """Build Example 4.2 (positive assignment-fixing determination)."""
    schema = DatabaseSchema.from_arities({"p": 2, "r": 2, "s": 2})
    dependencies = _dependencies(
        {
            "sigma1": "p(X,Y) -> r(X,Z) & s(Z,W)",
            "sigma2": "r(X,Y) & r(X,Z) -> Y = Z",
            "sigma3": "r(X,Y) & s(Y,T) & r(X,Z) & s(Z,W) -> T = W",
        }
    )
    query = parse_query("Q(X) :- p(X,Y)")
    return Example42(schema, dependencies, query)


@dataclass(frozen=True)
class Example43:
    """Examples 4.3 / 4.7 / 5.1 — the paper's negative assignment-fixing example.

    The paper claims σ4 is *not* assignment fixing w.r.t. Q(X) :- p(X,Y)
    (Example 4.3) and exhibits a counterexample database (Example 4.7).  As
    printed, however, the example is internally inconsistent: the claimed
    terminal chase result of the associated test query is not terminal (egd
    σ5 still applies across the two conclusion copies and identifies W with
    W1), and the Example 4.7 counterexample database violates σ5 itself —
    both facts are verified by tests in ``tests/test_paper_examples.py``.
    Carrying the chase to termination, σ4 *is* assignment fixing w.r.t. Q,
    and the chase step Q ⇒σ4 Q″ is sound; EXPERIMENTS.md records this
    deviation.  Example 5.1's claim (σ4 is assignment fixing w.r.t.
    Q′(X) :- p(X,Y), r(A,X)) is reproduced as stated.
    """

    schema: DatabaseSchema
    dependencies: DependencySet
    dependencies_47: DependencySet
    query: ConjunctiveQuery
    query_prime: ConjunctiveQuery
    chased_query_47: ConjunctiveQuery
    counterexample_47: DatabaseInstance
    sigma4_name: str = "sigma4"


def example_4_3() -> Example43:
    """Build Example 4.3, with Example 4.7's counterexample and Example 5.1's Q′."""
    schema = DatabaseSchema.from_arities({"p": 2, "r": 2, "s": 2})
    dependencies = _dependencies(
        {
            "sigma2": "r(X,Y) & r(X,Z) -> Y = Z",
            "sigma4": "p(X,Y) -> r(X,Z) & s(Z,W) & s(X,T)",
            "sigma5": "r(X,Z) & s(Z,W) & s(X,T) -> W = T",
            "sigma6": "p(X,Y) & r(A,X) & s(X,T) -> X = T",
        }
    )
    dependencies_47 = DependencySet(
        [d for d in dependencies if d.name != "sigma6"],
        dependencies.set_valued_predicates,
    )
    query = parse_query("Q(X) :- p(X,Y)")
    query_prime = parse_query("Qp(X) :- p(X,Y), r(A,X)")
    chased_query_47 = parse_query("Qpp(X) :- p(X,Y), r(X,Z), s(Z,W), s(X,T)")
    counterexample_47 = DatabaseInstance.from_dict(
        {
            "p": [(1, 2)],
            "r": [(1, 3)],
            "s": [(1, 4), (1, 5), (3, 4), (3, 5)],
        },
        schema,
    )
    return Example43(
        schema,
        dependencies,
        dependencies_47,
        query,
        query_prime,
        chased_query_47,
        counterexample_47,
    )


@dataclass(frozen=True)
class Example46:
    """Examples 4.6 / 4.8 — the regularized, assignment-fixing but not
    key-based tgd ν1, with the incorrect "modified chase" result Q′ and the
    correct traditional chase result Q″."""

    schema: DatabaseSchema
    dependencies: DependencySet
    query: ConjunctiveQuery
    query_modified_chase: ConjunctiveQuery
    query_traditional_chase: ConjunctiveQuery
    counterexample: DatabaseInstance
    nu1_name: str = "nu1"


def example_4_6() -> Example46:
    """Build Examples 4.6 and 4.8."""
    schema = DatabaseSchema.from_arities(
        {"p": 2, "s": 2, "t": 2}, set_valued=("s", "t")
    )
    dependencies = _dependencies(
        {
            "nu1": "p(X,Y) -> s(X,Z) & t(Z,Y)",
            "nu2": "t(X,Y) & t(Z,Y) -> X = Z",
        },
        set_valued=("s", "t"),
    )
    query = parse_query("Q(X) :- p(X,Y), s(X,Z)")
    query_modified_chase = parse_query("Qp(X) :- p(X,Y), s(X,Z), t(Z,Y)")
    query_traditional_chase = parse_query(
        "Qpp(X) :- p(X,Y), s(X,Z), s(X,W), t(W,Y)"
    )
    counterexample = DatabaseInstance.from_dict(
        {"p": [(1, 2)], "s": [(1, 1), (1, 3)], "t": [(3, 2)]}, schema
    )
    return Example46(
        schema,
        dependencies,
        query,
        query_modified_chase,
        query_traditional_chase,
        counterexample,
    )


@dataclass(frozen=True)
class ExampleE1:
    """Example E.1 — a key-based tgd step is unsound under bag semantics when
    the conclusion relation is not set valued."""

    schema: DatabaseSchema
    dependencies: DependencySet
    query: ConjunctiveQuery
    chased_query: ConjunctiveQuery
    counterexample: DatabaseInstance


def example_e_1() -> ExampleE1:
    """Build Example E.1."""
    schema = DatabaseSchema.from_arities({"p": 2, "r": 2})
    dependencies = _dependencies(
        {
            "sigma1": "p(X,Y) & p(X,Z) -> Y = Z",
            "sigma2": "r(X,Y) -> p(X,Y)",
        }
    )
    query = parse_query("Q(A) :- r(A,B)")
    chased_query = parse_query("Qp(A) :- r(A,B), p(A,B)")
    counterexample = DatabaseInstance.from_dict(
        {"r": [("a", "b")], "p": [("a", "b"), ("a", "b")]}, schema
    )
    return ExampleE1(schema, dependencies, query, chased_query, counterexample)


@dataclass(frozen=True)
class ExampleE2:
    """Example E.2 — a non-key-based tgd step is unsound under bag-set semantics."""

    schema: DatabaseSchema
    dependencies: DependencySet
    query: ConjunctiveQuery
    chased_query: ConjunctiveQuery
    counterexample: DatabaseInstance


def example_e_2() -> ExampleE2:
    """Build Example E.2."""
    schema = DatabaseSchema.from_arities({"p": 2, "r": 2})
    dependencies = _dependencies({"sigma": "r(X,Y) -> p(X,Z)"})
    query = parse_query("Q(A) :- r(A,B)")
    chased_query = parse_query("Qp(A) :- r(A,B), p(A,C)")
    counterexample = DatabaseInstance.from_dict(
        {"r": [("a", "b")], "p": [("a", "c"), ("a", "d")]}, schema
    )
    return ExampleE2(schema, dependencies, query, chased_query, counterexample)


#: Mapping from example identifiers to their constructors (used by the
#: benchmark harness to iterate over the whole example suite).
PAPER_EXAMPLES: Mapping[str, object] = MappingProxyType(
    {
        "4.1": example_4_1,
        "4.2": example_4_2,
        "4.3": example_4_3,
        "4.6": example_4_6,
        "E.1": example_e_1,
        "E.2": example_e_2,
    }
)
