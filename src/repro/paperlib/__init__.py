"""The paper's examples and the synthetic benchmark workloads."""

from .examples import (
    PAPER_EXAMPLES,
    Example41,
    Example42,
    Example43,
    Example46,
    ExampleE1,
    ExampleE2,
    example_4_1,
    example_4_2,
    example_4_3,
    example_4_6,
    example_e_1,
    example_e_2,
)
from .workloads import (
    ORDERS_DDL,
    Workload,
    chain_workload,
    clique_workload,
    h_family,
    orders_workload,
    star_workload,
)

__all__ = [
    "ORDERS_DDL",
    "PAPER_EXAMPLES",
    "Example41",
    "Example42",
    "Example43",
    "Example46",
    "ExampleE1",
    "ExampleE2",
    "Workload",
    "chain_workload",
    "clique_workload",
    "example_4_1",
    "example_4_2",
    "example_4_3",
    "example_4_6",
    "example_e_1",
    "example_e_2",
    "h_family",
    "orders_workload",
    "star_workload",
]
