"""Rendering queries and dependencies back into the rule notation.

The renderers produce text that :mod:`repro.datalog.parser` parses back to an
equal object (round-tripping is property-tested), which makes them suitable
both for display and for serialising workloads.
"""

from __future__ import annotations

from ..core.aggregate import AggregateFunction, AggregateQuery
from ..core.atoms import Atom, EqualityAtom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..dependencies.base import EGD, TGD, Dependency, DependencySet


def render_term(term: Term) -> str:
    """Render a term: variables as their name, constants literally."""
    if isinstance(term, Variable):
        return term.name
    assert isinstance(term, Constant)
    value = term.value
    if isinstance(value, str):
        # Lowercase identifiers parse back as constants without quoting.
        if value.isidentifier() and not (value[0].isupper() or value[0] == "_"):
            return value
        return f"'{value}'"
    return str(value)


def render_atom(atom: Atom) -> str:
    """Render a relational atom."""
    return f"{atom.predicate}({', '.join(render_term(t) for t in atom.terms)})"


def render_equality(equality: EqualityAtom) -> str:
    """Render an equality conjunct."""
    return f"{render_term(equality.left)} = {render_term(equality.right)}"


def render_query(query: ConjunctiveQuery) -> str:
    """Render a conjunctive query in ``Head(...) :- body`` form."""
    head = f"{query.head_predicate}({', '.join(render_term(t) for t in query.head_terms)})"
    body = ", ".join(render_atom(a) for a in query.body)
    return f"{head} :- {body}"


def render_aggregate_query(query: AggregateQuery) -> str:
    """Render an aggregate query, e.g. ``Q(X, sum(Y)) :- r(X, Y)``."""
    parts = [render_term(t) for t in query.grouping_terms]
    if query.aggregate.function is AggregateFunction.COUNT_STAR:
        parts.append("count(*)")
    else:
        parts.append(
            f"{query.aggregate.function.value}({render_term(query.aggregate.argument)})"
        )
    head = f"{query.head_predicate}({', '.join(parts)})"
    body = ", ".join(render_atom(a) for a in query.body)
    return f"{head} :- {body}"


def render_dependency(dependency: Dependency) -> str:
    """Render a tgd or egd in ``premise -> conclusion`` form."""
    premise = " & ".join(render_atom(a) for a in dependency.premise)
    if isinstance(dependency, TGD):
        conclusion = " & ".join(render_atom(a) for a in dependency.conclusion)
    else:
        assert isinstance(dependency, EGD)
        conclusion = " & ".join(render_equality(eq) for eq in dependency.equalities)
    return f"{premise} -> {conclusion}"


def render_dependency_set(dependencies: DependencySet) -> str:
    """Render a dependency set, one dependency per line, with a trailing
    comment recording the set-valued relations."""
    lines = [render_dependency(d) for d in dependencies]
    if dependencies.set_valued_predicates:
        names = ", ".join(sorted(dependencies.set_valued_predicates))
        lines.append(f"# set-valued relations: {names}")
    return "\n".join(lines)
