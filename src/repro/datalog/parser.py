"""Parser for the paper's rule notation.

Queries, dependencies, and aggregate queries in the paper are written in a
datalog-like notation; this parser accepts that notation so tests, examples,
and benchmarks can state inputs exactly as the paper does::

    Q4(X) :- p(X,Y)
    Q(X, sum(Y)) :- r(X,Y), s(Y,Z)
    p(X,Y) -> s(X,Z) & t(X,V,W)          # tgd  (existentials are implicit)
    s(X,Y) & s(X,Z) -> Y = Z             # egd
    p(X,Y) -> t(X,Y,W) & X = Y           # mixed conclusions are normalised

Conventions:

* identifiers starting with an uppercase letter or underscore are variables;
  everything else (lowercase identifiers, numbers, quoted strings) is a
  constant;
* ``:-`` separates a query head from its body; ``->`` (or ``=>``)
  separates a dependency premise from its conclusion;
* conjunctions may be written with ``,``, ``&``, ``^`` or ``∧``;
* an optional ``exists V1, V2:`` prefix on a tgd conclusion is accepted and
  ignored (existential variables are inferred).
"""

from __future__ import annotations

import re
from typing import Iterator

from ..core.aggregate import AggregateFunction, AggregateQuery, AggregateTerm
from ..core.atoms import Atom, EqualityAtom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from ..dependencies.base import Dependency, DependencySet, normalise_embedded_dependency
from ..exceptions import ParseError

_TOKEN_REGEX = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<arrow>:-|->|=>|⟶|→)
  | (?P<and>&&|&|\^|∧)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<eq>=)
  | (?P<star>\*)
  | (?P<string>'[^']*'|"[^"]*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_AGGREGATE_NAMES = {"sum", "count", "max", "min"}


class _Token:
    __slots__ = ("kind", "value", "position")

    def __init__(self, kind: str, value: str, position: int):
        self.kind = kind
        self.value = value
        self.position = position

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    position = 0
    while position < len(text):
        match = _TOKEN_REGEX.match(text, position)
        if match is None:
            raise ParseError(
                f"unexpected character {text[position]!r} at position {position}",
                position,
            )
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), position))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # ------------------------------------------------------------------ #
    def peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def advance(self) -> _Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self.text!r}")
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.advance()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind} but found {token.value!r} at position "
                f"{token.position} in {self.text!r}",
                token.position,
            )
        return token

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)

    # ------------------------------------------------------------------ #
    def parse_term(self):
        token = self.advance()
        if token.kind == "name":
            if token.value[0].isupper() or token.value[0] == "_":
                return Variable(token.value)
            return Constant(token.value)
        if token.kind == "number":
            text = token.value
            return Constant(float(text) if "." in text else int(text))
        if token.kind == "string":
            return Constant(token.value[1:-1])
        raise ParseError(
            f"expected a term but found {token.value!r} at position {token.position}",
            token.position,
        )

    def parse_atom(self) -> Atom:
        name_token = self.expect("name")
        self.expect("lparen")
        terms = [self.parse_term()]
        while self.peek() is not None and self.peek().kind == "comma":
            self.advance()
            terms.append(self.parse_term())
        self.expect("rparen")
        return Atom(name_token.value, terms)

    def parse_conjunct(self) -> Atom | EqualityAtom:
        """One conjunct: either an atom or an equality ``X = Y``."""
        checkpoint = self.index
        token = self.advance()
        nxt = self.peek()
        if token.kind in ("name", "number", "string") and nxt is not None and nxt.kind == "eq":
            self.index = checkpoint
            left = self.parse_term()
            self.expect("eq")
            right = self.parse_term()
            return EqualityAtom(left, right)
        self.index = checkpoint
        return self.parse_atom()

    def parse_conjunction(self) -> list[Atom | EqualityAtom]:
        conjuncts = [self.parse_conjunct()]
        while True:
            token = self.peek()
            if token is not None and token.kind in ("comma", "and"):
                self.advance()
                conjuncts.append(self.parse_conjunct())
            else:
                break
        return conjuncts

    def skip_exists_prefix(self) -> None:
        token = self.peek()
        if token is not None and token.kind == "name" and token.value.lower() == "exists":
            self.advance()
            # Consume the variable list and the optional ':' -- but ':' is not
            # a token, so the prefix is simply "exists V1, V2" followed by atoms.
            while True:
                nxt = self.peek()
                if nxt is None:
                    raise ParseError("dangling 'exists' prefix")
                if nxt.kind == "name" and self.index + 1 < len(self.tokens) and \
                        self.tokens[self.index + 1].kind == "lparen":
                    # Next token starts an atom: the prefix is over.
                    return
                if nxt.kind in ("name", "comma"):
                    self.advance()
                    continue
                return


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query written as ``Head(X,...) :- atom, atom, ...``."""
    parser = _Parser(text)
    head = parser.parse_atom()
    parser.expect("arrow")
    body = parser.parse_conjunction()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError(
            f"unexpected trailing input {token.value!r} in {text!r}", token.position
        )
    atoms = []
    for conjunct in body:
        if isinstance(conjunct, EqualityAtom):
            raise ParseError("query bodies must not contain equalities; "
                             "use repeated variables instead")
        atoms.append(conjunct)
    return ConjunctiveQuery(head.predicate, head.terms, atoms)


def parse_aggregate_query(text: str) -> AggregateQuery:
    """Parse an aggregate query such as ``Q(X, sum(Y)) :- r(X,Y)``.

    The aggregate term must be the last head argument; ``count(*)`` is
    written literally.
    """
    parser = _Parser(text)
    name_token = parser.expect("name")
    parser.expect("lparen")
    grouping_terms = []
    aggregate: AggregateTerm | None = None
    while True:
        token = parser.peek()
        if token is None:
            raise ParseError(f"unterminated head in {text!r}")
        if token.kind == "name" and token.value.lower() in _AGGREGATE_NAMES and \
                parser.index + 1 < len(parser.tokens) and \
                parser.tokens[parser.index + 1].kind == "lparen":
            function_token = parser.advance()
            parser.expect("lparen")
            nxt = parser.peek()
            if nxt is not None and nxt.kind == "star":
                parser.advance()
                aggregate = AggregateTerm(AggregateFunction.COUNT_STAR)
            else:
                argument = parser.parse_term()
                aggregate = AggregateTerm(
                    AggregateFunction.from_name(function_token.value), argument
                )
            parser.expect("rparen")
        else:
            grouping_terms.append(parser.parse_term())
        nxt = parser.peek()
        if nxt is not None and nxt.kind == "comma":
            parser.advance()
            continue
        parser.expect("rparen")
        break
    if aggregate is None:
        raise ParseError(f"no aggregate term found in head of {text!r}")
    parser.expect("arrow")
    body = parser.parse_conjunction()
    atoms = [conjunct for conjunct in body if isinstance(conjunct, Atom)]
    if len(atoms) != len(body):
        raise ParseError("aggregate query bodies must not contain equalities")
    return AggregateQuery(name_token.value, grouping_terms, aggregate, atoms)


def parse_atoms(text: str) -> list[Atom]:
    """Parse a comma/``&``-separated conjunction of relational atoms.

    The textual form of an instance delta (``repro client apply-delta``, the
    ``--add-atoms`` CLI flag): plain atoms, no equalities, no rule arrow.
    """
    parser = _Parser(text)
    conjuncts = parser.parse_conjunction()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError(
            f"unexpected trailing input {token.value!r} in {text!r}", token.position
        )
    atoms = []
    for conjunct in conjuncts:
        if isinstance(conjunct, EqualityAtom):
            raise ParseError(f"expected relational atoms, found equality in {text!r}")
        atoms.append(conjunct)
    return atoms


def parse_dependency(text: str, name: str = "") -> list[Dependency]:
    """Parse an embedded dependency ``premise -> conclusion``.

    The conclusion may mix relational atoms and equalities; the result is
    normalised into (at most) one tgd and one egd.
    """
    parser = _Parser(text)
    premise = parser.parse_conjunction()
    parser.expect("arrow")
    parser.skip_exists_prefix()
    conclusion = parser.parse_conjunction()
    if not parser.at_end():
        token = parser.peek()
        raise ParseError(
            f"unexpected trailing input {token.value!r} in {text!r}", token.position
        )
    premise_atoms = []
    for conjunct in premise:
        if isinstance(conjunct, EqualityAtom):
            raise ParseError("dependency premises must not contain equalities")
        premise_atoms.append(conjunct)
    return normalise_embedded_dependency(premise_atoms, conclusion, name=name)


def parse_tgd(text: str, name: str = ""):
    """Parse a dependency expected to be a single tgd."""
    dependencies = parse_dependency(text, name)
    if len(dependencies) != 1:
        raise ParseError(f"{text!r} is not a single tgd")
    return dependencies[0]


def parse_egd(text: str, name: str = ""):
    """Parse a dependency expected to be a single egd."""
    dependencies = parse_dependency(text, name)
    if len(dependencies) != 1:
        raise ParseError(f"{text!r} is not a single egd")
    return dependencies[0]


def parse_dependencies(
    lines: Iterator[str] | list[str] | str,
    set_valued: Iterator[str] | list[str] = (),
) -> DependencySet:
    """Parse several dependencies (one per non-empty, non-comment line).

    *lines* may be a multi-line string or an iterable of lines; lines
    starting with ``#`` or ``%`` are ignored.  ``set_valued`` lists the
    relations required to be set valued in every instance.
    """
    if isinstance(lines, str):
        lines = lines.splitlines()
    dependencies: list[Dependency] = []
    for index, line in enumerate(lines):
        stripped = line.strip()
        if not stripped or stripped.startswith(("#", "%")):
            continue
        dependencies.extend(parse_dependency(stripped, name=f"sigma_{index + 1}"))
    return DependencySet(dependencies, set_valued_predicates=list(set_valued))
