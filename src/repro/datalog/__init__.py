"""Datalog-style (rule notation) parsing and rendering of queries and dependencies."""

from .parser import (
    parse_aggregate_query,
    parse_atoms,
    parse_dependencies,
    parse_dependency,
    parse_egd,
    parse_query,
    parse_tgd,
)
from .render import (
    render_aggregate_query,
    render_atom,
    render_dependency,
    render_dependency_set,
    render_query,
    render_term,
)

__all__ = [
    "parse_aggregate_query",
    "parse_atoms",
    "parse_dependencies",
    "parse_dependency",
    "parse_egd",
    "parse_query",
    "parse_tgd",
    "render_aggregate_query",
    "render_atom",
    "render_dependency",
    "render_dependency_set",
    "render_query",
    "render_term",
]
