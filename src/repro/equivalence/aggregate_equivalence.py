"""Equivalence of aggregate queries, with and without dependencies.

Theorem 2.3 (dependency free): equivalence of sum- and count-queries reduces
to bag-set equivalence of their cores; equivalence of max- and min-queries
reduces to set equivalence of their cores.

Theorem 6.3 (with embedded dependencies): the same reductions hold with the
dependency-aware tests of Theorems 2.2 / 6.2 applied to the cores, provided
the set chase of the cores terminates.

Only *compatible* aggregate queries (same grouping terms, same aggregate
term — Definition 2.1) can be equivalent; incompatible inputs yield False.
"""

from __future__ import annotations

from typing import Sequence

from ..core.aggregate import AggregateQuery
from ..core.bag_equivalence import is_bag_set_equivalent
from ..core.containment import is_set_equivalent
from ..dependencies.base import Dependency, DependencySet
from ..chase.set_chase import DEFAULT_MAX_STEPS
from ..semantics import Semantics
from .under_dependencies import equivalent_under_dependencies


def equivalent_aggregate_queries(q1: AggregateQuery, q2: AggregateQuery) -> bool:
    """Theorem 2.3: dependency-free equivalence of compatible aggregate queries."""
    if not q1.is_compatible_with(q2):
        return False
    core1, core2 = q1.core(), q2.core()
    if q1.aggregate.function.is_duplicate_sensitive:
        return is_bag_set_equivalent(core1, core2)
    return is_set_equivalent(core1, core2)


def equivalent_aggregate_queries_under_dependencies(
    q1: AggregateQuery,
    q2: AggregateQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Theorem 6.3: equivalence of compatible aggregate queries under Σ.

    sum / count queries reduce to the bag-set test of Theorem 6.2 on their
    cores; max / min queries reduce to the set test of Theorem 2.2 on their
    cores.
    """
    if not q1.is_compatible_with(q2):
        return False
    core1, core2 = q1.core(), q2.core()
    semantics = (
        Semantics.BAG_SET
        if q1.aggregate.function.is_duplicate_sensitive
        else Semantics.SET
    )
    return equivalent_under_dependencies(core1, core2, dependencies, semantics, max_steps)
