"""One-call equivalence façade with explainable verdicts.

``decide_equivalence`` wraps the Σ-aware equivalence tests of Theorems 2.2,
6.1, and 6.2 and returns an :class:`EquivalenceVerdict` carrying not just the
boolean answer but also the chased queries it was decided on, so examples,
benchmarks, and users can see *why* the verdict holds.  ``decide_all``
evaluates all three semantics at once, which is how the Proposition 6.1
implication chain (bag ⇒ bag-set ⇒ set) is exercised in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.bag_equivalence import (
    is_bag_equivalent_with_set_enforced,
    is_bag_set_equivalent,
)
from ..core.containment import is_set_equivalent
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS
from ..chase.sound_chase import sound_chase


@dataclass(frozen=True)
class EquivalenceVerdict:
    """The outcome of a Σ-aware equivalence test, with its evidence."""

    equivalent: bool
    semantics: Semantics
    chased_left: ConjunctiveQuery
    chased_right: ConjunctiveQuery

    def __bool__(self) -> bool:
        return self.equivalent

    def __str__(self) -> str:
        relation = "≡" if self.equivalent else "≢"
        return (
            f"[{self.semantics}] {self.chased_left.head_predicate} {relation} "
            f"{self.chased_right.head_predicate}  "
            f"(chased: {self.chased_left} | {self.chased_right})"
        )


def decide_equivalence(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency] = (),
    semantics: Semantics | str = Semantics.BAG_SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> EquivalenceVerdict:
    """Decide ``Q1 ≡Σ,X Q2`` and return the verdict with its chased evidence."""
    semantics = Semantics.from_name(semantics)
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    chased1 = sound_chase(q1, dependencies, semantics, max_steps).query
    chased2 = sound_chase(q2, dependencies, semantics, max_steps).query
    if semantics is Semantics.SET:
        equivalent = is_set_equivalent(chased1, chased2)
    elif semantics is Semantics.BAG:
        equivalent = is_bag_equivalent_with_set_enforced(
            chased1, chased2, dependencies.set_valued_predicates
        )
    else:
        equivalent = is_bag_set_equivalent(chased1, chased2)
    return EquivalenceVerdict(equivalent, semantics, chased1, chased2)


def decide_all(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency] = (),
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Mapping[Semantics, EquivalenceVerdict]:
    """Verdicts under all three semantics.

    By Proposition 6.1 the verdicts always satisfy bag ⇒ bag-set ⇒ set.
    """
    return {
        semantics: decide_equivalence(q1, q2, dependencies, semantics, max_steps)
        for semantics in (Semantics.BAG, Semantics.BAG_SET, Semantics.SET)
    }
