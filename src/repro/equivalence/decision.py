"""One-call equivalence façade with explainable verdicts.

``decide_equivalence`` wraps the Σ-aware equivalence tests of Theorems 2.2,
6.1, and 6.2 and returns an :class:`EquivalenceVerdict` carrying not just the
boolean answer but also the chased queries it was decided on, so examples,
benchmarks, and users can see *why* the verdict holds.  ``decide_all``
evaluates all three semantics at once and asserts the Proposition 6.1
implication chain (bag ⇒ bag-set ⇒ set) on its results.

Both are thin delegating shims over the :class:`repro.session.Session`
engine: ``decide_all`` in particular routes through a Session's chase cache,
so each input query is chased at most once per semantics per call.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS


@dataclass(frozen=True)
class EquivalenceVerdict:
    """The outcome of a Σ-aware equivalence test, with its evidence.

    ``semantics`` is the :class:`~repro.semantics.Semantics` member for the
    paper's three semantics; verdicts produced by a third-party strategy
    carry that strategy's name string instead.
    """

    equivalent: bool
    semantics: Semantics
    chased_left: ConjunctiveQuery
    chased_right: ConjunctiveQuery

    def __bool__(self) -> bool:
        return self.equivalent

    def __str__(self) -> str:
        relation = "≡" if self.equivalent else "≢"
        return (
            f"[{self.semantics}] {self.chased_left.head_predicate} {relation} "
            f"{self.chased_right.head_predicate}  "
            f"(chased: {self.chased_left} | {self.chased_right})"
        )


def decide_equivalence(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency] = (),
    semantics: Semantics | str = Semantics.BAG_SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> EquivalenceVerdict:
    """Decide ``Q1 ≡Σ,X Q2`` and return the verdict with its chased evidence."""
    # Imported lazily: the session engine imports EquivalenceVerdict from
    # this module, so a top-level import would be circular.
    from ..session.engine import Session

    session = Session(dependencies=dependencies, max_steps=max_steps)
    return session.decide(q1, q2, semantics)


def decide_all(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency] = (),
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Mapping[Semantics, EquivalenceVerdict]:
    """Verdicts under all three semantics, chased through a shared Session cache.

    Each input query is chased at most once per semantics (the three
    per-semantics chases genuinely differ, but no chase is repeated within
    the call), and by Proposition 6.1 the verdicts always satisfy
    bag ⇒ bag-set ⇒ set — which is asserted before returning.
    """
    from ..session.engine import Session

    session = Session(dependencies=dependencies, max_steps=max_steps)
    return session.decide_all(q1, q2)
