"""Equivalence tests for CQ queries in presence of embedded dependencies.

These are the paper's headline decision procedures.  All three reduce the
Σ-aware equivalence question to a dependency-free test on terminal chase
results, and all three are sound and complete whenever the *set* chase of
the inputs terminates:

* **set semantics** (Theorem 2.2):   Q ≡Σ,S Q′  iff  (Q)Σ,S ≡S (Q′)Σ,S;
* **bag semantics** (Theorem 6.1):   Q ≡Σ,B Q′  iff  (Q)Σ,B ≡B (Q′)Σ,B
  in the absence of all dependencies other than the set-enforcing ones —
  i.e. the Theorem 4.2 test (isomorphism after dropping duplicate subgoals
  over set-valued relations);
* **bag-set semantics** (Theorem 6.2): Q ≡Σ,BS Q′ iff (Q)Σ,BS ≡BS (Q′)Σ,BS
  (isomorphism of canonical representations).

Σ-containment under set semantics (used by C&B's backchase) is provided as
well, via the same chase-then-dependency-free-test route.

The three per-semantics functions are deprecated shims over the unified
:class:`repro.session.Session` engine (``session.decide(q1, q2,
semantics=...)``); the generic :func:`equivalent_under_dependencies`
dispatcher remains the supported functional entry point.
"""

from __future__ import annotations

import warnings
from typing import Sequence

from ..core.containment import is_set_contained
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS
from ..chase.sound_chase import sound_chase


def _deprecation_message(deprecated_name: str, semantics: Semantics) -> str:
    return (
        f"{deprecated_name}() is deprecated; use "
        f"Session(dependencies=...).decide(q1, q2, semantics={semantics.value!r})"
    )


def _session_equivalent(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics,
    max_steps: int,
) -> bool:
    """Shared body of the deprecated per-semantics equivalence shims.

    The :class:`DeprecationWarning` is emitted by each shim itself with
    ``stacklevel=2`` (not from here), so the warning is attributed to the
    shim's *caller* — the code that needs migrating — rather than to this
    module.
    """
    from ..session.engine import Session

    session = Session(dependencies=dependencies, max_steps=max_steps)
    return session.decide(q1, q2, semantics).equivalent


def equivalent_under_dependencies_set(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Theorem 2.2: decide ``Q1 ≡Σ,S Q2``.

    Deprecated shim: delegates to ``Session.decide(semantics="set")``.
    """
    warnings.warn(
        _deprecation_message("equivalent_under_dependencies_set", Semantics.SET),
        DeprecationWarning,
        stacklevel=2,
    )
    return _session_equivalent(q1, q2, dependencies, Semantics.SET, max_steps)


def contained_under_dependencies_set(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Decide ``Q1 ⊑Σ,S Q2`` by chasing both sides and testing set containment."""
    dependencies = DependencySet.coerce(dependencies)
    chased1 = sound_chase(q1, dependencies, Semantics.SET, max_steps).query
    chased2 = sound_chase(q2, dependencies, Semantics.SET, max_steps).query
    return is_set_contained(chased1, chased2)


def equivalent_under_dependencies_bag(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Theorem 6.1: decide ``Q1 ≡Σ,B Q2``.

    Both queries are chased with the *sound bag chase*; the terminal results
    are compared with the extended bag-equivalence test of Theorem 4.2
    (isomorphism after dropping duplicate subgoals over set-valued
    relations).

    Deprecated shim: delegates to ``Session.decide(semantics="bag")``.
    """
    warnings.warn(
        _deprecation_message("equivalent_under_dependencies_bag", Semantics.BAG),
        DeprecationWarning,
        stacklevel=2,
    )
    return _session_equivalent(q1, q2, dependencies, Semantics.BAG, max_steps)


def equivalent_under_dependencies_bag_set(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Theorem 6.2: decide ``Q1 ≡Σ,BS Q2``.

    Deprecated shim: delegates to ``Session.decide(semantics="bag-set")``.
    """
    warnings.warn(
        _deprecation_message("equivalent_under_dependencies_bag_set", Semantics.BAG_SET),
        DeprecationWarning,
        stacklevel=2,
    )
    return _session_equivalent(q1, q2, dependencies, Semantics.BAG_SET, max_steps)


def equivalent_under_dependencies(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG_SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Decide ``Q1 ≡Σ,X Q2`` for the chosen semantics X."""
    from ..session.engine import Session

    session = Session(dependencies=dependencies, max_steps=max_steps)
    return session.decide(q1, q2, semantics).equivalent
