"""Σ-aware equivalence tests for CQ and aggregate queries (Theorems 2.2, 6.1–6.3)."""

from .aggregate_equivalence import (
    equivalent_aggregate_queries,
    equivalent_aggregate_queries_under_dependencies,
)
from .decision import EquivalenceVerdict, decide_all, decide_equivalence
from .under_dependencies import (
    contained_under_dependencies_set,
    equivalent_under_dependencies,
    equivalent_under_dependencies_bag,
    equivalent_under_dependencies_bag_set,
    equivalent_under_dependencies_set,
)

__all__ = [
    "EquivalenceVerdict",
    "contained_under_dependencies_set",
    "decide_all",
    "decide_equivalence",
    "equivalent_aggregate_queries",
    "equivalent_aggregate_queries_under_dependencies",
    "equivalent_under_dependencies",
    "equivalent_under_dependencies_bag",
    "equivalent_under_dependencies_bag_set",
    "equivalent_under_dependencies_set",
]
