"""Reformulation of aggregate queries: Max-Min-C&B and Sum-Count-C&B (Section 6.3).

Both algorithms reformulate the *core* of the aggregate query and reattach
the original head (grouping terms + aggregate term) to every reformulated
core:

* **Max-Min-C&B** — for ``max`` / ``min`` queries; the core is reformulated
  with the set-semantics C&B (Theorem 6.3(1) reduces equivalence of max/min
  queries to set equivalence of cores);
* **Sum-Count-C&B** — for ``sum`` / ``count`` queries; the core is
  reformulated with Bag-Set-C&B (Theorem 6.3(2)).

Both are sound and complete whenever the set chase of the core terminates
(Theorem K.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

from ..core.aggregate import AggregateQuery
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS
from .cb import ReformulationResult, chase_and_backchase


@dataclass
class AggregateReformulationResult:
    """Output of Max-Min-C&B / Sum-Count-C&B."""

    query: AggregateQuery
    core_result: ReformulationResult
    reformulations: list[AggregateQuery] = field(default_factory=list)
    minimal_reformulations: list[AggregateQuery] = field(default_factory=list)

    def __iter__(self) -> Iterator[AggregateQuery]:
        return iter(self.minimal_reformulations)

    def __len__(self) -> int:
        return len(self.minimal_reformulations)

    def __str__(self) -> str:
        lines = [
            f"aggregate reformulation of {self.query}",
            f"  core handled under {self.core_result.semantics}",
            f"  {len(self.minimal_reformulations)} Σ-minimal reformulations:",
        ]
        lines.extend(f"    {query}" for query in self.minimal_reformulations)
        return "\n".join(lines)


def _reattach_heads(
    query: AggregateQuery, cores: Sequence[ConjunctiveQuery]
) -> list[AggregateQuery]:
    return [query.with_core(core) for core in cores]


def reformulate_aggregate_query(
    query: AggregateQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs: Any,
) -> AggregateReformulationResult:
    """Dispatch to Max-Min-C&B or Sum-Count-C&B based on the aggregate function."""
    if query.aggregate.function.is_duplicate_sensitive:
        return sum_count_c_and_b(query, dependencies, max_steps, **kwargs)
    return max_min_c_and_b(query, dependencies, max_steps, **kwargs)


def max_min_c_and_b(
    query: AggregateQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs: Any,
) -> AggregateReformulationResult:
    """Max-Min-C&B: reformulate a max/min query via set-semantics C&B on its core."""
    core_result = chase_and_backchase(
        query.core(), dependencies, Semantics.SET, max_steps, **kwargs
    )
    return AggregateReformulationResult(
        query=query,
        core_result=core_result,
        reformulations=_reattach_heads(query, core_result.reformulations),
        minimal_reformulations=_reattach_heads(
            query, core_result.minimal_reformulations
        ),
    )


def sum_count_c_and_b(
    query: AggregateQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs: Any,
) -> AggregateReformulationResult:
    """Sum-Count-C&B: reformulate a sum/count query via Bag-Set-C&B on its core.

    The core's result carries whatever token the engine's "bag-set" strategy
    stamps — the built-in enum member, or a custom name when a third-party
    strategy has been registered over that semantics.
    """
    core_result = chase_and_backchase(
        query.core(), dependencies, Semantics.BAG_SET, max_steps, **kwargs
    )
    return AggregateReformulationResult(
        query=query,
        core_result=core_result,
        reformulations=_reattach_heads(query, core_result.reformulations),
        minimal_reformulations=_reattach_heads(
            query, core_result.minimal_reformulations
        ),
    )
