"""Σ-minimality of conjunctive queries (Definition 3.1 of the paper).

A CQ query Q is Σ-minimal when there are no queries S1 (obtained from Q by
replacing zero or more variables with other variables of Q) and S2 (obtained
from S1 by dropping at least one atom) that remain equivalent to Q under Σ.
For aggregate queries, Σ-minimality is Σ-minimality of the core.

The variable-replacement space of Definition 3.1 is all mappings from Q's
variables to Q's variables, which is exponential; following standard C&B
practice, :func:`is_sigma_minimal` searches the substitutions induced by the
query's own head-preserving endomorphisms (plus the identity).  Every
substitution that can merge atoms of the query while preserving equivalence
is of that form, so the check is exact for the reformulation workloads the
paper targets; the docstring records the restriction explicitly.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ..core.aggregate import AggregateQuery
from ..core.minimization import core_endomorphisms
from ..core.query import ConjunctiveQuery
from ..core.terms import Term, Variable
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS
from ..equivalence.under_dependencies import equivalent_under_dependencies


def _candidate_substitutions(query: ConjunctiveQuery) -> list[dict[Term, Term]]:
    """Identity plus the query's head-preserving variable→variable endomorphisms."""
    substitutions: list[dict[Term, Term]] = [{}]
    for endomorphism in core_endomorphisms(query):
        mapping: dict[Term, Term] = {
            source: target
            for source, target in endomorphism.items()
            if isinstance(source, Variable) and isinstance(target, Variable)
            and source != target
        }
        if mapping and mapping not in substitutions:
            substitutions.append(mapping)
    return substitutions


def is_sigma_minimal(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
    equivalent_fn: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool] | None = None,
) -> bool:
    """Definition 3.1: is *query* Σ-minimal under the given semantics?

    The search applies each candidate variable substitution (identity and the
    query's head-preserving endomorphisms), then tries to drop each atom of
    the substituted query and asks whether the shortened query is still
    Σ-equivalent to the original.  ``equivalent_fn(shortened, query) -> bool``
    overrides the equivalence probe — the Session engine injects its
    cache-aware decision procedure here.
    """
    from ..core.minimization import drop_atom_if_safe

    if equivalent_fn is None:
        equivalent_fn = lambda shortened, original: equivalent_under_dependencies(  # noqa: E731
            shortened, original, dependencies, semantics, max_steps
        )

    for substitution in _candidate_substitutions(query):
        substituted = query.substitute(substitution) if substitution else query
        if len(substituted.body) <= 1:
            continue
        for index in range(len(substituted.body)):
            shortened = drop_atom_if_safe(substituted, index)
            if shortened is None:
                continue
            if equivalent_fn(shortened, query):
                return False
    return True


def sigma_minimize(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> ConjunctiveQuery:
    """Greedily minimize *query* while preserving Σ-equivalence.

    Repeatedly drops any body subgoal whose removal keeps the query
    Σ-equivalent to the original under the chosen semantics (the
    subgoal-removal half of Definition 3.1), until no single subgoal can be
    dropped.  This is the "query minimization" use of the equivalence tests
    that the paper's introduction motivates: under set semantics it
    generalises the classical Chandra–Merlin minimization with dependency
    awareness; under bag / bag-set semantics it only drops subgoals whose
    removal provably preserves answer multiplicities.
    """
    semantics = Semantics.from_name(semantics)
    from ..core.minimization import drop_atom_if_safe

    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.body)):
            if len(current.body) == 1:
                break
            candidate = drop_atom_if_safe(current, index)
            if candidate is None:
                continue
            if equivalent_under_dependencies(
                candidate, query, dependencies, semantics, max_steps
            ):
                current = candidate
                changed = True
                break
    return current


def is_sigma_minimal_aggregate(
    query: AggregateQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """Σ-minimality of an aggregate query = Σ-minimality of its core.

    The core of a max/min query is judged under set semantics, the core of a
    sum/count query under bag-set semantics, mirroring Theorem 6.3.
    """
    semantics = (
        Semantics.BAG_SET
        if query.aggregate.function.is_duplicate_sensitive
        else Semantics.SET
    )
    return is_sigma_minimal(query.core(), dependencies, semantics, max_steps)
