"""Chase & Backchase (C&B) and its bag / bag-set variants (Section 6.3, Appendix A).

The generic driver :func:`chase_and_backchase` implements the two-phase
algorithm:

1. **chase phase** — chase the input query under Σ (with the chase that is
   sound for the chosen semantics) to obtain the *universal plan*;
2. **backchase phase** — enumerate the safe subqueries of the universal
   plan, chase each candidate, and keep the candidates whose chase result is
   equivalent to the universal plan under the dependency-free test matching
   the semantics (Theorem 2.2 / 6.1 / 6.2).

The result records the universal plan, every equivalent reformulation found,
and the Σ-minimal ones among them.  ``c_and_b``, ``bag_c_and_b``, and
``bag_set_c_and_b`` are the paper's named algorithms (Theorem A.1, 6.4, K.1);
all are sound and complete whenever the set chase of the input terminates.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable, Iterator, Sequence, cast

from ..core.homomorphism import are_isomorphic
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS, ChaseResult
from ..chase.sound_chase import sound_chase
from .candidates import iter_subqueries
from .minimality import is_sigma_minimal

if TYPE_CHECKING:
    from ..session.engine import Session


@dataclass
class ReformulationResult:
    """Output of a C&B run."""

    query: ConjunctiveQuery
    #: The :class:`~repro.semantics.Semantics` member for the paper's three
    #: semantics; results produced through a third-party strategy carry that
    #: strategy's token (its name string) instead.
    semantics: Semantics | str
    universal_plan: ConjunctiveQuery
    reformulations: list[ConjunctiveQuery] = field(default_factory=list)
    minimal_reformulations: list[ConjunctiveQuery] = field(default_factory=list)
    candidates_examined: int = 0
    chase_result: ChaseResult | None = None

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.minimal_reformulations)

    def __len__(self) -> int:
        return len(self.minimal_reformulations)

    def contains_isomorphic(self, query: ConjunctiveQuery, minimal_only: bool = False) -> bool:
        """Is some (minimal) reformulation isomorphic to *query*?"""
        pool = self.minimal_reformulations if minimal_only else self.reformulations
        return any(are_isomorphic(candidate, query) for candidate in pool)

    def __str__(self) -> str:
        lines = [
            f"C&B under {self.semantics} for {self.query}",
            f"  universal plan: {self.universal_plan}",
            f"  {len(self.reformulations)} equivalent reformulations, "
            f"{len(self.minimal_reformulations)} Σ-minimal",
        ]
        lines.extend(f"    {query}" for query in self.minimal_reformulations)
        return "\n".join(lines)


def chase_and_backchase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: object = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_candidate_size: int | None = None,
    check_sigma_minimality: bool = True,
    engine: "Session | None" = None,
) -> ReformulationResult:
    """Run C&B (or its bag / bag-set variant) on *query* under *dependencies*.

    ``max_candidate_size`` caps the body size of backchase candidates (useful
    on large universal plans); ``check_sigma_minimality`` controls whether
    the Definition 3.1 Σ-minimality filter is applied to produce
    ``minimal_reformulations`` (the full list of equivalent reformulations is
    always reported).  ``engine`` is an optional
    :class:`~repro.session.Session`: semantics dispatch goes through its
    registry and every chase — the universal plan, each backchase candidate,
    and the Σ-minimality probes — is served from its chase cache.  Without
    one, an ephemeral Session over *dependencies* is built, so direct
    functional callers get the same candidate-chase caching within the call.
    """
    sigma = DependencySet.coerce(dependencies)

    if engine is None:
        from ..session.engine import Session

        engine = Session(dependencies=sigma)
        sigma = engine.dependencies
    elif engine.dependencies is not sigma:
        # The engine chases (and probes minimality) under its own Σ while the
        # dependency-free test below uses *dependencies*; mixing two Σs would
        # silently produce reformulations equivalent under neither.  Session
        # callers pass engine.dependencies itself, so the identity check
        # skips even the (memoized) fingerprint comparison on that hot path.
        from ..exceptions import ReformulationError

        if engine.dependencies.fingerprint != sigma.fingerprint:
            raise ReformulationError(
                "chase_and_backchase was given an engine whose dependency "
                "set differs from the dependencies argument; use "
                "Session.reformulate, or pass engine.dependencies"
            )
    session = engine

    strategy = session.strategy_for(semantics)
    # Built-in strategies stamp the Semantics member, third-party ones their
    # name string (SemanticsStrategy.token's contract); the cast records that.
    semantics_label = cast("Semantics | str", strategy.token)
    chase: Callable[[ConjunctiveQuery], ChaseResult] = lambda q: session.chase(q, strategy.name, max_steps)  # noqa: E731
    equivalence_test: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool] = lambda q1, q2: strategy.equivalent_chased(q1, q2, sigma)  # noqa: E731
    minimality_equivalent: Callable[[ConjunctiveQuery, ConjunctiveQuery], bool] = lambda shortened, original: bool(  # noqa: E731
        session.decide(shortened, original, strategy.name, max_steps)
    )

    chase_result = chase(query)
    universal_plan = chase_result.query

    reformulations: list[ConjunctiveQuery] = []
    examined = 0
    for candidate in iter_subqueries(
        universal_plan, max_size=max_candidate_size
    ):
        examined += 1
        chased_candidate = chase(candidate).query
        if not equivalence_test(chased_candidate, universal_plan):
            continue
        if any(are_isomorphic(candidate, existing) for existing in reformulations):
            continue
        reformulations.append(candidate)

    if check_sigma_minimality:
        minimal = [
            candidate
            for candidate in reformulations
            if is_sigma_minimal(
                candidate,
                sigma,
                semantics_label,
                max_steps,
                equivalent_fn=minimality_equivalent,
            )
        ]
    else:
        # Fall back to subset-minimality: keep candidates none of whose
        # accepted strict sub-bodies is also accepted.
        minimal = []
        for candidate in reformulations:
            has_smaller = any(
                other is not candidate
                and len(other.body) < len(candidate.body)
                and set(other.body) <= set(candidate.body)
                for other in reformulations
            )
            if not has_smaller:
                minimal.append(candidate)

    return ReformulationResult(
        query=query,
        semantics=semantics_label,
        universal_plan=universal_plan,
        reformulations=reformulations,
        minimal_reformulations=minimal,
        candidates_examined=examined,
        chase_result=chase_result,
    )


def _cb_deprecation_message(deprecated_name: str, semantics: Semantics) -> str:
    return (
        f"{deprecated_name}() is deprecated; use "
        f"Session(dependencies=...).reformulate(query, semantics={semantics.value!r})"
    )


def _session_reformulate(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics,
    max_steps: int,
    **kwargs: Any,
) -> ReformulationResult:
    """Shared body of the deprecated per-semantics C&B wrappers.

    The :class:`DeprecationWarning` is emitted by each wrapper itself with
    ``stacklevel=2`` (not from here), so it points at the wrapper's caller.
    """
    from ..session.engine import Session

    return Session(dependencies=dependencies, max_steps=max_steps).reformulate(
        query, semantics, **kwargs
    )


def c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs: Any,
) -> ReformulationResult:
    """The original set-semantics C&B of Deutsch et al. (Appendix A).

    Deprecated shim: delegates to ``Session.reformulate(semantics="set")``.
    """
    warnings.warn(
        _cb_deprecation_message("c_and_b", Semantics.SET),
        DeprecationWarning,
        stacklevel=2,
    )
    return _session_reformulate(query, dependencies, Semantics.SET, max_steps, **kwargs)


def bag_c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs: Any,
) -> ReformulationResult:
    """Bag-C&B (Theorem 6.4): Σ-minimal reformulations under bag semantics.

    Deprecated shim: delegates to ``Session.reformulate(semantics="bag")``.
    """
    warnings.warn(
        _cb_deprecation_message("bag_c_and_b", Semantics.BAG),
        DeprecationWarning,
        stacklevel=2,
    )
    return _session_reformulate(query, dependencies, Semantics.BAG, max_steps, **kwargs)


def bag_set_c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs: Any,
) -> ReformulationResult:
    """Bag-Set-C&B (Theorem K.1): Σ-minimal reformulations under bag-set semantics.

    Deprecated shim: delegates to ``Session.reformulate(semantics="bag-set")``.
    """
    warnings.warn(
        _cb_deprecation_message("bag_set_c_and_b", Semantics.BAG_SET),
        DeprecationWarning,
        stacklevel=2,
    )
    return _session_reformulate(query, dependencies, Semantics.BAG_SET, max_steps, **kwargs)


def naive_bag_c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs: Any,
) -> ReformulationResult:
    """The *unsound* naive extension of C&B discussed in Section 4.1.

    It chases with the ordinary set chase and merely swaps in the
    dependency-free bag-equivalence test (query isomorphism).  Example 4.1
    shows this accepts reformulations that are not bag equivalent to the
    input; it is provided so tests and the E9 benchmark can reproduce that
    failure mode and contrast it with :func:`bag_c_and_b`.
    """
    semantics = Semantics.BAG
    dependencies = DependencySet.coerce(dependencies)
    chase_result = sound_chase(query, dependencies, Semantics.SET, max_steps)
    universal_plan = chase_result.query
    reformulations: list[ConjunctiveQuery] = []
    examined = 0
    for candidate in iter_subqueries(universal_plan, max_size=kwargs.get("max_candidate_size")):
        examined += 1
        chased_candidate = sound_chase(
            candidate, dependencies, Semantics.SET, max_steps
        ).query
        # The naive test of Section 4.1: plain bag equivalence (isomorphism,
        # Theorem 2.1) between the set-chase results.
        if not are_isomorphic(chased_candidate, universal_plan):
            continue
        if any(are_isomorphic(candidate, existing) for existing in reformulations):
            continue
        reformulations.append(candidate)
    return ReformulationResult(
        query=query,
        semantics=semantics,
        universal_plan=universal_plan,
        reformulations=reformulations,
        minimal_reformulations=list(reformulations),
        candidates_examined=examined,
        chase_result=chase_result,
    )
