"""Chase & Backchase (C&B) and its bag / bag-set variants (Section 6.3, Appendix A).

The generic driver :func:`chase_and_backchase` implements the two-phase
algorithm:

1. **chase phase** — chase the input query under Σ (with the chase that is
   sound for the chosen semantics) to obtain the *universal plan*;
2. **backchase phase** — enumerate the safe subqueries of the universal
   plan, chase each candidate, and keep the candidates whose chase result is
   equivalent to the universal plan under the dependency-free test matching
   the semantics (Theorem 2.2 / 6.1 / 6.2).

The result records the universal plan, every equivalent reformulation found,
and the Σ-minimal ones among them.  ``c_and_b``, ``bag_c_and_b``, and
``bag_set_c_and_b`` are the paper's named algorithms (Theorem A.1, 6.4, K.1);
all are sound and complete whenever the set chase of the input terminates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.bag_equivalence import (
    is_bag_equivalent_with_set_enforced,
    is_bag_set_equivalent,
)
from ..core.containment import is_set_equivalent
from ..core.homomorphism import are_isomorphic
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS, ChaseResult
from ..chase.sound_chase import sound_chase
from .candidates import iter_subqueries
from .minimality import is_sigma_minimal


@dataclass
class ReformulationResult:
    """Output of a C&B run."""

    query: ConjunctiveQuery
    semantics: Semantics
    universal_plan: ConjunctiveQuery
    reformulations: list[ConjunctiveQuery] = field(default_factory=list)
    minimal_reformulations: list[ConjunctiveQuery] = field(default_factory=list)
    candidates_examined: int = 0
    chase_result: ChaseResult | None = None

    def __iter__(self):
        return iter(self.minimal_reformulations)

    def __len__(self) -> int:
        return len(self.minimal_reformulations)

    def contains_isomorphic(self, query: ConjunctiveQuery, minimal_only: bool = False) -> bool:
        """Is some (minimal) reformulation isomorphic to *query*?"""
        pool = self.minimal_reformulations if minimal_only else self.reformulations
        return any(are_isomorphic(candidate, query) for candidate in pool)

    def __str__(self) -> str:
        lines = [
            f"C&B under {self.semantics} for {self.query}",
            f"  universal plan: {self.universal_plan}",
            f"  {len(self.reformulations)} equivalent reformulations, "
            f"{len(self.minimal_reformulations)} Σ-minimal",
        ]
        lines.extend(f"    {query}" for query in self.minimal_reformulations)
        return "\n".join(lines)


def _dependency_free_test(
    semantics: Semantics, set_valued: frozenset[str]
):
    if semantics is Semantics.SET:
        return is_set_equivalent
    if semantics is Semantics.BAG:
        return lambda q1, q2: is_bag_equivalent_with_set_enforced(q1, q2, set_valued)
    return is_bag_set_equivalent


def chase_and_backchase(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_candidate_size: int | None = None,
    check_sigma_minimality: bool = True,
) -> ReformulationResult:
    """Run C&B (or its bag / bag-set variant) on *query* under *dependencies*.

    ``max_candidate_size`` caps the body size of backchase candidates (useful
    on large universal plans); ``check_sigma_minimality`` controls whether
    the Definition 3.1 Σ-minimality filter is applied to produce
    ``minimal_reformulations`` (the full list of equivalent reformulations is
    always reported).
    """
    semantics = Semantics.from_name(semantics)
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)

    chase_result = sound_chase(query, dependencies, semantics, max_steps)
    universal_plan = chase_result.query
    equivalence_test = _dependency_free_test(
        semantics, dependencies.set_valued_predicates
    )

    reformulations: list[ConjunctiveQuery] = []
    examined = 0
    for candidate in iter_subqueries(
        universal_plan, max_size=max_candidate_size
    ):
        examined += 1
        chased_candidate = sound_chase(candidate, dependencies, semantics, max_steps).query
        if not equivalence_test(chased_candidate, universal_plan):
            continue
        if any(are_isomorphic(candidate, existing) for existing in reformulations):
            continue
        reformulations.append(candidate)

    if check_sigma_minimality:
        minimal = [
            candidate
            for candidate in reformulations
            if is_sigma_minimal(candidate, dependencies, semantics, max_steps)
        ]
    else:
        # Fall back to subset-minimality: keep candidates none of whose
        # accepted strict sub-bodies is also accepted.
        minimal = []
        for candidate in reformulations:
            has_smaller = any(
                other is not candidate
                and len(other.body) < len(candidate.body)
                and set(other.body) <= set(candidate.body)
                for other in reformulations
            )
            if not has_smaller:
                minimal.append(candidate)

    return ReformulationResult(
        query=query,
        semantics=semantics,
        universal_plan=universal_plan,
        reformulations=reformulations,
        minimal_reformulations=minimal,
        candidates_examined=examined,
        chase_result=chase_result,
    )


def c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs,
) -> ReformulationResult:
    """The original set-semantics C&B of Deutsch et al. (Appendix A)."""
    return chase_and_backchase(query, dependencies, Semantics.SET, max_steps, **kwargs)


def bag_c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs,
) -> ReformulationResult:
    """Bag-C&B (Theorem 6.4): Σ-minimal reformulations under bag semantics."""
    return chase_and_backchase(query, dependencies, Semantics.BAG, max_steps, **kwargs)


def bag_set_c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs,
) -> ReformulationResult:
    """Bag-Set-C&B (Theorem K.1): Σ-minimal reformulations under bag-set semantics."""
    return chase_and_backchase(query, dependencies, Semantics.BAG_SET, max_steps, **kwargs)


def naive_bag_c_and_b(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Sequence[Dependency],
    max_steps: int = DEFAULT_MAX_STEPS,
    **kwargs,
) -> ReformulationResult:
    """The *unsound* naive extension of C&B discussed in Section 4.1.

    It chases with the ordinary set chase and merely swaps in the
    dependency-free bag-equivalence test (query isomorphism).  Example 4.1
    shows this accepts reformulations that are not bag equivalent to the
    input; it is provided so tests and the E9 benchmark can reproduce that
    failure mode and contrast it with :func:`bag_c_and_b`.
    """
    semantics = Semantics.BAG
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    chase_result = sound_chase(query, dependencies, Semantics.SET, max_steps)
    universal_plan = chase_result.query
    reformulations: list[ConjunctiveQuery] = []
    examined = 0
    for candidate in iter_subqueries(universal_plan, max_size=kwargs.get("max_candidate_size")):
        examined += 1
        chased_candidate = sound_chase(
            candidate, dependencies, Semantics.SET, max_steps
        ).query
        # The naive test of Section 4.1: plain bag equivalence (isomorphism,
        # Theorem 2.1) between the set-chase results.
        if not are_isomorphic(chased_candidate, universal_plan):
            continue
        if any(are_isomorphic(candidate, existing) for existing in reformulations):
            continue
        reformulations.append(candidate)
    return ReformulationResult(
        query=query,
        semantics=semantics,
        universal_plan=universal_plan,
        reformulations=reformulations,
        minimal_reformulations=list(reformulations),
        candidates_examined=examined,
        chase_result=chase_result,
    )
