"""Query-reformulation algorithms: C&B, Bag-C&B, Bag-Set-C&B, aggregate variants."""

from .aggregate_cb import (
    AggregateReformulationResult,
    max_min_c_and_b,
    reformulate_aggregate_query,
    sum_count_c_and_b,
)
from .candidates import count_subquery_candidates, iter_subqueries
from .cb import (
    ReformulationResult,
    bag_c_and_b,
    bag_set_c_and_b,
    c_and_b,
    chase_and_backchase,
    naive_bag_c_and_b,
)
from .minimality import is_sigma_minimal, is_sigma_minimal_aggregate, sigma_minimize

__all__ = [
    "AggregateReformulationResult",
    "ReformulationResult",
    "bag_c_and_b",
    "bag_set_c_and_b",
    "c_and_b",
    "chase_and_backchase",
    "count_subquery_candidates",
    "is_sigma_minimal",
    "is_sigma_minimal_aggregate",
    "iter_subqueries",
    "max_min_c_and_b",
    "naive_bag_c_and_b",
    "reformulate_aggregate_query",
    "sigma_minimize",
    "sum_count_c_and_b",
]
