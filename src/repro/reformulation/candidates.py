"""Candidate reformulations: subqueries of a universal plan.

The backchase phase of C&B (Appendix A) iterates over every query whose head
is the universal plan's head and whose body is a nonempty subset of the
universal plan's body.  Only *safe* subsets (every head variable still occurs
in the body) are queries at all, so unsafe subsets are skipped.

Candidates are produced in increasing body size, which lets callers that
only want Σ-minimal reformulations stop exploring supersets of an already
accepted candidate.
"""

from __future__ import annotations

from itertools import combinations
from typing import Hashable, Iterator, Sequence

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable


def iter_subqueries(
    universal_plan: ConjunctiveQuery,
    min_size: int = 1,
    max_size: int | None = None,
    include_full: bool = True,
) -> Iterator[ConjunctiveQuery]:
    """Yield the safe subqueries of *universal_plan*, smallest bodies first.

    ``max_size`` caps the body size of generated candidates; ``include_full``
    controls whether the universal plan itself (the full body) is yielded.
    """
    body = universal_plan.body
    head_variables = {
        term for term in universal_plan.head_terms if isinstance(term, Variable)
    }
    upper = len(body) if max_size is None else min(max_size, len(body))
    for size in range(max(1, min_size), upper + 1):
        if size == len(body) and not include_full:
            continue
        for indices in combinations(range(len(body)), size):
            atoms = tuple(body[i] for i in indices)
            covered = {v for atom in atoms for v in atom.variables()}
            if not head_variables <= covered:
                continue
            yield ConjunctiveQuery(
                universal_plan.head_predicate, universal_plan.head_terms, atoms
            )


def count_subquery_candidates(universal_plan: ConjunctiveQuery) -> int:
    """Number of safe subqueries the backchase would consider (diagnostics)."""
    return sum(1 for _ in iter_subqueries(universal_plan))


def subquery_atom_indices(
    universal_plan: ConjunctiveQuery, candidate: ConjunctiveQuery
) -> tuple[int, ...] | None:
    """Indices of the universal plan's body atoms that *candidate* consists of.

    Returns None when the candidate's body is not a sub-multiset of the
    plan's body (e.g. for candidates produced elsewhere).
    """
    available: dict[Atom, list[int]] = {}
    for index, atom in enumerate(universal_plan.body):
        available.setdefault(atom, []).append(index)
    chosen: list[int] = []
    for atom in candidate.body:
        slots = available.get(atom)
        if not slots:
            return None
        chosen.append(slots.pop(0))
    return tuple(sorted(chosen))


def sub_multiset_of(
    smaller: Sequence[Hashable], larger: Sequence[Hashable]
) -> bool:
    """Is *smaller* a sub-multiset of *larger* (used for minimality filtering)?"""
    from collections import Counter

    small_counts = Counter(smaller)
    large_counts = Counter(larger)
    return all(large_counts[key] >= count for key, count in small_counts.items())
