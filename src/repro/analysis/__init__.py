"""Reporting helpers: chase statistics, equivalence matrices, reformulation tables."""

from .reporting import (
    ChaseStatistics,
    chase_statistics,
    equivalence_matrix,
    equivalence_matrix_table,
    reformulation_table,
    render_table,
)

__all__ = [
    "ChaseStatistics",
    "chase_statistics",
    "equivalence_matrix",
    "equivalence_matrix_table",
    "reformulation_table",
    "render_table",
]
