"""Analysis helpers: reporting tables plus the static Σ/query analyzer."""

from .reporting import (
    ChaseStatistics,
    chase_statistics,
    equivalence_matrix,
    equivalence_matrix_table,
    reformulation_table,
    render_table,
)
from .static import (
    DIAGNOSTIC_CODES,
    AnalysisReport,
    CycleWitness,
    Diagnostic,
    Severity,
    TerminationCertificate,
    analyze,
    certify,
)

__all__ = [
    "DIAGNOSTIC_CODES",
    "AnalysisReport",
    "ChaseStatistics",
    "CycleWitness",
    "Diagnostic",
    "Severity",
    "TerminationCertificate",
    "analyze",
    "certify",
    "chase_statistics",
    "equivalence_matrix",
    "equivalence_matrix_table",
    "reformulation_table",
    "render_table",
]
