"""Structured diagnostics for the static Σ/query analyzer.

Every finding of the analyzer is a :class:`Diagnostic`: a stable
machine-readable code (the contract for tests, CI gates and the serve
protocol), a severity, the rendered offending object, a human message and a
fix hint, plus a JSON-able ``data`` payload with the structured details
(witness edges, bounds, positions).  A whole run is an
:class:`AnalysisReport` — diagnostics plus the termination certificate or
the witness cycle — that round-trips losslessly through ``as_dict`` /
``from_dict`` (the ``repro check --format json`` contract).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from .certificates import CycleWitness, TerminationCertificate


class Severity(enum.Enum):
    """Severity of a diagnostic; orders ``info < warning < error``."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"

    @property
    def rank(self) -> int:
        return _SEVERITY_RANK[self]

    def __str__(self) -> str:
        return self.value


_SEVERITY_RANK = {Severity.INFO: 0, Severity.WARNING: 1, Severity.ERROR: 2}


#: code -> (severity, one-line description).  The README's diagnostic table
#: and the golden tests are generated against this registry; codes are
#: append-only (stable identifiers, like compiler warning codes).
DIAGNOSTIC_CODES: dict[str, tuple[Severity, str]] = {
    "sigma-not-weakly-acyclic": (
        Severity.ERROR,
        "Σ has a cycle through a special edge; the sound chase may not terminate",
    ),
    "arity-conflict": (
        Severity.ERROR,
        "a predicate is used with two different arities across Σ/queries/instance",
    ),
    "rule-not-range-restricted": (
        Severity.WARNING,
        "tgd conclusion shares no variables with its premise (fires at most once)",
    ),
    "unused-premise-atom": (
        Severity.WARNING,
        "premise atom shares no variables with the rest of the rule (pure guard)",
    ),
    "query-cross-product": (
        Severity.WARNING,
        "query body join graph is disconnected (cartesian product)",
    ),
    "egd-trivial": (
        Severity.WARNING,
        "every equality of the egd is trivially satisfied",
    ),
    "egd-always-failing": (
        Severity.WARNING,
        "an egd equality equates two distinct constants (chase fails when premise matches)",
    ),
    "dependency-subsumed": (
        Severity.WARNING,
        "dependency is implied by another dependency in Σ (static homomorphism check)",
    ),
    "sigma-certified": (
        Severity.INFO,
        "Σ is weakly acyclic; rank certificate and static chase-depth bound attached",
    ),
    "sigma-certified-after-regularization": (
        Severity.INFO,
        "Σ is cyclic as written but regularize(Σ) — what the chase runs — is certified",
    ),
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding.

    ``data`` carries only JSON-primitive values (strings, numbers, booleans,
    lists, dicts) so a report survives a JSON round trip unchanged.
    """

    code: str
    severity: Severity
    subject: str
    message: str
    hint: str = ""
    data: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(f"unknown diagnostic code {self.code!r}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "subject": self.subject,
            "message": self.message,
            "hint": self.hint,
            "data": dict(self.data),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Diagnostic":
        return cls(
            code=str(payload["code"]),
            severity=Severity(payload["severity"]),
            subject=str(payload["subject"]),
            message=str(payload["message"]),
            hint=str(payload.get("hint", "")),
            data=dict(payload.get("data", {})),
        )

    def render_line(self) -> str:
        hint = f"  (hint: {self.hint})" if self.hint else ""
        return f"{self.severity.value}[{self.code}] {self.subject}: {self.message}{hint}"


@dataclass(frozen=True)
class AnalysisReport:
    """The full result of one analyzer run.

    Exactly one of ``certificate`` / ``witness`` is set when Σ is nonempty
    (certificate for weakly acyclic Σ, witness cycle otherwise); both refer
    to ``regularize(Σ)``, the dependency set the chase actually runs.
    """

    diagnostics: tuple[Diagnostic, ...]
    certificate: "TerminationCertificate | None" = None
    witness: "CycleWitness | None" = None

    # -------------------------------------------------------------- #
    def by_severity(self, severity: Severity) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is severity)

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return self.by_severity(Severity.WARNING)

    @property
    def ok(self) -> bool:
        """True when no error-severity diagnostic was produced."""
        return not self.errors

    @property
    def certified(self) -> bool:
        return self.certificate is not None

    def exit_code(self) -> int:
        """Process exit code: 2 on errors, 1 on warnings, 0 otherwise."""
        if self.errors:
            return 2
        if self.warnings:
            return 1
        return 0

    def summary(self) -> str:
        counts = {
            severity: len(self.by_severity(severity))
            for severity in (Severity.ERROR, Severity.WARNING, Severity.INFO)
        }
        status = "certified" if self.certified else "NOT certified"
        return (
            f"Σ {status}; "
            + ", ".join(f"{n} {s.value}(s)" for s, n in counts.items())
        )

    # -------------------------------------------------------------- #
    def as_dict(self) -> dict[str, Any]:
        return {
            "diagnostics": [d.as_dict() for d in self.diagnostics],
            "certificate": self.certificate.as_dict() if self.certificate else None,
            "witness": self.witness.as_dict() if self.witness else None,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "AnalysisReport":
        from .certificates import CycleWitness, TerminationCertificate

        certificate = payload.get("certificate")
        witness = payload.get("witness")
        return cls(
            diagnostics=tuple(
                Diagnostic.from_dict(d) for d in payload.get("diagnostics", ())
            ),
            certificate=(
                TerminationCertificate.from_dict(certificate) if certificate else None
            ),
            witness=CycleWitness.from_dict(witness) if witness else None,
        )

    def render_table(self) -> str:
        """Fixed-width table of the diagnostics (the ``--format table`` view)."""
        from ..reporting import render_table

        rows = [
            (d.severity.value, d.code, d.subject, d.message, d.hint)
            for d in self.diagnostics
        ]
        table = render_table(
            ["severity", "code", "subject", "message", "hint"], rows
        )
        return f"{table}\n\n{self.summary()}"
