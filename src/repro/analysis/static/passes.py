"""Individual lint passes of the static analyzer.

Every pass is a pure function from (parts of) the analyzer input to a list
of :class:`Diagnostic` records, in deterministic input order.  The passes
are chase-free: the most expensive machinery any of them touches is the
static homomorphism search behind the dependency-subsumption check, which
is capped so a pathological Σ cannot stall ``repro check``.
"""

from __future__ import annotations

import itertools
from typing import Mapping, Sequence

from ...core.atoms import Atom, atoms_variables
from ...core.homomorphism import find_homomorphism, iter_homomorphisms
from ...core.query import ConjunctiveQuery
from ...core.terms import Constant, Term, Variable
from ...database.instance import DatabaseInstance
from ...datalog.render import render_dependency, render_query
from ...dependencies.base import EGD, TGD, Dependency
from .diagnostics import DIAGNOSTIC_CODES, Diagnostic

#: Caps on the subsumption search so `repro check` stays O(small) even on
#: adversarial Σ: homomorphisms enumerated per premise pair, and frontier
#: back-mapping combinations tried per premise homomorphism.
_MAX_PREMISE_HOMS = 64
_MAX_FRONTIER_COMBINATIONS = 64


def _make(code: str, subject: str, message: str, hint: str = "", **data: object) -> Diagnostic:
    severity, _ = DIAGNOSTIC_CODES[code]
    return Diagnostic(
        code=code,
        severity=severity,
        subject=subject,
        message=message,
        hint=hint,
        data=dict(data),
    )


# ------------------------------------------------------------------ #
# arity conflicts across Σ / queries / instance
# ------------------------------------------------------------------ #
def check_arities(
    dependencies: Sequence[Dependency],
    queries: Sequence[ConjunctiveQuery] = (),
    instance: DatabaseInstance | None = None,
) -> list[Diagnostic]:
    """Every predicate must be used with one arity everywhere."""
    first_use: dict[str, tuple[int, str]] = {}
    diagnostics: list[Diagnostic] = []

    def visit(predicate: str, arity: int, where: str) -> None:
        seen = first_use.get(predicate)
        if seen is None:
            first_use[predicate] = (arity, where)
            return
        expected, origin = seen
        if arity != expected:
            diagnostics.append(
                _make(
                    "arity-conflict",
                    predicate,
                    f"used with arity {arity} in {where} "
                    f"but arity {expected} in {origin}",
                    hint="rename one of the relations or fix the atom",
                    arities=[expected, arity],
                    sources=[origin, where],
                )
            )

    for dependency in dependencies:
        where = render_dependency(dependency)
        for atom in dependency.premise:
            visit(atom.predicate, atom.arity, where)
        if isinstance(dependency, TGD):
            for atom in dependency.conclusion:
                visit(atom.predicate, atom.arity, where)
    for query in queries:
        where = render_query(query)
        for atom in query.body:
            visit(atom.predicate, atom.arity, where)
    if instance is not None:
        for name, relation in sorted(instance.relations.items()):
            visit(name, relation.arity, "the database instance")
    return diagnostics


# ------------------------------------------------------------------ #
# range restriction
# ------------------------------------------------------------------ #
def check_range_restriction(dependencies: Sequence[Dependency]) -> list[Diagnostic]:
    """Tgds whose conclusion shares no variables with the premise.

    With implicit existential quantification such a rule is satisfied by a
    single witness tuple unrelated to the premise match — it fires at most
    once ever, which is almost always a typo'd variable name.
    """
    diagnostics = []
    for dependency in dependencies:
        if isinstance(dependency, TGD) and not dependency.frontier_variables():
            diagnostics.append(
                _make(
                    "rule-not-range-restricted",
                    render_dependency(dependency),
                    "conclusion shares no variables with the premise; "
                    "every conclusion variable is existential and the rule "
                    "fires at most once",
                    hint="check the conclusion variable names against the premise",
                )
            )
    return diagnostics


# ------------------------------------------------------------------ #
# unused premise atoms
# ------------------------------------------------------------------ #
def check_unused_premise_atoms(dependencies: Sequence[Dependency]) -> list[Diagnostic]:
    """Premise atoms that share no variables with the rest of the rule."""
    diagnostics = []
    for dependency in dependencies:
        if len(dependency.premise) < 2:
            continue
        if isinstance(dependency, TGD):
            conclusion_vars = set(atoms_variables(dependency.conclusion))
        else:
            assert isinstance(dependency, EGD)
            conclusion_vars = {
                var for eq in dependency.equalities for var in eq.variables()
            }
        for position, atom in enumerate(dependency.premise):
            own = atom.variable_set()
            rest = set(
                atoms_variables(
                    dependency.premise[:position] + dependency.premise[position + 1 :]
                )
            )
            if own & (rest | conclusion_vars):
                continue
            diagnostics.append(
                _make(
                    "unused-premise-atom",
                    render_dependency(dependency),
                    f"premise atom {atom} shares no variables with the rest "
                    "of the rule; it only gates firing on nonemptiness",
                    hint="drop the atom or join it to the rule",
                    atom=str(atom),
                    position=position,
                )
            )
    return diagnostics


# ------------------------------------------------------------------ #
# cross products in query bodies
# ------------------------------------------------------------------ #
def check_query_cross_products(
    queries: Sequence[ConjunctiveQuery],
) -> list[Diagnostic]:
    """Query bodies whose join graph is disconnected (cartesian products)."""
    diagnostics = []
    for query in queries:
        body = query.body
        if len(body) < 2:
            continue
        component = list(range(len(body)))

        def find(node: int) -> int:
            while component[node] != node:
                component[node] = component[component[node]]
                node = component[node]
            return node

        variable_home: dict[Variable, int] = {}
        for index, atom in enumerate(body):
            for variable in atom.variable_set():
                home = variable_home.setdefault(variable, index)
                component[find(index)] = find(home)
        roots = {find(index) for index in range(len(body))}
        if len(roots) < 2:
            continue
        groups = [
            [str(atom) for index, atom in enumerate(body) if find(index) == root]
            for root in sorted(roots)
        ]
        diagnostics.append(
            _make(
                "query-cross-product",
                render_query(query),
                f"body joins into {len(roots)} disconnected groups; "
                "the query multiplies their cardinalities",
                hint="join the groups through a shared variable if unintended",
                components=groups,
            )
        )
    return diagnostics


# ------------------------------------------------------------------ #
# degenerate egds
# ------------------------------------------------------------------ #
def check_degenerate_egds(dependencies: Sequence[Dependency]) -> list[Diagnostic]:
    """Egds that are trivially satisfied or can only fail."""
    diagnostics = []
    for dependency in dependencies:
        if not isinstance(dependency, EGD):
            continue
        subject = render_dependency(dependency)
        if all(eq.is_trivial() for eq in dependency.equalities):
            diagnostics.append(
                _make(
                    "egd-trivial",
                    subject,
                    "every equality is syntactically trivial; the egd can "
                    "never change an instance",
                    hint="remove the egd",
                )
            )
        for equality in dependency.equalities:
            if (
                isinstance(equality.left, Constant)
                and isinstance(equality.right, Constant)
                and equality.left != equality.right
            ):
                diagnostics.append(
                    _make(
                        "egd-always-failing",
                        subject,
                        f"equality {equality} equates two distinct constants; "
                        "the chase fails whenever the premise matches",
                        hint="this encodes a denial constraint — "
                        "confirm that is intended",
                        equality=str(equality),
                    )
                )
    return diagnostics


# ------------------------------------------------------------------ #
# syntactic dependency subsumption
# ------------------------------------------------------------------ #
def _frontier_backmaps(
    premise_hom: Mapping[Term, Term],
    frontier_one: Sequence[Variable],
    frontier_two: Sequence[Variable],
) -> "itertools.product[tuple[tuple[Variable, Variable], ...]]":
    """Ways to send each frontier variable of σ2 back to one of σ1.

    For the conclusion homomorphism ``v`` to compose soundly, ``v(y)`` must
    be a frontier variable ``z`` of σ1 with ``u(z) = y`` — enumerate the
    candidate ``z`` per ``y`` and take the product.
    """
    candidate_lists = []
    for y in frontier_two:
        candidates = [z for z in frontier_one if premise_hom.get(z) == y]
        candidate_lists.append([(y, z) for z in candidates])
    return itertools.product(*candidate_lists)


def _tgd_implies(first: TGD, second: TGD) -> bool:
    """Sufficient condition for ``first ⊨ second``.

    There is a homomorphism ``u : premise(first) → premise(second)`` and a
    homomorphism ``v : conclusion(second) → conclusion(first)`` sending each
    frontier variable ``y`` of *second* to a frontier variable ``z`` of
    *first* with ``u(z) = y``.  Then any match ``h`` of *second*'s premise
    pulls back through ``u`` to a match of *first*'s premise, whose
    guaranteed conclusion extension ``g`` makes ``g ∘ v`` extend ``h``.
    """
    frontier_one = first.frontier_variables()
    frontier_two = second.frontier_variables()
    for premise_hom in itertools.islice(
        iter_homomorphisms(first.premise, second.premise), _MAX_PREMISE_HOMS
    ):
        for combination in itertools.islice(
            _frontier_backmaps(premise_hom, frontier_one, frontier_two),
            _MAX_FRONTIER_COMBINATIONS,
        ):
            fixed: dict[Term, Term] = {y: z for y, z in combination}
            if len(fixed) < len(frontier_two):
                continue
            if find_homomorphism(second.conclusion, first.conclusion, fixed) is not None:
                return True
    return False


def _egd_implies(first: EGD, second: EGD) -> bool:
    """Sufficient condition for ``first ⊨ second``: a premise homomorphism
    ``u`` mapping some equality of *first* onto each equality of *second*."""
    for premise_hom in itertools.islice(
        iter_homomorphisms(first.premise, second.premise), _MAX_PREMISE_HOMS
    ):
        def image(term: Term) -> Term:
            return premise_hom.get(term, term)

        covered = True
        for target_eq in second.equalities:
            want = {target_eq.left, target_eq.right}
            if len(want) == 1:  # trivial equality: always entailed
                continue
            if not any(
                {image(eq.left), image(eq.right)} == want for eq in first.equalities
            ):
                covered = False
                break
        if covered:
            return True
    return False


def check_subsumed_dependencies(
    dependencies: Sequence[Dependency],
) -> list[Diagnostic]:
    """Dependencies statically implied by another member of Σ.

    Mutually equivalent pairs flag only the later member (the earlier one
    is kept as the representative), so a pair is never reported twice.
    """
    diagnostics = []
    subsumed: set[int] = set()
    for j, second in enumerate(dependencies):
        for i, first in enumerate(dependencies):
            if i == j or i in subsumed or type(first) is not type(second):
                continue
            if isinstance(second, TGD):
                assert isinstance(first, TGD)
                implied = _tgd_implies(first, second)
            else:
                assert isinstance(first, EGD) and isinstance(second, EGD)
                implied = _egd_implies(first, second)
            if implied:
                subsumed.add(j)
                diagnostics.append(
                    _make(
                        "dependency-subsumed",
                        render_dependency(second),
                        f"implied by {render_dependency(first)}; removing it "
                        "does not change the certified chase",
                        hint="drop the subsumed dependency to shrink Σ",
                        implied_by=render_dependency(first),
                        index=j,
                        implied_by_index=i,
                    )
                )
                break
    return diagnostics


__all__ = [
    "check_arities",
    "check_range_restriction",
    "check_unused_premise_atoms",
    "check_query_cross_products",
    "check_degenerate_egds",
    "check_subsumed_dependencies",
]
