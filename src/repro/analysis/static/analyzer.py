"""The chase-free analyzer: Σ (+ queries, + instance) → :class:`AnalysisReport`.

``analyze`` runs every lint pass, then attempts to certify termination of
``regularize(Σ)`` — the dependency set the sound chase actually runs.  A
certified Σ yields an info diagnostic carrying the rank summary; an
uncertified Σ yields an error diagnostic carrying the witness cycle
rendered in rule notation.  Diagnostics are ordered most severe first,
then by code and subject, so reports are deterministic and diffable.
"""

from __future__ import annotations

from typing import Sequence

from ...core.query import ConjunctiveQuery
from ...database.instance import DatabaseInstance
from ...dependencies.base import Dependency, DependencySet
from ...dependencies.weak_acyclicity import is_weakly_acyclic
from .certificates import certify
from .diagnostics import DIAGNOSTIC_CODES, AnalysisReport, Diagnostic
from .passes import (
    check_arities,
    check_degenerate_egds,
    check_query_cross_products,
    check_range_restriction,
    check_subsumed_dependencies,
    check_unused_premise_atoms,
)


def analyze(
    dependencies: DependencySet | Sequence[Dependency],
    queries: Sequence[ConjunctiveQuery] = (),
    instance: DatabaseInstance | None = None,
    *,
    subsumption: bool = True,
) -> AnalysisReport:
    """Statically analyze Σ together with the queries it will serve.

    ``subsumption=False`` skips the pairwise implication pass (the only
    super-linear one) for callers on a hot path, e.g. the Session precheck
    of a large machine-generated Σ.
    """
    sigma = DependencySet.coerce(dependencies)
    items = list(sigma.dependencies)
    diagnostics: list[Diagnostic] = []
    diagnostics.extend(check_arities(items, queries, instance))
    diagnostics.extend(check_range_restriction(items))
    diagnostics.extend(check_unused_premise_atoms(items))
    diagnostics.extend(check_query_cross_products(queries))
    diagnostics.extend(check_degenerate_egds(items))
    if subsumption:
        diagnostics.extend(check_subsumed_dependencies(items))

    certificate, witness = certify(sigma)
    if certificate is not None:
        code = "sigma-certified"
        if items and not is_weakly_acyclic(items):
            # The regularization dropped the special edges that closed the
            # cycle; the chase is still certified, but say so explicitly.
            code = "sigma-certified-after-regularization"
        severity, _ = DIAGNOSTIC_CODES[code]
        diagnostics.append(
            Diagnostic(
                code=code,
                severity=severity,
                subject="Σ",
                message=certificate.summary(),
                data={"max_rank": certificate.max_rank, "positions": len(certificate.ranks)},
            )
        )
    else:
        assert witness is not None
        severity, _ = DIAGNOSTIC_CODES["sigma-not-weakly-acyclic"]
        diagnostics.append(
            Diagnostic(
                code="sigma-not-weakly-acyclic",
                severity=severity,
                subject="Σ",
                message=witness.render(),
                hint="break the cycle or chase with an explicit step budget",
                data={"witness": witness.as_dict()["edges"]},
            )
        )

    diagnostics.sort(key=lambda d: (-d.severity.rank, d.code, d.subject))
    return AnalysisReport(
        diagnostics=tuple(diagnostics),
        certificate=certificate,
        witness=witness,
    )
