"""Machine-checkable termination evidence for a dependency set.

Two shapes, both computed over ``regularize(Σ)`` (the set the sound chase
actually runs — regularization only removes special edges, never adds):

* :class:`TerminationCertificate` — for weakly acyclic Σ: a *rank function*
  over the positions of the dependency graph (rank = maximum number of
  special edges on any path into the position).  Validity is a purely local
  edge condition — ``rank(target) >= rank(source) + 1`` across special edges
  and ``>= rank(source)`` across ordinary ones — which is checkable without
  re-running any cycle search and implies weak acyclicity outright (a cycle
  through a special edge would force a rank to exceed itself).  From the
  ranks and per-tgd shape profiles the certificate derives a concrete static
  chase-depth bound, which the Session uses to seed chase budgets.

* :class:`CycleWitness` — for cyclic Σ: a closed edge walk through at least
  one special edge, every edge carrying the inducing rule and variable, so
  the refusal message shows *which* rules feed values into themselves.

The chase-depth bound follows Fagin et al.'s termination argument made
quantitative.  Writing ``F`` / ``E`` for the frontier / existential variable
counts of a regularized tgd and ``n`` for the number of distinct initial
values (query body terms plus conclusion/equality constants, plus one unit
of slack):

* Values at rank-0 positions are original values, plus whatever the
  frontier-free tgds deposit (a tgd with ``F = 0`` fires at most once ever,
  adding ``E`` nulls): ``N_0 = n + Σ_{F=0} E``.
* A tgd fires at most once per frontier tuple, and the frontier values of a
  firing that creates rank-``i+1`` nulls sit at positions of rank ``<= i``,
  so ``N_{i+1} = N_i + Σ_{F>0, E>0} E · N_i^F``, iterated up to the maximum
  rank ``r``.
* Every value anywhere is bounded by ``V = N_r + Σ_{F>0, E>0} E · N_r^F``;
  tgd steps number at most ``Σ V^F`` and egd steps at most ``V`` (each
  merge permanently retires one value), giving the step bound
  ``Σ V^F + V`` and the depth (rounds) bound one more.  When Σ has no
  egds the ``+ V`` term is dropped (no step can retire a value), and when
  no tgd has existential variables the chase invents no values at all, so
  ``V = n`` and the extra budget cushion for nested Definition 4.3 test
  chases collapses to the plain depth bound.

The numbers are astronomically loose — they are budgets proving "finite",
not predictions — but Python integers make them free to carry around.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Hashable, Iterable, Mapping, Sequence

from ...core.query import ConjunctiveQuery
from ...core.terms import Constant
from ...datalog.render import render_dependency
from ...dependencies.base import EGD, TGD, Dependency, DependencySet
from ...dependencies.position_graph import (
    Position,
    PositionGraph,
    render_position,
)
from ...dependencies.regularize import regularize


# ------------------------------------------------------------------ #
# shared shape extraction
# ------------------------------------------------------------------ #
def _regularized(
    dependencies: DependencySet | Sequence[Dependency],
) -> DependencySet:
    return regularize(DependencySet.coerce(dependencies))


def _tgd_profiles(dependencies: Iterable[Dependency]) -> tuple[tuple[str, int, int], ...]:
    """``(rendered rule, frontier count, existential count)`` per tgd."""
    profiles = []
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            profiles.append(
                (
                    render_dependency(dependency),
                    len(dependency.frontier_variables()),
                    len(dependency.existential_variables()),
                )
            )
    return tuple(profiles)


def _generated_constants(dependencies: Iterable[Dependency]) -> tuple[Hashable, ...]:
    """Distinct constant values the chase can introduce, first-occurrence order.

    Constants in tgd conclusions are written into new atoms; constants in
    egd equalities can replace an existing value.  Premise constants only
    ever match values already present.
    """
    seen: dict[Hashable, None] = {}
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            for atom in dependency.conclusion:
                for term in atom.terms:
                    if isinstance(term, Constant):
                        seen.setdefault(term.value, None)
        elif isinstance(dependency, EGD):
            for equality in dependency.equalities:
                for term in (equality.left, equality.right):
                    if isinstance(term, Constant):
                        seen.setdefault(term.value, None)
    return tuple(seen)


# ------------------------------------------------------------------ #
# cycle witness
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class WitnessEdge:
    """One edge of a witness cycle, with the rule and variable that induce it."""

    source: Position
    target: Position
    special: bool
    rule: str
    variable: str

    def render(self) -> str:
        arrow = "⇒" if self.special else "→"
        return (
            f"{render_position(self.source)} {arrow} {render_position(self.target)}"
            f"   via {self.variable} in {self.rule}"
        )

    def as_list(self) -> list[Any]:
        return [
            self.source[0],
            self.source[1],
            self.target[0],
            self.target[1],
            self.special,
            self.rule,
            self.variable,
        ]

    @classmethod
    def from_list(cls, payload: Sequence[Any]) -> "WitnessEdge":
        return cls(
            source=(str(payload[0]), int(payload[1])),
            target=(str(payload[2]), int(payload[3])),
            special=bool(payload[4]),
            rule=str(payload[5]),
            variable=str(payload[6]),
        )


@dataclass(frozen=True)
class CycleWitness:
    """A closed walk through a special edge: why Σ is not certified."""

    edges: tuple[WitnessEdge, ...]

    def render(self) -> str:
        lines = ["cycle through a special edge (⇒ marks fresh-null creation):"]
        lines.extend(f"  {edge.render()}" for edge in self.edges)
        return "\n".join(lines)

    def verify(self, dependencies: DependencySet | Sequence[Dependency]) -> bool:
        """Check the walk is closed, passes a special edge, and exists in the graph."""
        if not self.edges:
            return False
        if not any(edge.special for edge in self.edges):
            return False
        for edge, successor in zip(self.edges, self.edges[1:] + self.edges[:1]):
            if edge.target != successor.source:
                return False
        graph = PositionGraph.from_dependencies(_regularized(dependencies).dependencies)
        present = {
            (
                graph.positions[edge.source],
                graph.positions[edge.target],
                edge.special,
            )
            for edge in graph.edges
        }
        return all(
            (edge.source, edge.target, edge.special) in present for edge in self.edges
        )

    def as_dict(self) -> dict[str, Any]:
        return {"edges": [edge.as_list() for edge in self.edges]}

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CycleWitness":
        return cls(
            edges=tuple(WitnessEdge.from_list(e) for e in payload.get("edges", ()))
        )


# ------------------------------------------------------------------ #
# termination certificate
# ------------------------------------------------------------------ #
@dataclass(frozen=True)
class TerminationCertificate:
    """Rank function + tgd shape profiles certifying chase termination.

    ``ranks`` covers every node of the dependency graph of
    ``regularize(Σ)``; positions outside the graph implicitly have rank 0.
    """

    ranks: tuple[tuple[Position, int], ...]
    max_rank: int
    tgd_profiles: tuple[tuple[str, int, int], ...]
    generated_constants: tuple[Hashable, ...]
    #: Number of egds in ``regularize(Σ)``; with none, no chase step can
    #: retire a value and the egd term of the step bound is dropped.
    #: Defaults to a conservative sentinel for payloads predating the field.
    egd_count: int = -1

    # -------------------------------------------------------------- #
    def rank_of(self, position: Position) -> int:
        for candidate, rank in self.ranks:
            if candidate == position:
                return rank
        return 0

    def verify(self, dependencies: DependencySet | Sequence[Dependency]) -> bool:
        """Machine-check the certificate against Σ.

        Local edge inequalities over the rebuilt graph (which alone imply
        weak acyclicity), plus agreement of the shape profiles and constants
        the bounds were computed from.
        """
        regular = _regularized(dependencies)
        graph = PositionGraph.from_dependencies(regular.dependencies)
        ranks = dict(self.ranks)
        for edge in graph.edges:
            source = graph.positions[edge.source]
            target = graph.positions[edge.target]
            if source not in ranks or target not in ranks:
                return False
            if ranks[target] < ranks[source] + (1 if edge.special else 0):
                return False
        if any(rank > self.max_rank or rank < 0 for rank in ranks.values()):
            return False
        if self.tgd_profiles != _tgd_profiles(regular.dependencies):
            return False
        if set(self.generated_constants) != set(_generated_constants(regular.dependencies)):
            return False
        actual_egds = sum(1 for d in regular.dependencies if isinstance(d, EGD))
        # -1 is the legacy "unknown" sentinel: such certificates keep the
        # conservative egd term in their bounds, so they stay valid.
        if self.egd_count not in (-1, actual_egds):
            return False
        return True

    # -------------------------------------------------------------- #
    # quantitative bounds
    # -------------------------------------------------------------- #
    def initial_values(self, query: ConjunctiveQuery) -> int:
        """Distinct values the chase of *query* starts from (plus slack)."""
        terms = {term for atom in query.body for term in atom.terms}
        values = {
            term.value if isinstance(term, Constant) else term for term in terms
        }
        values.update(self.generated_constants)
        return len(values) + 1

    def _value_bound(self, initial: int) -> int:
        """``N_r``: values at positions of rank ``<= r`` starting from *initial*."""
        total = initial + sum(
            existential
            for _, frontier, existential in self.tgd_profiles
            if frontier == 0
        )
        for _ in range(self.max_rank):
            total = total + sum(
                existential * total**frontier
                for _, frontier, existential in self.tgd_profiles
                if frontier > 0 and existential > 0
            )
        return total

    def _total_values(self, initial: int) -> int:
        """``V``: every value appearing anywhere during the chase."""
        reachable = self._value_bound(initial)
        return reachable + sum(
            existential * reachable**frontier
            for _, frontier, existential in self.tgd_profiles
            if frontier > 0 and existential > 0
        )

    def _step_bound(self, values: int) -> int:
        """Chase steps given at most *values* distinct values ever.

        The ``+ values`` term budgets egd steps (each merge permanently
        retires one value); with no egds in Σ it is dropped.
        """
        tgd_steps = sum(values**frontier for _, frontier, _ in self.tgd_profiles)
        if self.egd_count == 0:
            return tgd_steps
        return tgd_steps + values

    def chase_step_bound(self, query: ConjunctiveQuery) -> int:
        """Static bound on chase steps for *query* under the certified Σ."""
        return self._step_bound(self._total_values(self.initial_values(query)))

    def chase_depth_bound(self, query: ConjunctiveQuery) -> int:
        """Static bound on chase *rounds* (the driver counts steps + 1)."""
        return self.chase_step_bound(query) + 1

    def step_budget_for(self, query: ConjunctiveQuery) -> int:
        """A ``max_steps`` budget guaranteed to let every chase terminate.

        One cushion deeper than :meth:`chase_depth_bound`: the sound chase
        runs nested Definition 4.3 test chases whose starting bodies may
        already contain every value of the outer chase, so the budget is the
        depth bound recomputed from the total-value bound ``V`` instead of
        the initial values.  Full tgds (no existential variables anywhere)
        need no cushion: the chase invents no values, every test chase
        starts from the same value pool, and the plain depth bound suffices.
        """
        if all(existential == 0 for _, _, existential in self.tgd_profiles):
            return self.chase_depth_bound(query)
        outer_values = self._total_values(self.initial_values(query))
        return self._step_bound(self._total_values(outer_values)) + 1

    # -------------------------------------------------------------- #
    def summary(self) -> str:
        return (
            f"weakly acyclic: {len(self.ranks)} position(s), "
            f"max rank {self.max_rank}, {len(self.tgd_profiles)} tgd(s)"
        )

    def as_dict(self) -> dict[str, Any]:
        return {
            "ranks": [
                [position[0], position[1], rank] for position, rank in self.ranks
            ],
            "max_rank": self.max_rank,
            "tgd_profiles": [list(profile) for profile in self.tgd_profiles],
            "generated_constants": list(self.generated_constants),
            "egd_count": self.egd_count,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TerminationCertificate":
        return cls(
            ranks=tuple(
                ((str(pred), int(index)), int(rank))
                for pred, index, rank in payload.get("ranks", ())
            ),
            max_rank=int(payload["max_rank"]),
            tgd_profiles=tuple(
                (str(rule), int(frontier), int(existential))
                for rule, frontier, existential in payload.get("tgd_profiles", ())
            ),
            generated_constants=tuple(payload.get("generated_constants", ())),
            egd_count=int(payload.get("egd_count", -1)),
        )


# ------------------------------------------------------------------ #
# entry point
# ------------------------------------------------------------------ #
def certify(
    dependencies: DependencySet | Sequence[Dependency],
) -> tuple[TerminationCertificate | None, CycleWitness | None]:
    """Certificate for ``regularize(Σ)``, or the witness cycle refusing one."""
    regular = _regularized(dependencies)
    graph = PositionGraph.from_dependencies(regular.dependencies)
    ranks = graph.ranks()
    if ranks is None:
        cycle = graph.witness_cycle()
        assert cycle is not None
        witness = CycleWitness(
            edges=tuple(
                WitnessEdge(
                    source=graph.positions[edge.source],
                    target=graph.positions[edge.target],
                    special=edge.special,
                    rule=render_dependency(edge.dependency),
                    variable=edge.variable.name,
                )
                for edge in cycle
            )
        )
        return None, witness
    pairs = sorted(
        (graph.positions[node], ranks[node]) for node in range(len(graph.positions))
    )
    certificate = TerminationCertificate(
        ranks=tuple(pairs),
        max_rank=max(ranks, default=0),
        tgd_profiles=_tgd_profiles(regular.dependencies),
        generated_constants=_generated_constants(regular.dependencies),
        egd_count=sum(1 for d in regular.dependencies if isinstance(d, EGD)),
    )
    return certificate, None
