"""Static Σ/query analyzer: chase-free diagnostics and termination certificates.

The subsystem behind ``repro check`` and ``Session(precheck=...)``: lint
passes over Σ, the queries, and an optional instance, plus machine-checkable
termination evidence (rank certificates with static chase-depth bounds for
weakly acyclic Σ, witness cycles otherwise).
"""

from .analyzer import analyze
from .certificates import (
    CycleWitness,
    TerminationCertificate,
    WitnessEdge,
    certify,
)
from .diagnostics import (
    DIAGNOSTIC_CODES,
    AnalysisReport,
    Diagnostic,
    Severity,
)

__all__ = [
    "DIAGNOSTIC_CODES",
    "AnalysisReport",
    "CycleWitness",
    "Diagnostic",
    "Severity",
    "TerminationCertificate",
    "WitnessEdge",
    "analyze",
    "certify",
]
