"""Human-readable reports over chase, equivalence, and reformulation results.

Small, dependency-free reporting helpers used by the examples, the CLI, and
the benchmark harness:

* :func:`chase_statistics` — per-run statistics of a
  :class:`~repro.chase.set_chase.ChaseResult` (steps by kind and by
  dependency, body growth);
* :func:`equivalence_matrix` — the verdict matrix of a set of queries under
  one dependency set and one semantics (the E7 artefact);
* :func:`reformulation_table` — a text table of a
  :class:`~repro.reformulation.cb.ReformulationResult`;
* :func:`render_table` — minimal fixed-width table rendering (kept local so
  the library has no dependency on tabulate/pandas).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..chase.set_chase import ChaseResult
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..equivalence.under_dependencies import equivalent_under_dependencies
from ..reformulation.cb import ReformulationResult
from ..semantics import Semantics


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [
        [str(h)] for h in headers
    ]
    widths = [max(len(cell) for cell in column) for column in columns]

    def format_row(cells: Sequence[object]) -> str:
        return " | ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))

    lines = [format_row(headers), "-+-".join("-" * width for width in widths)]
    lines.extend(format_row(row) for row in rows)
    return "\n".join(lines)


@dataclass(frozen=True)
class ChaseStatistics:
    """Summary statistics of one chase run."""

    semantics: Semantics
    total_steps: int
    tgd_steps: int
    egd_steps: int
    steps_by_dependency: Mapping[str, int]
    initial_body_size: int
    final_body_size: int

    def as_table(self) -> str:
        rows = [
            ("semantics", str(self.semantics)),
            ("total steps", self.total_steps),
            ("tgd steps", self.tgd_steps),
            ("egd steps", self.egd_steps),
            ("final body size", self.final_body_size),
        ]
        rows.extend(
            (f"steps using {name or '<unnamed>'}", count)
            for name, count in sorted(self.steps_by_dependency.items())
        )
        return render_table(["metric", "value"], rows)


def chase_statistics(
    result: ChaseResult, original: ConjunctiveQuery | None = None
) -> ChaseStatistics:
    """Compute statistics for a chase run.

    ``original`` (the pre-chase query) is optional; when omitted the initial
    body size is inferred from the final size and the number of added atoms.
    """
    kinds = Counter(record.kind for record in result.steps)
    by_dependency = Counter(
        record.dependency.name or record.kind for record in result.steps
    )
    added_atoms = sum(len(record.added_atoms) for record in result.steps)
    final_size = len(result.query.body)
    initial_size = (
        len(original.body) if original is not None else max(final_size - added_atoms, 0)
    )
    return ChaseStatistics(
        semantics=result.semantics,
        total_steps=result.step_count,
        tgd_steps=kinds.get("tgd", 0),
        egd_steps=kinds.get("egd", 0),
        steps_by_dependency=dict(by_dependency),
        initial_body_size=initial_size,
        final_body_size=final_size,
    )


def equivalence_matrix(
    queries: Mapping[str, ConjunctiveQuery],
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG_SET,
) -> dict[tuple[str, str], bool]:
    """Pairwise Σ-equivalence verdicts for a named family of queries.

    Only the upper triangle is computed (equivalence is symmetric); the
    returned mapping contains both orientations for convenience.
    """
    names = list(queries)
    matrix: dict[tuple[str, str], bool] = {}
    for index, left in enumerate(names):
        matrix[(left, left)] = True
        for right in names[index + 1 :]:
            verdict = equivalent_under_dependencies(
                queries[left], queries[right], dependencies, semantics
            )
            matrix[(left, right)] = verdict
            matrix[(right, left)] = verdict
    return matrix


def equivalence_matrix_table(
    queries: Mapping[str, ConjunctiveQuery],
    dependencies: DependencySet | Sequence[Dependency],
    semantics: Semantics | str = Semantics.BAG_SET,
) -> str:
    """The equivalence matrix rendered as a text table (✓ / ✗)."""
    matrix = equivalence_matrix(queries, dependencies, semantics)
    names = list(queries)
    rows = [
        [left] + ["✓" if matrix[(left, right)] else "✗" for right in names]
        for left in names
    ]
    return render_table([str(semantics)] + names, rows)


def reformulation_table(result: ReformulationResult) -> str:
    """A text table summarising a C&B run."""
    rows = []
    for query in sorted(result.reformulations, key=lambda q: len(q.body)):
        rows.append(
            (
                len(query.body),
                "yes" if any(query is m or query == m for m in result.minimal_reformulations) else "no",
                str(query),
            )
        )
    header = (
        f"{len(result.reformulations)} reformulations of {result.query.head_predicate} "
        f"under {result.semantics} ({result.candidates_examined} candidates examined)"
    )
    return header + "\n" + render_table(["#subgoals", "Σ-minimal", "query"], rows)
