"""Conjunctive queries (CQ queries).

A conjunctive query ``Q(X̄) :- p1(...), ..., pn(...)`` (Section 2.1 of the
paper) is represented by :class:`ConjunctiveQuery`: a head predicate name, a
tuple of head terms, and a tuple of body atoms.  The body is an *ordered
sequence* rather than a set because bag semantics distinguishes duplicate
subgoals (Theorem 2.1 and Theorem 4.2 hinge on subgoal multiplicities).

Key operations provided here:

* safety validation (every head variable occurs in the body),
* canonical representation (duplicate subgoals dropped — used by the
  Chaudhuri–Vardi bag-set equivalence test),
* variable renaming / freshening (used everywhere by the chase),
* structural equality and a normal form useful for deduplicating
  reformulation outputs.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..exceptions import QueryError
from .atoms import Atom, atoms_constants, atoms_variables, substitute_atoms
from .terms import (
    Constant,
    FreshVariableFactory,
    Term,
    Variable,
    term_from_value,
)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A safe conjunctive query ``head_predicate(head_terms) :- body``."""

    head_predicate: str
    head_terms: tuple[Term, ...]
    body: tuple[Atom, ...]

    def __init__(
        self,
        head_predicate: str,
        head_terms: Sequence[object],
        body: Sequence[Atom],
        validate: bool = True,
    ):
        object.__setattr__(self, "head_predicate", head_predicate)
        object.__setattr__(
            self, "head_terms", tuple(term_from_value(t) for t in head_terms)
        )
        object.__setattr__(self, "body", tuple(body))
        if validate:
            self._validate()

    # ------------------------------------------------------------------ #
    # Validation and basic accessors
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self.body:
            raise QueryError(
                f"query {self.head_predicate} has an empty body; CQ queries "
                "must have a nonempty conjunction of atoms"
            )
        body_vars = set(self.body_variables())
        for term in self.head_terms:
            if isinstance(term, Variable) and term not in body_vars:
                raise QueryError(
                    f"query {self.head_predicate} is unsafe: head variable "
                    f"{term} does not occur in the body"
                )

    def head_variables(self) -> list[Variable]:
        """Distinct head variables in first-occurrence order."""
        seen: dict[Variable, None] = {}
        for term in self.head_terms:
            if isinstance(term, Variable):
                seen.setdefault(term, None)
        return list(seen)

    def body_variables(self) -> list[Variable]:
        """Distinct body variables in first-occurrence order."""
        return atoms_variables(self.body)

    def existential_variables(self) -> list[Variable]:
        """Body variables that do not occur in the head."""
        head = set(self.head_variables())
        return [v for v in self.body_variables() if v not in head]

    def all_variables(self) -> list[Variable]:
        """Distinct variables of head and body, body order first."""
        seen: dict[Variable, None] = {}
        for var in self.body_variables():
            seen.setdefault(var, None)
        for var in self.head_variables():
            seen.setdefault(var, None)
        return list(seen)

    def constants(self) -> list[Constant]:
        """Distinct constants occurring in head or body."""
        seen: dict[Constant, None] = {}
        for const in atoms_constants(self.body):
            seen.setdefault(const, None)
        for term in self.head_terms:
            if isinstance(term, Constant):
                seen.setdefault(term, None)
        return list(seen)

    def predicates(self) -> set[str]:
        """The set of predicate names used in the body."""
        return {atom.predicate for atom in self.body}

    def predicate_counts(self) -> Counter[str]:
        """Multiplicity of each predicate among the body subgoals."""
        return Counter(atom.predicate for atom in self.body)

    @property
    def head_atom(self) -> Atom:
        """The head rendered as an atom (useful for printing and hashing)."""
        return Atom(self.head_predicate, self.head_terms)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def canonical_representation(self) -> "ConjunctiveQuery":
        """Drop duplicate body atoms (the paper's canonical representation).

        Used by Theorem 2.1(2): two CQ queries are bag-set equivalent iff
        their canonical representations are bag equivalent (isomorphic).
        """
        seen: dict[Atom, None] = {}
        for atom in self.body:
            seen.setdefault(atom, None)
        return ConjunctiveQuery(self.head_predicate, self.head_terms, tuple(seen))

    def drop_duplicates_for(self, set_valued_predicates: Iterable[str]) -> "ConjunctiveQuery":
        """Drop duplicate subgoals only for predicates in *set_valued_predicates*.

        This is the transformation of Theorem 4.2: only subgoals whose
        relations are forced to be set valued may be deduplicated without
        changing the query's bag semantics.
        """
        allowed = set(set_valued_predicates)
        kept: list[Atom] = []
        seen: set[Atom] = set()
        for atom in self.body:
            if atom.predicate in allowed:
                if atom in seen:
                    continue
                seen.add(atom)
            kept.append(atom)
        return ConjunctiveQuery(self.head_predicate, self.head_terms, tuple(kept))

    def substitute(self, mapping: Mapping[Term, Term]) -> "ConjunctiveQuery":
        """Apply a term substitution to head and body.

        Safety is re-checked because an arbitrary substitution could in
        principle break it; substitutions produced by the chase never do.
        """
        head = tuple(mapping.get(t, t) for t in self.head_terms)
        return ConjunctiveQuery(
            self.head_predicate, head, substitute_atoms(self.body, mapping)
        )

    def rename_variables(self, mapping: Mapping[Variable, Variable]) -> "ConjunctiveQuery":
        """Rename variables according to *mapping* (a special-case substitute)."""
        return self.substitute(dict(mapping))

    def freshen(
        self, avoid: Iterable[Variable] = (), prefix: str = "_r"
    ) -> tuple["ConjunctiveQuery", dict[Variable, Variable]]:
        """Return a variable-disjoint copy plus the renaming that produced it.

        Every variable of the query is renamed to a fresh variable whose name
        collides neither with *avoid* nor with the query's own variables.
        """
        avoid_names = {v.name for v in avoid} | {v.name for v in self.all_variables()}
        factory = FreshVariableFactory(avoid_names, prefix=prefix)
        renaming = {v: factory(hint=f"{prefix}_{v.name}") for v in self.all_variables()}
        return self.rename_variables(renaming), renaming

    def with_body(self, body: Sequence[Atom]) -> "ConjunctiveQuery":
        """Return a copy of the query with *body* as its new body."""
        return ConjunctiveQuery(self.head_predicate, self.head_terms, tuple(body))

    def add_atoms(self, atoms: Sequence[Atom]) -> "ConjunctiveQuery":
        """Return a copy with *atoms* appended to the body."""
        return self.with_body(self.body + tuple(atoms))

    def drop_atom_at(self, index: int) -> "ConjunctiveQuery":
        """Return a copy with the body atom at *index* removed."""
        if not 0 <= index < len(self.body):
            raise QueryError(f"no body atom at index {index}")
        body = self.body[:index] + self.body[index + 1 :]
        return ConjunctiveQuery(self.head_predicate, self.head_terms, body)

    # ------------------------------------------------------------------ #
    # Normal form, equality, display
    # ------------------------------------------------------------------ #
    def normal_form(self) -> "ConjunctiveQuery":
        """A deterministic renaming of variables used for deduplication.

        Variables are renamed to ``V0, V1, ...`` in order of first occurrence
        (head first, then body, in body order).  Two queries that are
        identical up to variable renaming have equal normal forms; the
        operation is idempotent.  It deliberately does **not** canonicalise
        body order or detect general isomorphism — use
        :func:`repro.core.homomorphism.are_isomorphic` for the real test.
        """
        order: dict[Variable, Variable] = {}

        def canon(term: Term) -> Term:
            if isinstance(term, Variable):
                if term not in order:
                    order[term] = Variable(f"V{len(order)}")
                return order[term]
            return term

        head = tuple(canon(t) for t in self.head_terms)
        body = [Atom(a.predicate, [canon(t) for t in a.terms]) for a in self.body]
        return ConjunctiveQuery(self.head_predicate, head, tuple(body))

    def structural_key(self) -> tuple:
        """Hashable key of the normal form, for dictionaries and set lookups."""
        nf = self.normal_form()
        return (
            nf.head_predicate,
            nf.head_terms,
            tuple(nf.body),
        )

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.head_atom} :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConjunctiveQuery({self!s})"


def cq(head: str, head_terms: Sequence[object], *body: Atom) -> ConjunctiveQuery:
    """Small convenience constructor: ``cq("Q", ["X"], Atom("p", ["X", "Y"]))``."""
    return ConjunctiveQuery(head, head_terms, list(body))
