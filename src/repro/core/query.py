"""Conjunctive queries (CQ queries), with memoized canonical forms.

A conjunctive query ``Q(X̄) :- p1(...), ..., pn(...)`` (Section 2.1 of the
paper) is represented by :class:`ConjunctiveQuery`: a head predicate name, a
tuple of head terms, and a tuple of body atoms.  The body is an *ordered
sequence* rather than a set because bag semantics distinguishes duplicate
subgoals (Theorem 2.1 and Theorem 4.2 hinge on subgoal multiplicities).

Key operations provided here:

* safety validation (every head variable occurs in the body),
* canonical representation (duplicate subgoals dropped — used by the
  Chaudhuri–Vardi bag-set equivalence test),
* variable renaming / freshening (used everywhere by the chase),
* structural equality and a normal form useful for deduplicating
  reformulation outputs.

Queries are immutable, so every derived form that decision procedures ask
for repeatedly — the normal form, the :meth:`structural_key` that cache keys
are built from, the canonical representation, the distinct
variable/constant lists, the set-valued-deduplication results — is computed
at most once per query object and memoized on the instance.  The
:class:`~repro.session.cache.ChaseCache` in particular keys on
``structural_key()``; before memoization every warm lookup re-ran the full
normal-form renaming.  :data:`CANONICALIZATION_STATS` counts memo hits and
misses process-wide; the chase drivers and the Session report the deltas in
their profiles.
"""

from __future__ import annotations

from collections import Counter
from typing import Any, Iterable, Mapping, Sequence

from ..exceptions import QueryError
from .atoms import Atom, atoms_constants, atoms_variables, substitute_atoms
from .plan import MatchPlan
from .terms import (
    Constant,
    FreshVariableFactory,
    HitMissStats,
    Term,
    Variable,
    term_from_value,
)


#: Hit/miss counters of the per-query ``structural_key`` memo.
CANONICALIZATION_STATS = HitMissStats()

#: Slot sentinel: distinguishes "not computed yet" from computed values that
#: may legitimately be falsy.
_UNSET = object()


class ConjunctiveQuery:
    """A safe conjunctive query ``head_predicate(head_terms) :- body``."""

    __slots__ = (
        "head_predicate",
        "head_terms",
        "body",
        "_hash",
        "_structural_key",
        "_normal_form",
        "_canonical",
        "_body_vars",
        "_all_vars",
        "_constants",
        "_variable_names",
        "_dedup",
        "_body_plan",
        "__weakref__",
    )

    head_predicate: str
    head_terms: tuple[Term, ...]
    body: tuple[Atom, ...]
    # Memo slots: hold _UNSET until first computed (Any: the sentinel shares
    # the slot with the cached value).
    _hash: Any
    _structural_key: Any
    _normal_form: Any
    _canonical: Any
    _body_vars: Any
    _all_vars: Any
    _constants: Any
    _variable_names: Any
    _dedup: Any
    _body_plan: Any

    def __init__(
        self,
        head_predicate: str,
        head_terms: Sequence[object],
        body: Sequence[Atom],
        validate: bool = True,
    ):
        set_slot = object.__setattr__
        set_slot(self, "head_predicate", head_predicate)
        set_slot(self, "head_terms", tuple(term_from_value(t) for t in head_terms))
        set_slot(self, "body", tuple(body))
        set_slot(self, "_hash", _UNSET)
        set_slot(self, "_structural_key", _UNSET)
        set_slot(self, "_normal_form", _UNSET)
        set_slot(self, "_canonical", _UNSET)
        set_slot(self, "_body_vars", _UNSET)
        set_slot(self, "_all_vars", _UNSET)
        set_slot(self, "_constants", _UNSET)
        set_slot(self, "_variable_names", _UNSET)
        set_slot(self, "_dedup", _UNSET)
        set_slot(self, "_body_plan", _UNSET)
        if validate:
            self._validate()

    # ------------------------------------------------------------------ #
    # Immutability, equality, pickling
    # ------------------------------------------------------------------ #
    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"ConjunctiveQuery is immutable; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"ConjunctiveQuery is immutable; cannot delete {attr!r}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, ConjunctiveQuery):
            return (
                self.head_predicate == other.head_predicate
                and self.head_terms == other.head_terms
                and self.body == other.body
            )
        return NotImplemented

    def __hash__(self) -> int:
        cached = self._hash
        if cached is _UNSET:
            cached = hash((self.head_predicate, self.head_terms, self.body))
            object.__setattr__(self, "_hash", cached)
        return cached  # type: ignore[return-value]

    def __reduce__(
        self,
    ) -> tuple[type["ConjunctiveQuery"], tuple[str, tuple[Term, ...], tuple[Atom, ...], bool]]:
        # Rebuild through the constructor (skipping re-validation: the query
        # was validated when first built) so terms and atoms re-intern and
        # the memo slots start fresh in the receiving process.
        return (ConjunctiveQuery, (self.head_predicate, self.head_terms, self.body, False))

    # ------------------------------------------------------------------ #
    # Validation and basic accessors
    # ------------------------------------------------------------------ #
    def _validate(self) -> None:
        if not self.body:
            raise QueryError(
                f"query {self.head_predicate} has an empty body; CQ queries "
                "must have a nonempty conjunction of atoms"
            )
        body_vars = set(self.body_variables())
        for term in self.head_terms:
            if isinstance(term, Variable) and term not in body_vars:
                raise QueryError(
                    f"query {self.head_predicate} is unsafe: head variable "
                    f"{term} does not occur in the body"
                )

    def head_variables(self) -> list[Variable]:
        """Distinct head variables in first-occurrence order."""
        seen: dict[Variable, None] = {}
        for term in self.head_terms:
            if isinstance(term, Variable):
                seen.setdefault(term, None)
        return list(seen)

    def body_variables(self) -> list[Variable]:
        """Distinct body variables in first-occurrence order."""
        cached = self._body_vars
        if cached is _UNSET:
            cached = tuple(atoms_variables(self.body))
            object.__setattr__(self, "_body_vars", cached)
        return list(cached)  # type: ignore[arg-type]

    def existential_variables(self) -> list[Variable]:
        """Body variables that do not occur in the head."""
        head = set(self.head_variables())
        return [v for v in self.body_variables() if v not in head]

    def all_variables(self) -> list[Variable]:
        """Distinct variables of head and body, body order first."""
        cached = self._all_vars
        if cached is _UNSET:
            seen: dict[Variable, None] = {}
            for var in self.body_variables():
                seen.setdefault(var, None)
            for var in self.head_variables():
                seen.setdefault(var, None)
            cached = tuple(seen)
            object.__setattr__(self, "_all_vars", cached)
        return list(cached)  # type: ignore[arg-type]

    def variable_names(self) -> frozenset[str]:
        """The names of every variable of the query (head or body), memoized.

        The chase consults this set once per applied step (fresh existential
        variables must not collide with any query variable).
        """
        cached = self._variable_names
        if cached is _UNSET:
            cached = frozenset(v.name for v in self.all_variables())
            object.__setattr__(self, "_variable_names", cached)
        return cached  # type: ignore[return-value]

    def constants(self) -> list[Constant]:
        """Distinct constants occurring in head or body."""
        cached = self._constants
        if cached is _UNSET:
            seen: dict[Constant, None] = {}
            for const in atoms_constants(self.body):
                seen.setdefault(const, None)
            for term in self.head_terms:
                if isinstance(term, Constant):
                    seen.setdefault(term, None)
            cached = tuple(seen)
            object.__setattr__(self, "_constants", cached)
        return list(cached)  # type: ignore[arg-type]

    def body_plan(self) -> MatchPlan:
        """The body compiled as a :class:`~repro.core.plan.MatchPlan`, memoized.

        Used when this query's body is the *source* side of a homomorphism
        search — containment mappings, assignment enumeration — so the slot
        assignment is computed once per query object.
        """
        cached = self._body_plan
        if cached is _UNSET:
            cached = MatchPlan(self.body)
            object.__setattr__(self, "_body_plan", cached)
        return cached  # type: ignore[return-value]

    def predicates(self) -> set[str]:
        """The set of predicate names used in the body."""
        return {atom.predicate for atom in self.body}

    def predicate_counts(self) -> Counter[str]:
        """Multiplicity of each predicate among the body subgoals."""
        return Counter(atom.predicate for atom in self.body)

    @property
    def head_atom(self) -> Atom:
        """The head rendered as an atom (useful for printing and hashing)."""
        return Atom(self.head_predicate, self.head_terms)

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def canonical_representation(self) -> "ConjunctiveQuery":
        """Drop duplicate body atoms (the paper's canonical representation).

        Used by Theorem 2.1(2): two CQ queries are bag-set equivalent iff
        their canonical representations are bag equivalent (isomorphic).
        Memoized: the bag-set equivalence test canonicalizes both sides on
        every decide, which on a warm session is always the same two query
        objects.
        """
        cached = self._canonical
        if cached is _UNSET:
            seen: dict[Atom, None] = {}
            for atom in self.body:
                seen.setdefault(atom, None)
            if len(seen) == len(self.body):
                cached = self
            else:
                cached = ConjunctiveQuery(
                    self.head_predicate, self.head_terms, tuple(seen)
                )
            object.__setattr__(self, "_canonical", cached)
        return cached  # type: ignore[return-value]

    def drop_duplicates_for(
        self, set_valued_predicates: Iterable[str]
    ) -> "ConjunctiveQuery":
        """Drop duplicate subgoals only for predicates in *set_valued_predicates*.

        This is the transformation of Theorem 4.2: only subgoals whose
        relations are forced to be set valued may be deduplicated without
        changing the query's bag semantics.  Memoized per distinct predicate
        set (the Theorem 4.2 equivalence test re-applies it to the same
        chased queries on every warm decide).
        """
        allowed = frozenset(set_valued_predicates)
        memo = self._dedup
        if memo is _UNSET:
            memo = {}
            object.__setattr__(self, "_dedup", memo)
        result = memo.get(allowed)  # type: ignore[union-attr]
        if result is None:
            kept: list[Atom] = []
            seen: set[Atom] = set()
            for atom in self.body:
                if atom.predicate in allowed:
                    if atom in seen:
                        continue
                    seen.add(atom)
                kept.append(atom)
            if len(kept) == len(self.body):
                result = self
            else:
                result = ConjunctiveQuery(
                    self.head_predicate, self.head_terms, tuple(kept)
                )
            memo[allowed] = result  # type: ignore[index]
        return result

    def substitute(self, mapping: Mapping[Term, Term]) -> "ConjunctiveQuery":
        """Apply a term substitution to head and body.

        Safety is re-checked because an arbitrary substitution could in
        principle break it; substitutions produced by the chase never do.
        """
        head = tuple(mapping.get(t, t) for t in self.head_terms)
        return ConjunctiveQuery(
            self.head_predicate, head, substitute_atoms(self.body, mapping)
        )

    def rename_variables(
        self, mapping: Mapping[Variable, Variable]
    ) -> "ConjunctiveQuery":
        """Rename variables according to *mapping* (a special-case substitute)."""
        return self.substitute(dict(mapping))

    def freshen(
        self, avoid: Iterable[Variable] = (), prefix: str = "_r"
    ) -> tuple["ConjunctiveQuery", dict[Variable, Variable]]:
        """Return a variable-disjoint copy plus the renaming that produced it.

        Every variable of the query is renamed to a fresh variable whose name
        collides neither with *avoid* nor with the query's own variables.
        """
        avoid_names = {v.name for v in avoid} | self.variable_names()
        factory = FreshVariableFactory(avoid_names, prefix=prefix)
        renaming = {v: factory(hint=f"{prefix}_{v.name}") for v in self.all_variables()}
        return self.rename_variables(renaming), renaming

    def with_body(self, body: Sequence[Atom]) -> "ConjunctiveQuery":
        """Return a copy of the query with *body* as its new body."""
        return ConjunctiveQuery(self.head_predicate, self.head_terms, tuple(body))

    def add_atoms(self, atoms: Sequence[Atom]) -> "ConjunctiveQuery":
        """Return a copy with *atoms* appended to the body."""
        return self.with_body(self.body + tuple(atoms))

    def drop_atom_at(self, index: int) -> "ConjunctiveQuery":
        """Return a copy with the body atom at *index* removed."""
        if not 0 <= index < len(self.body):
            raise QueryError(f"no body atom at index {index}")
        body = self.body[:index] + self.body[index + 1 :]
        return ConjunctiveQuery(self.head_predicate, self.head_terms, body)

    # ------------------------------------------------------------------ #
    # Normal form, equality, display
    # ------------------------------------------------------------------ #
    def normal_form(self) -> "ConjunctiveQuery":
        """A deterministic renaming of variables used for deduplication.

        Variables are renamed to ``V0, V1, ...`` in order of first occurrence
        (head first, then body, in body order).  Two queries that are
        identical up to variable renaming have equal normal forms; the
        operation is idempotent.  It deliberately does **not** canonicalise
        body order or detect general isomorphism — use
        :func:`repro.core.homomorphism.are_isomorphic` for the real test.
        """
        cached = self._normal_form
        if cached is _UNSET:
            order: dict[Variable, Variable] = {}

            def canon(term: Term) -> Term:
                if isinstance(term, Variable):
                    renamed = order.get(term)
                    if renamed is None:
                        renamed = Variable(f"V{len(order)}")
                        order[term] = renamed
                    return renamed
                return term

            head = tuple(canon(t) for t in self.head_terms)
            body = tuple(
                Atom(a.predicate, [canon(t) for t in a.terms]) for a in self.body
            )
            cached = ConjunctiveQuery(self.head_predicate, head, body)
            # The normal form is idempotent; short-circuit repeat calls on it.
            object.__setattr__(cached, "_normal_form", cached)
            object.__setattr__(self, "_normal_form", cached)
        return cached  # type: ignore[return-value]

    def structural_key(self) -> tuple:
        """Hashable key of the normal form, for dictionaries and set lookups.

        Memoized: the same tuple object is returned on every call, so
        containers holding it (the chase cache, the assignment-fixing memo)
        compare mostly by element identity.
        """
        cached = self._structural_key
        if cached is _UNSET:
            CANONICALIZATION_STATS.misses += 1
            nf = self.normal_form()
            cached = (nf.head_predicate, nf.head_terms, nf.body)
            object.__setattr__(self, "_structural_key", cached)
        else:
            CANONICALIZATION_STATS.hits += 1
        return cached  # type: ignore[return-value]

    def __str__(self) -> str:
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.head_atom} :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConjunctiveQuery({self!s})"


def cq(head: str, head_terms: Sequence[object], *body: Atom) -> ConjunctiveQuery:
    """Small convenience constructor: ``cq("Q", ["X"], Atom("p", ["X", "Y"]))``."""
    return ConjunctiveQuery(head, head_terms, list(body))
