"""Compiled match plans: a conjunction of atoms as flat int arrays.

Every homomorphism search walks the same source conjunction — a tgd premise,
a tgd conclusion, an egd premise, a query body — thousands of times per chase
run, and before this module each walk re-discovered the same structure from
the term objects: which positions hold constants, which variables repeat,
which variable a position binds.  A :class:`MatchPlan` extracts that
structure **once**:

* every distinct variable of the source gets a dense *slot* index, assigned
  in first-occurrence order (head-to-tail through the atoms), so a working
  mapping is a preallocated int array indexed by slot instead of a hash
  dictionary keyed by term objects;
* every atom is compiled to its interned ``sig_id`` plus a tuple of per
  position *codes*: a code ``>= 0`` is the slot of the variable at that
  position, a code ``< 0`` encodes the intern ``uid`` of the constant there
  (``code == ~uid``), so the match kernel decides constant-vs-variable with
  a sign test instead of an ``isinstance`` call.

The int-array search kernel itself lives in
:mod:`repro.core.homomorphism` (:func:`~repro.core.homomorphism.iter_matches`)
next to the :class:`~repro.core.homomorphism.TargetIndex` it probes; plans
are pure data and carry no search state, so one plan serves any number of
concurrent searches against any number of targets.

Like term uids and ``sig_id``s, the compiled codes are **process-local**:
they embed intern uids, so plans must never be pickled or shared across
processes (they are not — the chase's plan cache is per process).
"""

from __future__ import annotations

from typing import Sequence

from .atoms import Atom
from .terms import Constant, Variable


class MatchPlan:
    """A source conjunction compiled to flat int arrays (see module docs).

    The plan is immutable with respect to its inputs: ``atoms`` keeps the
    original atoms alive (their terms anchor the uids the codes embed),
    ``slot_vars`` maps a slot back to its :class:`Variable` for the result
    boundary, and ``slot_of`` maps a variable's intern uid to its slot for
    pre-binding ``fixed`` mappings.
    """

    __slots__ = ("atoms", "sig_ids", "codes", "slot_vars", "slot_of", "max_arity")

    #: The source atoms, in the order they were given.
    atoms: tuple[Atom, ...]
    #: Per atom, its interned ``(predicate, arity)`` signature int.
    sig_ids: tuple[int, ...]
    #: Per atom, per position: slot index (``>= 0``) or ``~uid`` of a constant.
    codes: tuple[tuple[int, ...], ...]
    #: Slot index → the variable bound by that slot.
    slot_vars: tuple[Variable, ...]
    #: Variable intern uid → slot index.
    slot_of: dict[int, int]
    #: Widest atom arity (sizes the kernel's per-candidate scratch array).
    max_arity: int

    def __init__(self, atoms: Sequence[Atom]):
        source = tuple(atoms)
        slot_of: dict[int, int] = {}
        slot_vars: list[Variable] = []
        sig_ids: list[int] = []
        codes: list[tuple[int, ...]] = []
        max_arity = 0
        for atom in source:
            sig_ids.append(atom.sig_id)
            atom_codes: list[int] = []
            for term in atom.terms:
                if isinstance(term, Constant):
                    atom_codes.append(~term.uid)
                else:
                    uid = term.uid
                    slot = slot_of.get(uid)
                    if slot is None:
                        slot = len(slot_vars)
                        slot_of[uid] = slot
                        slot_vars.append(term)
                    atom_codes.append(slot)
            codes.append(tuple(atom_codes))
            if len(atom_codes) > max_arity:
                max_arity = len(atom_codes)
        set_slot = object.__setattr__
        set_slot(self, "atoms", source)
        set_slot(self, "sig_ids", tuple(sig_ids))
        set_slot(self, "codes", tuple(codes))
        set_slot(self, "slot_vars", tuple(slot_vars))
        set_slot(self, "slot_of", slot_of)
        set_slot(self, "max_arity", max_arity)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"MatchPlan is immutable; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"MatchPlan is immutable; cannot delete {attr!r}")

    @property
    def n_slots(self) -> int:
        """Number of distinct variables in the source conjunction."""
        return len(self.slot_vars)

    @property
    def n_atoms(self) -> int:
        """Number of source atoms."""
        return len(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatchPlan({len(self.atoms)} atoms, {len(self.slot_vars)} slots)"
        )


def shared_slot_links(
    source: MatchPlan, extension: MatchPlan
) -> tuple[tuple[int, int], ...]:
    """``(extension_slot, source_slot)`` pairs for the variables both plans bind.

    A completed *source* search (e.g. a tgd premise match) fixes exactly the
    shared variables of an *extension* plan (the tgd's conclusion); the kernel
    extension probe (:func:`repro.core.homomorphism.has_match_from_binding`)
    seeds the extension's slot array through these links straight from the
    source's slot array — slot to slot, uid to uid, no term objects.  The
    pairs are ordered by extension slot.  Like the plans themselves the links
    embed nothing process-portable and are compiled once per dependency (see
    :class:`repro.chase.plans.TGDPlan`).
    """
    source_slot_of = source.slot_of
    links: list[tuple[int, int]] = []
    for extension_slot, variable in enumerate(extension.slot_vars):
        source_slot = source_slot_of.get(variable.uid)
        if source_slot is not None:
            links.append((extension_slot, source_slot))
    return tuple(links)
