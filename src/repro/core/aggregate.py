"""Aggregate conjunctive queries (Section 2.5 of the paper).

An aggregate query is a conjunctive query whose head carries one aggregate
term ``α(Y)`` in addition to its grouping terms::

    Q(S̄, α(Y)) :- A(S̄, Y, Z̄)

The supported aggregate functions are ``sum``, ``count``, ``count(*)``,
``max``, and ``min`` — exactly the ones the paper handles.  The *core* of an
aggregate query (written Q̆ in the paper) is the plain conjunctive query that
returns the grouping terms followed by the aggregated argument; equivalence
of aggregate queries reduces to set / bag-set equivalence of cores
(Theorems 2.3 and 6.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Sequence

from ..exceptions import QueryError
from .atoms import Atom
from .query import ConjunctiveQuery
from .terms import Term, Variable, term_from_value


class AggregateFunction(enum.Enum):
    """The aggregate functions covered by the paper."""

    SUM = "sum"
    COUNT = "count"
    COUNT_STAR = "count(*)"
    MAX = "max"
    MIN = "min"

    @property
    def is_duplicate_sensitive(self) -> bool:
        """True when the function's value depends on duplicate multiplicities.

        ``sum`` and ``count`` are duplicate sensitive (their equivalence
        reduces to bag-set equivalence of cores); ``max`` and ``min`` are not
        (their equivalence reduces to set equivalence of cores).
        """
        return self in (
            AggregateFunction.SUM,
            AggregateFunction.COUNT,
            AggregateFunction.COUNT_STAR,
        )

    @classmethod
    def from_name(cls, name: str) -> "AggregateFunction":
        """Parse an aggregate-function name, case insensitively."""
        lowered = name.strip().lower()
        if lowered in ("count(*)", "count_star"):
            return cls.COUNT_STAR
        for member in cls:
            if member.value == lowered:
                return member
        raise QueryError(f"unknown aggregate function {name!r}")


@dataclass(frozen=True)
class AggregateTerm:
    """An aggregate term ``function(argument)`` in a query head.

    ``COUNT_STAR`` takes no argument; every other function takes exactly one
    variable argument.
    """

    function: AggregateFunction
    argument: Variable | None

    def __init__(self, function: AggregateFunction | str, argument: object = None):
        if isinstance(function, str):
            function = AggregateFunction.from_name(function)
        object.__setattr__(self, "function", function)
        if function is AggregateFunction.COUNT_STAR:
            if argument is not None:
                raise QueryError("count(*) takes no argument")
            object.__setattr__(self, "argument", None)
        else:
            if argument is None:
                raise QueryError(f"aggregate {function.value} requires an argument")
            term = term_from_value(argument)
            if not isinstance(term, Variable):
                raise QueryError(
                    f"aggregate argument must be a variable, got {term!r}"
                )
            object.__setattr__(self, "argument", term)

    def __str__(self) -> str:
        if self.function is AggregateFunction.COUNT_STAR:
            return "count(*)"
        return f"{self.function.value}({self.argument})"


@dataclass(frozen=True)
class AggregateQuery:
    """An aggregate query ``Q(grouping_terms, aggregate) :- body``."""

    head_predicate: str
    grouping_terms: tuple[Term, ...]
    aggregate: AggregateTerm
    body: tuple[Atom, ...]

    def __init__(
        self,
        head_predicate: str,
        grouping_terms: Sequence[object],
        aggregate: AggregateTerm,
        body: Sequence[Atom],
    ):
        object.__setattr__(self, "head_predicate", head_predicate)
        object.__setattr__(
            self, "grouping_terms", tuple(term_from_value(t) for t in grouping_terms)
        )
        object.__setattr__(self, "aggregate", aggregate)
        object.__setattr__(self, "body", tuple(body))
        self._validate()

    def _validate(self) -> None:
        if not self.body:
            raise QueryError("aggregate query must have a nonempty body")
        body_vars = {v for atom in self.body for v in atom.variables()}
        for term in self.grouping_terms:
            if isinstance(term, Variable) and term not in body_vars:
                raise QueryError(
                    f"aggregate query is unsafe: grouping variable {term} "
                    "does not occur in the body"
                )
        arg = self.aggregate.argument
        if arg is not None:
            if arg not in body_vars:
                raise QueryError(
                    f"aggregate query is unsafe: aggregated variable {arg} "
                    "does not occur in the body"
                )
            if arg in self.grouping_terms:
                raise QueryError(
                    f"aggregated variable {arg} must not be a grouping term "
                    "(Section 2.5 of the paper)"
                )

    # ------------------------------------------------------------------ #
    def core(self) -> ConjunctiveQuery:
        """The unaggregated core Q̆ of the query (Section 2.5).

        The core returns the grouping terms followed by the aggregated
        argument (omitted for ``count(*)``), over the same body.
        """
        head_terms: list[object] = list(self.grouping_terms)
        if self.aggregate.argument is not None:
            head_terms.append(self.aggregate.argument)
        return ConjunctiveQuery(self.head_predicate, head_terms, self.body)

    def with_core(self, core: ConjunctiveQuery) -> "AggregateQuery":
        """Reattach this query's head (grouping + aggregate) onto *core*'s body.

        This is how Max-Min-C&B and Sum-Count-C&B turn a reformulated core
        back into an aggregate reformulation (Section 6.3).
        """
        return AggregateQuery(
            self.head_predicate, self.grouping_terms, self.aggregate, core.body
        )

    def is_compatible_with(self, other: "AggregateQuery") -> bool:
        """Compatibility in the sense of Definition 2.1.

        Two aggregate queries are compatible when they have the same list of
        head arguments: same grouping terms and the same aggregate term.
        """
        return (
            self.grouping_terms == other.grouping_terms
            and self.aggregate == other.aggregate
        )

    def __str__(self) -> str:
        grouping = ", ".join(str(t) for t in self.grouping_terms)
        head_args = f"{grouping}, {self.aggregate}" if grouping else str(self.aggregate)
        body = ", ".join(str(atom) for atom in self.body)
        return f"{self.head_predicate}({head_args}) :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AggregateQuery({self!s})"
