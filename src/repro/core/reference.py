"""Frozen pre-index homomorphism search, kept as a differential baseline.

This module preserves, verbatim, the plain backtracking homomorphism search
that :mod:`repro.core.homomorphism` shipped with before the indexed engine
replaced it: a per-predicate candidate list, a most-constrained-atom-first
selection loop, and no constant- or binding-position filtering.

It exists for two reasons and must not grow features:

* the randomized differential tests assert that the indexed engine yields
  *exactly* the same homomorphisms in *exactly* the same order as this
  implementation, on generated inputs covering constants, repeated
  variables, and repeated predicates;
* the chase scaling benchmark (``benchmarks/bench_chase_scaling.py``)
  measures the cold-path speedup of the indexed/delta chase against the
  pre-PR behaviour, which needs the old search to stay runnable.

The deterministic enumeration order of this search is the order every chase
strategy's step records are pinned to, so any change here would silently
move the goalposts of the equivalence tests.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterator, Mapping, Sequence

from .atoms import Atom
from .homomorphism import Homomorphism, _compatible
from .terms import Constant, Term


def _candidate_index_reference(target: Sequence[Atom]) -> dict[str, list[Atom]]:
    index: dict[str, list[Atom]] = defaultdict(list)
    for atom in target:
        index[atom.predicate].append(atom)
    return index


def iter_homomorphisms_reference(
    source: Sequence[Atom],
    target: Sequence[Atom],
    fixed: Mapping[Term, Term] | None = None,
) -> Iterator[Homomorphism]:
    """Yield every homomorphism from *source* to *target* extending *fixed*.

    Byte-for-byte the pre-index implementation of
    :func:`repro.core.homomorphism.iter_homomorphisms`.
    """
    index = _candidate_index_reference(target)
    base: Homomorphism = dict(fixed or {})
    # Constants in the fixed mapping must be identity (defensive check).
    for key, value in base.items():
        if isinstance(key, Constant) and key != value:
            return

    source_atoms = list(source)

    def candidates(atom: Atom, mapping: Homomorphism) -> list[Homomorphism]:
        found = []
        for target_atom in index.get(atom.predicate, ()):
            extension = _compatible(atom, target_atom, mapping)
            if extension is not None:
                found.append(extension)
        return found

    def search(remaining: list[Atom], mapping: Homomorphism) -> Iterator[Homomorphism]:
        if not remaining:
            yield dict(mapping)
            return
        # Most-constrained-first: pick the remaining atom with the fewest
        # compatible target atoms under the current mapping.
        best_idx = 0
        best_candidates: list[Homomorphism] | None = None
        for idx, atom in enumerate(remaining):
            cands = candidates(atom, mapping)
            if best_candidates is None or len(cands) < len(best_candidates):
                best_idx, best_candidates = idx, cands
                if not cands:
                    return
        atom = remaining[best_idx]
        rest = remaining[:best_idx] + remaining[best_idx + 1 :]
        assert best_candidates is not None
        for extension in best_candidates:
            mapping.update(extension)
            yield from search(rest, mapping)
            for key in extension:
                del mapping[key]

    yield from search(source_atoms, base)


def find_homomorphism_reference(
    source: Sequence[Atom],
    target: Sequence[Atom],
    fixed: Mapping[Term, Term] | None = None,
) -> Homomorphism | None:
    """Return one homomorphism from *source* to *target*, or None."""
    for hom in iter_homomorphisms_reference(source, target, fixed):
        return hom
    return None
