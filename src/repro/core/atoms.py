"""Relational and equality atoms.

An :class:`Atom` is a relational atom ``p(t1, ..., tk)`` — the building block
of conjunctive-query bodies, dependency premises, and dependency conclusions.
An :class:`EqualityAtom` ``t1 = t2`` appears only on the right-hand side of
equality-generating dependencies (egds) and inside raw embedded dependencies
before normalisation (Section 2.4 of the paper).

Atoms are immutable and hashable so that query bodies can be treated both as
sequences (bag semantics cares about duplicate subgoals) and as sets
(canonical representations drop duplicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from .terms import Constant, Term, Variable, term_from_value


@dataclass(frozen=True)
class Atom:
    """A relational atom ``predicate(terms...)``."""

    predicate: str
    terms: tuple[Term, ...]

    def __init__(self, predicate: str, terms: Sequence[object]):
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(
            self, "terms", tuple(term_from_value(t) for t in terms)
        )

    @property
    def arity(self) -> int:
        """Number of argument positions of the atom."""
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom in position order (with repeats)."""
        for term in self.terms:
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[Constant]:
        """Yield the constants of the atom in position order (with repeats)."""
        for term in self.terms:
            if isinstance(term, Constant):
                yield term

    def variable_set(self) -> frozenset[Variable]:
        """The set of distinct variables used by the atom."""
        return frozenset(self.variables())

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply *mapping* to every term; unmapped terms are kept as is."""
        return Atom(self.predicate, [mapping.get(t, t) for t in self.terms])

    def is_ground(self) -> bool:
        """True when every term is a constant (i.e. the atom denotes a tuple)."""
        return all(isinstance(t, Constant) for t in self.terms)

    def to_tuple(self) -> tuple[object, ...]:
        """Return the tuple of constant values for a ground atom."""
        if not self.is_ground():
            raise ValueError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Atom({self.predicate!r}, {list(self.terms)!r})"


@dataclass(frozen=True)
class EqualityAtom:
    """An equality ``left = right`` between two terms."""

    left: Term
    right: Term

    def __init__(self, left: object, right: object):
        object.__setattr__(self, "left", term_from_value(left))
        object.__setattr__(self, "right", term_from_value(right))

    def substitute(self, mapping: Mapping[Term, Term]) -> "EqualityAtom":
        """Apply *mapping* to both sides."""
        return EqualityAtom(
            mapping.get(self.left, self.left), mapping.get(self.right, self.right)
        )

    def variables(self) -> Iterator[Variable]:
        """Yield the variables among the two sides."""
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term

    def is_trivial(self) -> bool:
        """True when both sides are syntactically identical."""
        return self.left == self.right

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


def atoms_variables(atoms: Sequence[Atom]) -> list[Variable]:
    """Distinct variables of a conjunction of atoms, in first-occurrence order."""
    seen: dict[Variable, None] = {}
    for atom in atoms:
        for var in atom.variables():
            seen.setdefault(var, None)
    return list(seen)


def atoms_constants(atoms: Sequence[Atom]) -> list[Constant]:
    """Distinct constants of a conjunction of atoms, in first-occurrence order."""
    seen: dict[Constant, None] = {}
    for atom in atoms:
        for const in atom.constants():
            seen.setdefault(const, None)
    return list(seen)


def substitute_atoms(
    atoms: Sequence[Atom], mapping: Mapping[Term, Term]
) -> tuple[Atom, ...]:
    """Apply *mapping* to every atom in *atoms*."""
    return tuple(atom.substitute(mapping) for atom in atoms)
