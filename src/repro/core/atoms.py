"""Relational and equality atoms, with precomputed signatures.

An :class:`Atom` is a relational atom ``p(t1, ..., tk)`` — the building block
of conjunctive-query bodies, dependency premises, and dependency conclusions.
An :class:`EqualityAtom` ``t1 = t2`` appears only on the right-hand side of
equality-generating dependencies (egds) and inside raw embedded dependencies
before normalisation (Section 2.4 of the paper).

Atoms are immutable and hashable so that query bodies can be treated both as
sequences (bag semantics cares about duplicate subgoals) and as sets
(canonical representations drop duplicates).  On top of the interned terms of
:mod:`repro.core.terms`, every atom precomputes at construction:

* its hash (atoms are dictionary keys in every canonicalization and
  deduplication path);
* its ``signature`` — the ``(predicate, arity)`` pair — and ``sig_id``, a
  process-unique small int interned per signature
  (:func:`signature_id`), which the
  :class:`~repro.core.homomorphism.TargetIndex` uses as an integer group
  key instead of hashing a ``(str, int)`` tuple per probe;
* ``term_ids`` — the tuple of its terms' intern ``uid`` ints, the raw
  material of integer posting-list keys.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, Mapping, Sequence

from .terms import Constant, Term, Variable, term_from_value

#: Intern table for atom signatures: ``(predicate, arity) → small int``.
_SIGNATURE_IDS: Dict[tuple[str, int], int] = {}
#: Guards id assignment: unlike the term tables (where a lost race merely
#: discards the loser), two *different* signatures racing on
#: ``len(_SIGNATURE_IDS)`` would permanently share one id and merge their
#: TargetIndex groups.  The lock is only taken on a table miss — once per
#: distinct signature per process.
_SIGNATURE_LOCK = threading.Lock()


def signature_id(predicate: str, arity: int) -> int:
    """The process-unique small int interned for ``(predicate, arity)``.

    Ids are assigned densely in first-interning order, so they double as
    array indexes where needed.
    """
    key = (predicate, arity)
    sig = _SIGNATURE_IDS.get(key)
    if sig is None:
        with _SIGNATURE_LOCK:
            sig = _SIGNATURE_IDS.setdefault(key, len(_SIGNATURE_IDS))
    return sig


class Atom:
    """A relational atom ``predicate(terms...)``."""

    __slots__ = ("predicate", "terms", "signature", "sig_id", "term_ids", "_hash")

    predicate: str
    terms: tuple[Term, ...]
    #: The ``(predicate, arity)`` pair, precomputed.
    signature: tuple[str, int]
    #: Interned int for :attr:`signature` (see :func:`signature_id`).
    sig_id: int
    #: The terms' intern uids, in position order.
    term_ids: tuple[int, ...]
    _hash: int

    def __init__(self, predicate: str, terms: Sequence[object]):
        object.__setattr__(self, "predicate", predicate)
        interned = tuple(term_from_value(t) for t in terms)
        object.__setattr__(self, "terms", interned)
        object.__setattr__(self, "signature", (predicate, len(interned)))
        object.__setattr__(self, "sig_id", signature_id(predicate, len(interned)))
        object.__setattr__(self, "term_ids", tuple(t.uid for t in interned))
        # Same formula as the frozen dataclass this replaced; term hashes are
        # cached, so hashing the tuple is a handful of int mixes.
        object.__setattr__(self, "_hash", hash((predicate, interned)))

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"Atom is immutable; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"Atom is immutable; cannot delete {attr!r}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Atom):
            # Interned terms make the tuple comparison mostly identity checks.
            return (
                self._hash == other._hash
                and self.predicate == other.predicate
                and self.terms == other.terms
            )
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple[type["Atom"], tuple[str, tuple[Term, ...]]]:
        # Reconstruct through the constructor so terms re-intern and the
        # cached signature/hash fields are rebuilt in the receiving process.
        return (Atom, (self.predicate, self.terms))

    @property
    def arity(self) -> int:
        """Number of argument positions of the atom."""
        return len(self.terms)

    def variables(self) -> Iterator[Variable]:
        """Yield the variables of the atom in position order (with repeats)."""
        for term in self.terms:
            if isinstance(term, Variable):
                yield term

    def constants(self) -> Iterator[Constant]:
        """Yield the constants of the atom in position order (with repeats)."""
        for term in self.terms:
            if isinstance(term, Constant):
                yield term

    def variable_set(self) -> frozenset[Variable]:
        """The set of distinct variables used by the atom."""
        return frozenset(self.variables())

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Apply *mapping* to every term; unmapped terms are kept as is."""
        return Atom(self.predicate, [mapping.get(t, t) for t in self.terms])

    def is_ground(self) -> bool:
        """True when every term is a constant (i.e. the atom denotes a tuple)."""
        return all(isinstance(t, Constant) for t in self.terms)

    def to_tuple(self) -> tuple[object, ...]:
        """Return the tuple of constant values for a ground atom."""
        if not self.is_ground():
            raise ValueError(f"atom {self} is not ground")
        return tuple(t.value for t in self.terms)  # type: ignore[union-attr]

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Atom({self.predicate!r}, {list(self.terms)!r})"


class EqualityAtom:
    """An equality ``left = right`` between two terms."""

    __slots__ = ("left", "right", "_hash")

    left: Term
    right: Term
    _hash: int

    def __init__(self, left: object, right: object):
        interned_left = term_from_value(left)
        interned_right = term_from_value(right)
        object.__setattr__(self, "left", interned_left)
        object.__setattr__(self, "right", interned_right)
        object.__setattr__(self, "_hash", hash((interned_left, interned_right)))

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"EqualityAtom is immutable; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"EqualityAtom is immutable; cannot delete {attr!r}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, EqualityAtom):
            return self.left == other.left and self.right == other.right
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple[type["EqualityAtom"], tuple[Term, Term]]:
        return (EqualityAtom, (self.left, self.right))

    def substitute(self, mapping: Mapping[Term, Term]) -> "EqualityAtom":
        """Apply *mapping* to both sides."""
        return EqualityAtom(
            mapping.get(self.left, self.left), mapping.get(self.right, self.right)
        )

    def variables(self) -> Iterator[Variable]:
        """Yield the variables among the two sides."""
        for term in (self.left, self.right):
            if isinstance(term, Variable):
                yield term

    def is_trivial(self) -> bool:
        """True when both sides are syntactically identical."""
        return self.left == self.right

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EqualityAtom({self.left!r}, {self.right!r})"


def atoms_variables(atoms: Sequence[Atom]) -> list[Variable]:
    """Distinct variables of a conjunction of atoms, in first-occurrence order."""
    seen: dict[Variable, None] = {}
    for atom in atoms:
        for term in atom.terms:
            if isinstance(term, Variable):
                seen.setdefault(term, None)
    return list(seen)


def atoms_constants(atoms: Sequence[Atom]) -> list[Constant]:
    """Distinct constants of a conjunction of atoms, in first-occurrence order."""
    seen: dict[Constant, None] = {}
    for atom in atoms:
        for term in atom.terms:
            if isinstance(term, Constant):
                seen.setdefault(term, None)
    return list(seen)


def substitute_atoms(
    atoms: Sequence[Atom], mapping: Mapping[Term, Term]
) -> tuple[Atom, ...]:
    """Apply *mapping* to every atom in *atoms*."""
    return tuple(atom.substitute(mapping) for atom in atoms)
