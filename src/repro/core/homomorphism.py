"""Homomorphisms, containment mappings, and query isomorphism.

These are the workhorse procedures of the whole library:

* :func:`find_homomorphism` / :func:`iter_homomorphisms` — find mappings
  ``h`` from the variables of one conjunction of atoms to the terms of
  another such that every source atom is mapped onto some target atom and
  constants are preserved (Section 2.1 of the paper).
* :func:`find_containment_mapping` — a homomorphism between query bodies
  that also maps the head vector onto the head vector; existence of a
  containment mapping from ``Q2`` to ``Q1`` characterises set containment
  ``Q1 ⊑S Q2`` (Chandra–Merlin).
* :func:`find_isomorphism` / :func:`are_isomorphic` — a bijection between
  the two queries' subgoal occurrences compatible with a variable renaming;
  isomorphism characterises bag equivalence (Theorem 2.1(1)).

The search is backtracking with a most-constrained-atom-first heuristic,
run entirely over ints by :func:`iter_matches` — the **compiled match
kernel**:

* the source conjunction is compiled once into a
  :class:`~repro.core.plan.MatchPlan` (per-atom ``sig_id``, per-position
  slot/constant-uid codes, one dense *slot* per distinct variable);
* the working mapping is a preallocated int array indexed by slot — binding
  a variable writes a target term's intern ``uid`` into its slot, undoing a
  binding writes ``-1`` back — so the inner loops compare and assign small
  ints instead of hashing term objects into dictionaries;
* candidates come from a :class:`TargetIndex`: target atoms are indexed per
  ``sig_id`` and additionally per ``(sig_id, position, uid)`` posting list,
  so a source atom with a constant or an already-bound slot at some
  position is only checked against that position's posting list instead of
  every atom of its predicate;
* term objects reappear only at the result boundary, where the slot
  bindings are translated back into the ``{variable: term}`` dictionaries
  callers expect.

Selecting the atom with the fewest verified candidates doubles as forward
checking — a remaining atom with no candidate prunes the branch
immediately.  The enumeration order is *identical* to the plain
backtracking search this replaced (preserved verbatim in
:mod:`repro.core.reference`): candidates are verified in target-body order
and ties in the selection break toward the earlier source atom, so every
chase strategy built on top keeps its deterministic step sequence.  (The
kernel stops counting an atom's candidates once it has as many as the
current best — a count that large can never win the strictly-fewer
selection — which skips verification work without affecting the choice.)

Both halves of a search are reusable: a ``TargetIndex`` can be built once
and passed to many searches against the same target conjunction
(``iter_homomorphisms(..., index=...)``), and a ``MatchPlan`` can be
compiled once and passed to many searches from the same source
(``iter_homomorphisms(..., plan=...)``).  The chase drivers do exactly that
— inside one chase round every dependency probe hits the same query body
(one index per round), and the per-dependency premise/conclusion plans are
compiled once per Σ and reused across rounds *and runs* (see
:mod:`repro.chase.plans`).
"""

from __future__ import annotations

import sys
from collections import Counter
from typing import Iterator, Mapping, Sequence

from .atoms import Atom
from .plan import MatchPlan
from .query import ConjunctiveQuery
from .terms import Constant, Term, Variable

Homomorphism = dict[Term, Term]


def _compatible(
    source_atom: Atom, target_atom: Atom, mapping: Homomorphism
) -> Homomorphism | None:
    """Try to match *source_atom* onto *target_atom* under *mapping*.

    Returns the (new bindings only) extension of the mapping, or None when
    the atoms cannot be unified in the homomorphism direction.
    """
    if source_atom.predicate != target_atom.predicate:
        return None
    if source_atom.arity != target_atom.arity:
        return None
    new_bindings: Homomorphism = {}
    for s_term, t_term in zip(source_atom.terms, target_atom.terms):
        if isinstance(s_term, Constant):
            if s_term != t_term:
                return None
            continue
        bound = mapping.get(s_term, new_bindings.get(s_term))
        if bound is None:
            new_bindings[s_term] = t_term
        elif bound != t_term:
            return None
    return new_bindings


_EMPTY_IDS: tuple[int, ...] = ()


class TargetIndex:
    """Posting-list index over one target conjunction of atoms.

    Two layers are kept, both storing atom positions (indexes into the
    target sequence) in increasing order, so that any candidate list derived
    from them enumerates atoms in target-body order:

    * ``sig_id → [ids]`` — the full group a source atom could in principle
      map onto, keyed by the interned ``(predicate, arity)`` signature int;
    * ``(sig_id, position, term uid) → [ids]`` — atoms carrying the term
      with that intern uid at *position*, used to narrow the group through
      the source atom's constants and already-bound variables.

    The index is immutable with respect to its atoms and reusable across any
    number of searches against the same target; ``lookups`` / ``narrowed``
    count how often a candidate lookup happened and how often a posting list
    strictly narrowed (or emptied) the predicate group — the chase profiler
    reports their ratio as the index hit rate — and ``searches`` counts the
    kernel searches run against the index.
    """

    __slots__ = (
        "atoms",
        "_groups",
        "_postings",
        "lookups",
        "narrowed",
        "searches",
        "extension_probes",
        "dicts_avoided",
    )

    def __init__(self, atoms: Sequence[Atom]):
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        self._groups: dict[int, list[int]] = {}
        self._postings: dict[tuple[int, int, int], list[int]] = {}
        groups, postings = self._groups, self._postings
        for atom_id, atom in enumerate(self.atoms):
            sig_id = atom.sig_id
            group = groups.get(sig_id)
            if group is None:
                groups[sig_id] = [atom_id]
            else:
                group.append(atom_id)
            for position, term_uid in enumerate(atom.term_ids):
                key = (sig_id, position, term_uid)
                posting = postings.get(key)
                if posting is None:
                    postings[key] = [atom_id]
                else:
                    posting.append(atom_id)
        self.lookups = 0
        self.narrowed = 0
        self.searches = 0
        # Binding-level applicability accounting, incremented by the chase
        # steps layer (see repro.chase.steps): conclusion probes run directly
        # on a premise slot array, and premise matches discharged there
        # without ever materializing a {variable: term} dict.
        self.extension_probes = 0
        self.dicts_avoided = 0

    def candidate_ids(
        self, atom: Atom, mapping: Mapping[Term, Term]
    ) -> Sequence[int]:
        """Ids of target atoms *atom* could map onto under *mapping*.

        A superset of the true candidates (within-atom repeated variables are
        left to :func:`_compatible`), narrowed through the most selective
        constant or bound position, in target-body order.
        """
        self.lookups += 1
        best = self._groups.get(atom.sig_id)
        if best is None:
            return _EMPTY_IDS
        group_size = len(best)
        sig_id = atom.sig_id
        for position, term in enumerate(atom.terms):
            if isinstance(term, Constant):
                image: Term = term
            else:
                bound = mapping.get(term)
                if bound is None:
                    continue
                image = bound
            posting = self._postings.get((sig_id, position, image.uid))
            if posting is None:
                self.narrowed += 1
                return _EMPTY_IDS
            if len(posting) < len(best):
                best = posting
        if len(best) < group_size:
            self.narrowed += 1
        return best

    def candidate_ids_coded(
        self, sig_id: int, codes: Sequence[int], binding: Sequence[int]
    ) -> Sequence[int]:
        """The int-kernel variant of :meth:`candidate_ids`.

        *codes* are a :class:`~repro.core.plan.MatchPlan` atom's per-position
        codes and *binding* the kernel's slot array; the narrowing walk is the
        same as the term-based lookup (first-to-last position, keep the
        strictly smallest posting) but never touches a term object.
        """
        self.lookups += 1
        best = self._groups.get(sig_id)
        if best is None:
            return _EMPTY_IDS
        group_size = len(best)
        postings = self._postings
        for position, code in enumerate(codes):
            if code >= 0:
                uid = binding[code]
                if uid < 0:
                    continue
            else:
                uid = ~code
            posting = postings.get((sig_id, position, uid))
            if posting is None:
                self.narrowed += 1
                return _EMPTY_IDS
            if len(posting) < len(best):
                best = posting
        if len(best) < group_size:
            self.narrowed += 1
        return best

    def __len__(self) -> int:
        return len(self.atoms)


_NO_CAP = sys.maxsize


def _kernel_search(
    plan: MatchPlan,
    index: TargetIndex,
    binding: list[int],
    bound_terms: list[Term | None],
) -> Iterator[list[int]]:
    """The shared search core of the compiled match kernel.

    *binding* / *bound_terms* are the caller's slot arrays, possibly
    pre-bound (``-1`` = unbound); the search mutates them in place and
    yields its *trail* — the slots bound during the search, in binding
    order — once per full match.  At yield time every plan slot that any
    matched atom touches is bound; the arrays and the trail are reused
    between yields, so callers must copy whatever they keep.  Candidate
    exploration order is identical to the pre-kernel reference search
    (:func:`repro.core.reference.iter_homomorphisms_reference`).
    """
    atom_codes = plan.codes
    sig_ids = plan.sig_ids
    target_atoms = index.atoms
    candidate_ids = index.candidate_ids_coded
    remaining = list(range(len(atom_codes)))
    # Slots bound during the search, in binding order (excludes any
    # pre-bound slots, which the caller owns).
    trail: list[int] = []
    # Per-candidate scratch of tentatively bound slots (avoids allocating a
    # list per verification).
    scratch = [0] * plan.max_arity
    # Free list of (empty) candidate lists: every search level runs one
    # verified_ids call per remaining atom and keeps only the winner, so
    # without pooling the kernel allocates a list per (level, atom) pair.
    pool: list[list[int]] = []

    def verified_ids(source_pos: int, cap: int) -> list[int] | None:
        """Target atom ids matching source atom *source_pos* under `binding`.

        Returns None as soon as *cap* candidates verify: the caller only
        wants strictly-fewer-than-cap lists, so a capped atom cannot win.
        The returned list is pool-owned — the caller releases it back via
        ``pool.append`` after clearing it.
        """
        codes = atom_codes[source_pos]
        ids: list[int] = pool.pop() if pool else []
        for atom_id in candidate_ids(sig_ids[source_pos], codes, binding):
            term_ids = target_atoms[atom_id].term_ids
            touched = 0
            ok = True
            for position, code in enumerate(codes):
                uid = term_ids[position]
                if code >= 0:
                    bound = binding[code]
                    if bound < 0:
                        binding[code] = uid
                        scratch[touched] = code
                        touched += 1
                    elif bound != uid:
                        ok = False
                        break
                elif ~code != uid:
                    ok = False
                    break
            while touched:
                touched -= 1
                binding[scratch[touched]] = -1
            if ok:
                ids.append(atom_id)
                if len(ids) >= cap:
                    ids.clear()
                    pool.append(ids)
                    return None
        return ids

    def search() -> Iterator[list[int]]:
        if not remaining:
            yield trail
            return
        # Most-constrained-first with forward checking: pick the remaining
        # atom with the fewest verified candidates under the current binding;
        # an atom with none prunes the branch outright.
        best_at = 0
        best_ids: list[int] | None = None
        cap = _NO_CAP
        for position, source_pos in enumerate(remaining):
            ids = verified_ids(source_pos, cap)
            if ids is None:
                continue
            if best_ids is not None:
                best_ids.clear()
                pool.append(best_ids)
            best_at, best_ids = position, ids
            if not ids:
                pool.append(ids)
                return
            cap = len(ids)
        source_pos = remaining.pop(best_at)
        codes = atom_codes[source_pos]
        assert best_ids is not None
        for atom_id in best_ids:
            target_atom = target_atoms[atom_id]
            term_ids = target_atom.term_ids
            terms = target_atom.terms
            bound_here = 0
            # Re-application of a verified candidate cannot fail: the binding
            # state is exactly what verified_ids checked it under.
            for position, code in enumerate(codes):
                if code >= 0 and binding[code] < 0:
                    binding[code] = term_ids[position]
                    bound_terms[code] = terms[position]
                    trail.append(code)
                    bound_here += 1
            yield from search()
            while bound_here:
                bound_here -= 1
                binding[trail.pop()] = -1
        remaining.insert(best_at, source_pos)
        best_ids.clear()
        pool.append(best_ids)

    yield from search()


def iter_matches(
    plan: MatchPlan,
    index: TargetIndex,
    fixed: Mapping[Term, Term] | None = None,
) -> Iterator[Homomorphism]:
    """The compiled match kernel: every homomorphism of *plan* into *index*.

    The working mapping is a slot-indexed int array (``-1`` = unbound); a
    parallel array of term objects records what each slot is bound to, so
    the result boundary — and nothing before it — builds the
    ``{variable: term}`` dictionaries callers consume.  Enumeration order is
    identical to :func:`repro.core.reference.iter_homomorphisms_reference`.
    """
    index.searches += 1
    base: Homomorphism = dict(fixed or {})
    # Constants in the fixed mapping must be identity (defensive check,
    # mirroring the reference search).
    for key, value in base.items():
        if isinstance(key, Constant) and key != value:
            return

    binding = [-1] * len(plan.slot_vars)
    bound_terms: list[Term | None] = [None] * len(plan.slot_vars)
    slot_of = plan.slot_of
    for key, value in base.items():
        if isinstance(key, Variable):
            slot = slot_of.get(key.uid)
            if slot is not None:
                binding[slot] = value.uid
                bound_terms[slot] = value

    slot_vars = plan.slot_vars
    for trail in _kernel_search(plan, index, binding, bound_terms):
        result = dict(base)
        for slot in trail:
            result[slot_vars[slot]] = bound_terms[slot]  # type: ignore[assignment]
        yield result


def iter_binding_matches(
    plan: MatchPlan,
    index: TargetIndex,
) -> Iterator[tuple[list[int], list[Term | None], list[int]]]:
    """Binding-level kernel matches: no dictionaries, only slot arrays.

    Yields ``(binding, bound_terms, trail)`` — the kernel's slot-uid array,
    the parallel term array, and the slots bound in binding order — once per
    full match of *plan* into *index*.  All three are **borrowed**: the
    kernel reuses them between yields and unwinds them on resumption, so a
    caller that keeps a match must copy what it needs (see
    :func:`repro.chase.steps.trigger_homomorphism` for the dict boundary).
    Enumeration order is identical to :func:`iter_matches` with no ``fixed``
    mapping.
    """
    index.searches += 1
    binding = [-1] * len(plan.slot_vars)
    bound_terms: list[Term | None] = [None] * len(plan.slot_vars)
    for trail in _kernel_search(plan, index, binding, bound_terms):
        yield binding, bound_terms, trail


def has_match_from_binding(
    plan: MatchPlan,
    index: TargetIndex,
    links: Sequence[tuple[int, int]],
    source_binding: Sequence[int],
) -> bool:
    """Does *plan* match into *index* under pre-bindings from another plan?

    The binding-level extension probe: *links* are ``(plan_slot,
    source_slot)`` pairs (see :func:`repro.core.plan.shared_slot_links`) and
    *source_binding* a completed slot array of the source plan; each linked
    slot of *plan* is seeded with the uid the source search bound, and the
    kernel then searches for one full match.  No ``{variable: term}``
    dictionary is built on either side — this replaces the
    ``find_match(plan, index, fixed=hom)`` idiom on the chase's tgd
    applicability hot path.
    """
    index.searches += 1
    binding = [-1] * len(plan.slot_vars)
    bound_terms: list[Term | None] = [None] * len(plan.slot_vars)
    for plan_slot, source_slot in links:
        binding[plan_slot] = source_binding[source_slot]
    for _ in _kernel_search(plan, index, binding, bound_terms):
        return True
    return False


def find_match(
    plan: MatchPlan,
    index: TargetIndex,
    fixed: Mapping[Term, Term] | None = None,
) -> Homomorphism | None:
    """The first kernel match of *plan* into *index*, or None."""
    for match in iter_matches(plan, index, fixed):
        return match
    return None


def iter_homomorphisms(
    source: Sequence[Atom],
    target: Sequence[Atom],
    fixed: Mapping[Term, Term] | None = None,
    *,
    index: TargetIndex | None = None,
    plan: MatchPlan | None = None,
) -> Iterator[Homomorphism]:
    """Yield every homomorphism from *source* to *target* extending *fixed*.

    The yielded dictionaries map variables of *source* (and the keys of
    *fixed*) to terms of *target*.  Constants are required to be preserved
    but are not recorded in the mapping.  ``index`` lets callers that probe
    the same target repeatedly (the chase) reuse one :class:`TargetIndex`
    instead of rebuilding it per call; ``plan`` likewise lets callers that
    search from the same source repeatedly reuse one compiled
    :class:`~repro.core.plan.MatchPlan`.  When given, they must index /
    compile exactly *target* / *source*.
    """
    if index is None:
        index = TargetIndex(target)
    if plan is None:
        plan = MatchPlan(source)
    yield from iter_matches(plan, index, fixed)


def find_homomorphism(
    source: Sequence[Atom],
    target: Sequence[Atom],
    fixed: Mapping[Term, Term] | None = None,
    *,
    index: TargetIndex | None = None,
    plan: MatchPlan | None = None,
) -> Homomorphism | None:
    """Return one homomorphism from *source* to *target*, or None."""
    for hom in iter_homomorphisms(source, target, fixed, index=index, plan=plan):
        return hom
    return None


def can_extend_homomorphism(
    mapping: Mapping[Term, Term],
    extra_source: Sequence[Atom],
    target: Sequence[Atom],
    *,
    index: TargetIndex | None = None,
) -> bool:
    """Can *mapping* be extended to also cover *extra_source* atoms?

    This is exactly the applicability condition of a tgd chase step
    (Section 2.4): the chase with ``φ → ∃V̄ ψ`` applies when a homomorphism
    from φ exists that can *not* be extended to φ ∧ ψ.
    """
    return find_homomorphism(extra_source, target, fixed=mapping, index=index) is not None


def _head_fixed_mapping(
    q_from: ConjunctiveQuery, q_to: ConjunctiveQuery
) -> Homomorphism | None:
    """Initial mapping forcing h(head of q_from) = head of q_to."""
    if len(q_from.head_terms) != len(q_to.head_terms):
        return None
    fixed: Homomorphism = {}
    for s_term, t_term in zip(q_from.head_terms, q_to.head_terms):
        if isinstance(s_term, Constant):
            if s_term != t_term:
                return None
            continue
        if s_term in fixed and fixed[s_term] != t_term:
            return None
        fixed[s_term] = t_term
    return fixed


def iter_containment_mappings(
    q_from: ConjunctiveQuery, q_to: ConjunctiveQuery
) -> Iterator[Homomorphism]:
    """Yield all containment mappings from *q_from* to *q_to*."""
    fixed = _head_fixed_mapping(q_from, q_to)
    if fixed is None:
        return
    # The compiled body plan is memoized per query object, so repeated
    # containment tests against the same q_from (every equivalence decision
    # runs several) compile it once.
    yield from iter_homomorphisms(
        q_from.body, q_to.body, fixed=fixed, plan=q_from.body_plan()
    )


def find_containment_mapping(
    q_from: ConjunctiveQuery, q_to: ConjunctiveQuery
) -> Homomorphism | None:
    """Return one containment mapping from *q_from* to *q_to*, or None."""
    for mapping in iter_containment_mappings(q_from, q_to):
        return mapping
    return None


# ---------------------------------------------------------------------- #
# Isomorphism (bag equivalence, Theorem 2.1(1))
# ---------------------------------------------------------------------- #
def _atom_occurrence_bijection(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> Iterator[Homomorphism]:
    """Search for a variable renaming inducing a bijection of subgoal occurrences.

    The mapping must (i) send the head vector of q1 onto the head vector of
    q2, (ii) be injective on variables, and (iii) match the body subgoals of
    q1 one-to-one onto the body subgoals of q2 (occurrences, not just atom
    values, so duplicate subgoals are respected).
    """
    if len(q1.body) != len(q2.body):
        return
    if Counter(a.predicate for a in q1.body) != Counter(a.predicate for a in q2.body):
        return
    fixed = _head_fixed_mapping(q1, q2)
    if fixed is None:
        return
    # Variables may not rename to constants in an isomorphism.
    if any(isinstance(image, Constant) for image in fixed.values()):
        return
    # Injectivity of the initial head mapping.
    images = [v for v in fixed.values()]
    if len(set(images)) != len(images):
        # Two distinct q1 head variables forced onto the same q2 term can
        # still be fine only if they are the same variable; distinct keys
        # with equal values break injectivity.
        keys = list(fixed.keys())
        if len(set(keys)) == len(keys) and len(set(images)) != len(keys):
            return

    target_atoms = list(q2.body)

    def search(
        remaining: list[Atom],
        available: list[bool],
        mapping: Homomorphism,
        used_targets: set[Term],
    ) -> Iterator[Homomorphism]:
        if not remaining:
            yield dict(mapping)
            return
        atom = remaining[0]
        rest = remaining[1:]
        for idx, target_atom in enumerate(target_atoms):
            if not available[idx]:
                continue
            extension = _compatible(atom, target_atom, mapping)
            if extension is None:
                continue
            # An isomorphism is a variable *renaming*: variables may not be
            # mapped to constants (otherwise the mapping has no inverse).
            if any(isinstance(image, Constant) for image in extension.values()):
                continue
            # Enforce injectivity on variables.
            new_images = list(extension.values())
            if any(img in used_targets for img in new_images):
                continue
            if len(set(new_images)) != len(new_images):
                continue
            available[idx] = False
            mapping.update(extension)
            used_targets.update(new_images)
            yield from search(rest, available, mapping, used_targets)
            for key, img in extension.items():
                del mapping[key]
                used_targets.discard(img)
            available[idx] = True

    initial_used = set(fixed.values())
    yield from search(list(q1.body), [True] * len(target_atoms), dict(fixed), initial_used)


def find_isomorphism(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> Homomorphism | None:
    """Return a query isomorphism from *q1* to *q2*, or None.

    An isomorphism is a renaming of variables under which the two queries
    have identical heads and identical bodies *as bags of subgoals*.
    """
    for mapping in _atom_occurrence_bijection(q1, q2):
        return mapping
    return None


def are_isomorphic(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """True when the two queries are isomorphic (Theorem 2.1(1))."""
    return find_isomorphism(q1, q2) is not None
