"""Terms: variables and constants.

The paper's queries and dependencies are built from *terms*: variables
(implicitly universally or existentially quantified, depending on position)
and constants.  Both are small immutable value objects so they can be used as
dictionary keys, set members, and members of frozen atoms.

A :class:`Variable` is identified by its name; a :class:`Constant` by its
value (any hashable Python object — ints and strings in practice).  Two
helper functions, :func:`fresh_variable` and :func:`FreshVariableFactory`,
generate names guaranteed not to collide with a given set of used names;
the chase and the associated-test-query construction (Definition 4.2 of the
paper) rely on this.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Iterator, Union


@dataclass(frozen=True, order=True)
class Variable:
    """A query / dependency variable, identified by name."""

    name: str

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Constant:
    """A constant value appearing in a query, dependency, or database tuple."""

    value: Hashable

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


Term = Union[Variable, Constant]


def is_variable(term: Term) -> bool:
    """Return True if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def term_from_value(value: object) -> Term:
    """Coerce a raw Python value into a term.

    Strings beginning with an uppercase letter or an underscore are treated
    as variables (the paper's convention: ``X``, ``Y``, ``Z1``); everything
    else becomes a constant.  Existing :class:`Variable` / :class:`Constant`
    objects pass through unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


class FreshVariableFactory:
    """Produces variables whose names do not collide with a set of used names.

    The factory is deterministic: it numbers variables ``prefix0``,
    ``prefix1`` ... skipping any name already in use, and records every name
    it hands out so repeated calls never collide with each other either.
    """

    def __init__(self, used_names: Iterable[str] = (), prefix: str = "_v"):
        self._used = set(used_names)
        self._prefix = prefix
        self._counter = 0

    def __call__(self, hint: str | None = None) -> Variable:
        """Return a fresh variable.

        If *hint* is given, the fresh name is derived from it (``hint``,
        ``hint_1``, ``hint_2`` ...), which keeps chase outputs readable.
        """
        if hint is not None:
            candidate = hint
            suffix = 0
            while candidate in self._used:
                suffix += 1
                candidate = f"{hint}_{suffix}"
            self._used.add(candidate)
            return Variable(candidate)
        while True:
            candidate = f"{self._prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._used:
                self._used.add(candidate)
                return Variable(candidate)

    def reserve(self, names: Iterable[str]) -> None:
        """Mark *names* as used so they will never be produced."""
        self._used.update(names)


def fresh_variable(used: Iterable[Variable | str], hint: str = "_v") -> Variable:
    """Return a single variable not occurring in *used*.

    Convenience wrapper around :class:`FreshVariableFactory` for call sites
    that need just one fresh name.
    """
    used_names = {u.name if isinstance(u, Variable) else u for u in used}
    factory = FreshVariableFactory(used_names, prefix=hint)
    return factory(hint=hint) if hint != "_v" else factory()


def variables_in(terms: Iterable[Term]) -> Iterator[Variable]:
    """Yield the variables among *terms*, preserving order, with duplicates."""
    for term in terms:
        if isinstance(term, Variable):
            yield term


def constants_in(terms: Iterable[Term]) -> Iterator[Constant]:
    """Yield the constants among *terms*, preserving order, with duplicates."""
    for term in terms:
        if isinstance(term, Constant):
            yield term
