"""Terms: interned, hash-consed variables and constants.

The paper's queries and dependencies are built from *terms*: variables
(implicitly universally or existentially quantified, depending on position)
and constants.  Every decision procedure in the library bottoms out in
hashing and comparing terms — homomorphism posting lists, chase-cache keys,
canonicalization — so terms are **hash consed**: constructing a
:class:`Variable` or :class:`Constant` returns a canonical per-process
singleton from an intern table, equality of interned terms is (almost
always) a pointer comparison, and the hash is computed once and cached.

Each interned term also carries a small process-unique integer ``uid``,
assigned at intern time; index structures such as
:class:`~repro.core.homomorphism.TargetIndex` key their posting lists on
these ints instead of on the terms themselves.

Interning is an implementation detail, not a semantic change:

* ``__eq__`` keeps the value-based fallback (two ``Variable`` objects with
  the same name are equal even if, through some exotic path, they are not
  the same object), with an identity fast path that interning makes hit
  nearly always;
* pickling round-trips through ``__reduce__``, which re-interns on
  unpickling — terms sent to ``decide_many(..., concurrency=N)`` worker
  processes come back as the parent process's canonical singletons;
* the intern tables hold their terms **weakly** (``WeakValueDictionary``):
  a term stays the canonical singleton for as long as anything references
  it, and is dropped from the table when the last reference dies, so a
  long-lived server chasing adversarial workloads with unbounded fresh
  constant vocabularies does not grow the tables without bound.  A name
  re-interned after its term died gets a **new** ``uid`` — safe, because
  every uid-keyed structure (posting lists, compiled plans) holds strong
  references to the terms whose uids it embeds, so a uid can only be
  observed while its term is alive.

``INTERN_STATS`` counts intern-table hits and misses; the chase drivers
snapshot it around a run and report the delta in their
:class:`~repro.chase.profile.ChaseProfile`.

Two helper functions, :func:`fresh_variable` and
:class:`FreshVariableFactory`, generate names guaranteed not to collide
with a given set of used names; the chase and the associated-test-query
construction (Definition 4.2 of the paper) rely on this.
"""

from __future__ import annotations

import itertools
import pickle
import struct
import weakref
from typing import TYPE_CHECKING, ClassVar, Hashable, Iterable, Iterator, Union

if TYPE_CHECKING:  # runtime imports stay lazy: workers import terms early
    from multiprocessing.shared_memory import SharedMemory


class HitMissStats:
    """A process-wide hit/miss counter pair.

    Instantiated here as :data:`INTERN_STATS` and in
    :mod:`repro.core.query` as the structural-key memo counters.
    """

    __slots__ = ("hits", "misses")

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def snapshot(self) -> tuple[int, int]:
        """The current ``(hits, misses)`` pair, for delta accounting."""
        return (self.hits, self.misses)


#: Global intern counters, shared by :class:`Variable` and :class:`Constant`.
INTERN_STATS = HitMissStats()

#: Process-wide allocator of term ``uid`` ints (shared across both kinds so a
#: uid identifies a term, not a (kind, uid) pair).
_NEXT_UID = itertools.count()


class Variable:
    """A query / dependency variable, identified by name.

    Interned: ``Variable("X") is Variable("X")`` while at least one strong
    reference to the interned term exists (the table holds it weakly).
    """

    __slots__ = ("name", "uid", "_hash", "__weakref__")

    name: str
    uid: int
    _hash: int

    _intern: ClassVar["weakref.WeakValueDictionary[str, Variable]"] = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, name: str) -> "Variable":
        table = cls._intern
        self = table.get(name)
        if self is not None:
            INTERN_STATS.hits += 1
            return self
        INTERN_STATS.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "uid", next(_NEXT_UID))
        # Same formula as the frozen-dataclass representation this replaced,
        # so hashes are stable across the refactor within a process.
        object.__setattr__(self, "_hash", hash((name,)))
        # setdefault, not assignment: if another thread interned the same
        # name between the get above and here, exactly one object wins the
        # table and both constructions return it — no distinct-uid duplicate
        # can escape into uid-keyed index structures.  (WeakValueDictionary's
        # setdefault also treats a dead entry as absent, so a name whose term
        # died is simply re-interned.)
        return table.setdefault(name, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"Variable is immutable; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"Variable is immutable; cannot delete {attr!r}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Variable):
            return self.name == other.name
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    # Total order by name (the pre-intern dataclass carried order=True).
    def __lt__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return self.name < other.name
        return NotImplemented

    def __le__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return self.name <= other.name
        return NotImplemented

    def __gt__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return self.name > other.name
        return NotImplemented

    def __ge__(self, other: object) -> bool:
        if isinstance(other, Variable):
            return self.name >= other.name
        return NotImplemented

    def __reduce__(self) -> tuple[type["Variable"], tuple[str]]:
        # Re-intern on unpickling: a term crossing a process boundary (the
        # decide_many multiprocessing pipeline) lands back in the canonical
        # singleton of the receiving process.
        return (Variable, (self.name,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Variable({self.name!r})"

    def __str__(self) -> str:
        return self.name


class Constant:
    """A constant value appearing in a query, dependency, or database tuple.

    Interned by value: ``Constant(1) is Constant(1)``.  The value must be
    hashable (ints and strings in practice); unhashable values are rejected
    at construction time rather than at first hash, which the intern lookup
    makes unavoidable anyway.

    Like :class:`Variable`, the intern table is weak: ``Constant(1) is
    Constant(1)`` while a strong reference to the interned term exists, and
    a value whose term has died is re-interned (with a fresh ``uid``) on
    next construction.

    Cross-type-equal values (``1`` / ``True`` / ``1.0``) intern to one
    singleton — whichever was constructed first in the process — because
    they always *compared* equal (``Constant(1) == Constant(True)`` held in
    the pre-interning representation too) and index structures key on the
    term's ``uid``, so splitting them by type would wrongly separate equal
    terms in posting lists.  The observable consequence is that ``.value``
    (and therefore rendering) of such a constant reflects the
    first-constructed representative; schemas mixing bools or floats with
    equal ints in the same vocabulary should normalize at the boundary.
    """

    __slots__ = ("value", "uid", "_hash", "__weakref__")

    value: Hashable
    uid: int
    _hash: int

    _intern: ClassVar["weakref.WeakValueDictionary[Hashable, Constant]"] = (
        weakref.WeakValueDictionary()
    )

    def __new__(cls, value: Hashable) -> "Constant":
        table = cls._intern
        self = table.get(value)
        if self is not None:
            INTERN_STATS.hits += 1
            return self
        INTERN_STATS.misses += 1
        self = object.__new__(cls)
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "uid", next(_NEXT_UID))
        object.__setattr__(self, "_hash", hash((value,)))
        # See Variable.__new__: setdefault keeps concurrent constructions
        # from leaking a duplicate with a distinct uid.
        return table.setdefault(value, self)

    def __setattr__(self, attr: str, value: object) -> None:
        raise AttributeError(f"Constant is immutable; cannot set {attr!r}")

    def __delattr__(self, attr: str) -> None:
        raise AttributeError(f"Constant is immutable; cannot delete {attr!r}")

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, Constant):
            return self.value == other.value
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __reduce__(self) -> tuple[type["Constant"], tuple[Hashable]]:
        return (Constant, (self.value,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Constant({self.value!r})"

    def __str__(self) -> str:
        return repr(self.value) if isinstance(self.value, str) else str(self.value)


Term = Union[Variable, Constant]


def intern_table_sizes() -> tuple[int, int]:
    """Current ``(variables, constants)`` intern-table sizes (observability).

    The tables are weak, so the sizes count *live* interned terms — terms
    whose last strong reference died no longer appear.
    """
    return (len(Variable._intern), len(Constant._intern))


#: Snapshots pinned by :func:`pin_interned_terms`: strong references that keep
#: the re-interned terms alive for the process lifetime, so the weak tables
#: cannot drop them between requests / batch items.
_PINNED_SNAPSHOTS: list[tuple[Term, ...]] = []


def export_interned_terms() -> list[tuple[str, Hashable]]:
    """Snapshot every live interned term as picklable ``(kind, payload)`` pairs.

    The snapshot is what a parent ships to worker processes (the
    ``decide_many(..., concurrency=N)`` pool initializer, multi-worker
    serving) so workers re-intern the parent's working vocabulary once, up
    front, instead of miss-by-miss as payloads arrive.  Under the ``fork``
    start method the tables are inherited anyway and re-pinning is nearly
    free; under ``spawn`` the snapshot is the only thing standing between a
    worker and an entirely cold table.  ``uid`` values are deliberately not
    part of the snapshot: uids are process-local by design.
    """
    snapshot: list[tuple[str, Hashable]] = []
    # list() first: iterating a WeakValueDictionary directly would break if
    # GC drops an entry mid-iteration.
    for variable in list(Variable._intern.values()):
        snapshot.append(("V", variable.name))
    for constant in list(Constant._intern.values()):
        snapshot.append(("C", constant.value))
    return snapshot


def pin_interned_terms(snapshot: Iterable[tuple[str, Hashable]]) -> int:
    """Re-intern a snapshot from :func:`export_interned_terms` and pin it.

    Pinning holds strong references for the rest of the process, making the
    snapshot effectively a read-only warm table: every subsequent
    construction of a snapshotted name/value is an intern hit, never a miss,
    and the weak tables cannot evict them while idle.  Returns the number of
    terms pinned.
    """
    pinned: list[Term] = []
    for kind, payload in snapshot:
        if kind == "V":
            assert isinstance(payload, str)
            pinned.append(Variable(payload))
        elif kind == "C":
            pinned.append(Constant(payload))
        else:
            raise ValueError(f"unknown intern snapshot entry kind {kind!r}")
    _PINNED_SNAPSHOTS.append(tuple(pinned))
    return len(pinned)


# --------------------------------------------------------------------------- #
# Shared-memory intern snapshots.
#
# export_interned_terms() + pin_interned_terms() already move a vocabulary
# across a process boundary, but shipping the snapshot through pickle in the
# worker initargs serializes it once *per worker*.  SharedInternSnapshot
# serializes it exactly once, into a multiprocessing.shared_memory segment;
# every worker — pool initializer, serve engine process, respawn after a
# crash — attaches the same segment read-only and pins from it.
# --------------------------------------------------------------------------- #

#: Segment layout: an 8-byte little-endian payload length, then the pickled
#: snapshot.  The length prefix is required because the OS rounds segment
#: sizes up to a page, so ``shm.size`` alone cannot delimit the payload.
_SHM_HEADER = struct.Struct("<Q")


class SharedInternSnapshot:
    """An intern snapshot published once into shared memory.

    The *creating* process (the serve acceptor, or a Session about to build
    a batch pool) calls :meth:`create`, keeps the object alive for as long as
    workers may attach (respawned workers re-attach the same segment), and
    calls :meth:`destroy` when done.  Each *worker* calls
    :meth:`attach_and_pin` with the segment :attr:`name`; the worker copies
    the payload out, pins the terms, and detaches immediately — the segment
    is only held open for the duration of the call.
    """

    def __init__(self, shm: "SharedMemory", count: int, payload_bytes: int):
        self._shm = shm
        self.name: str = shm.name
        self.count = count
        self.payload_bytes = payload_bytes

    @classmethod
    def create(
        cls, snapshot: "Iterable[tuple[str, Hashable]] | None" = None
    ) -> "SharedInternSnapshot":
        """Publish *snapshot* (default: the live tables) into shared memory.

        Raises whatever ``multiprocessing.shared_memory`` raises on platforms
        without it (callers fall back to shipping the snapshot inline).
        """
        from multiprocessing import shared_memory

        entries = export_interned_terms() if snapshot is None else list(snapshot)
        payload = pickle.dumps(entries, protocol=pickle.HIGHEST_PROTOCOL)
        data = _SHM_HEADER.pack(len(payload)) + payload
        shm = shared_memory.SharedMemory(create=True, size=len(data))
        shm.buf[: len(data)] = data
        return cls(shm, len(entries), len(payload))

    @staticmethod
    def attach_and_pin(name: str) -> int:
        """Attach segment *name*, pin its snapshot, detach; returns terms pinned.

        Raises ``FileNotFoundError`` when the segment does not exist (e.g.
        the parent already shut down); callers treat that as a cold start.
        """
        from multiprocessing import shared_memory

        # Note on the resource tracker: every worker that attaches here is a
        # descendant of the creating process, so it shares the parent's
        # resource-tracker daemon — the attach-side re-registration is a
        # set-level no-op and needs no unregister workaround.  (The tracker
        # cleans the segment up only if the whole process tree dies without
        # the owner's unlink — exactly the safety net we want.)
        shm = shared_memory.SharedMemory(name=name)
        try:
            (length,) = _SHM_HEADER.unpack_from(shm.buf, 0)
            entries = pickle.loads(bytes(shm.buf[_SHM_HEADER.size : _SHM_HEADER.size + length]))
        finally:
            shm.close()
        return pin_interned_terms(entries)

    def close(self) -> None:
        """Detach this process's view (the segment itself stays)."""
        try:
            self._shm.close()
        except Exception:
            pass

    def unlink(self) -> None:
        """Remove the segment from the system (idempotent)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:
            pass
        except Exception:
            pass

    def destroy(self) -> None:
        """Detach and unlink — the full owner-side teardown (idempotent)."""
        self.close()
        self.unlink()


def is_variable(term: Term) -> bool:
    """Return True if *term* is a :class:`Variable`."""
    return isinstance(term, Variable)


def is_constant(term: Term) -> bool:
    """Return True if *term* is a :class:`Constant`."""
    return isinstance(term, Constant)


def term_from_value(value: object) -> Term:
    """Coerce a raw Python value into a term.

    Strings beginning with an uppercase letter or an underscore are treated
    as variables (the paper's convention: ``X``, ``Y``, ``Z1``); everything
    else becomes a constant.  Existing :class:`Variable` / :class:`Constant`
    objects pass through unchanged.
    """
    if isinstance(value, (Variable, Constant)):
        return value
    if isinstance(value, str) and value and (value[0].isupper() or value[0] == "_"):
        return Variable(value)
    return Constant(value)


class FreshVariableFactory:
    """Produces variables whose names do not collide with a set of used names.

    The factory is deterministic: it numbers variables ``prefix0``,
    ``prefix1`` ... skipping any name already in use, and records every name
    it hands out so repeated calls never collide with each other either.
    """

    def __init__(self, used_names: Iterable[str] = (), prefix: str = "_v"):
        self._used = set(used_names)
        self._prefix = prefix
        self._counter = 0

    def __call__(self, hint: str | None = None) -> Variable:
        """Return a fresh variable.

        If *hint* is given, the fresh name is derived from it (``hint``,
        ``hint_1``, ``hint_2`` ...), which keeps chase outputs readable.
        """
        if hint is not None:
            candidate = hint
            suffix = 0
            while candidate in self._used:
                suffix += 1
                candidate = f"{hint}_{suffix}"
            self._used.add(candidate)
            return Variable(candidate)
        while True:
            candidate = f"{self._prefix}{self._counter}"
            self._counter += 1
            if candidate not in self._used:
                self._used.add(candidate)
                return Variable(candidate)

    def reserve(self, names: Iterable[str]) -> None:
        """Mark *names* as used so they will never be produced."""
        self._used.update(names)


def fresh_variable(used: Iterable[Variable | str], hint: str = "_v") -> Variable:
    """Return a single variable not occurring in *used*.

    Convenience wrapper around :class:`FreshVariableFactory` for call sites
    that need just one fresh name.
    """
    used_names = {u.name if isinstance(u, Variable) else u for u in used}
    factory = FreshVariableFactory(used_names, prefix=hint)
    return factory(hint=hint) if hint != "_v" else factory()


def variables_in(terms: Iterable[Term]) -> Iterator[Variable]:
    """Yield the variables among *terms*, preserving order, with duplicates."""
    for term in terms:
        if isinstance(term, Variable):
            yield term


def constants_in(terms: Iterable[Term]) -> Iterator[Constant]:
    """Yield the constants among *terms*, preserving order, with duplicates."""
    for term in terms:
        if isinstance(term, Constant):
            yield term
