"""Core query model: terms, atoms, conjunctive and aggregate queries, and the
classical dependency-free containment / equivalence tests."""

from .aggregate import AggregateFunction, AggregateQuery, AggregateTerm
from .atoms import Atom, EqualityAtom
from .bag_equivalence import (
    is_bag_equivalent,
    is_bag_equivalent_with_set_enforced,
    is_bag_set_equivalent,
    violates_bag_containment_count_condition,
)
from .containment import is_set_contained, is_set_equivalent
from .homomorphism import (
    TargetIndex,
    are_isomorphic,
    find_containment_mapping,
    find_homomorphism,
    find_isomorphism,
    find_match,
    has_match_from_binding,
    iter_binding_matches,
    iter_homomorphisms,
    iter_matches,
)
from .plan import MatchPlan, shared_slot_links
from .minimization import is_minimal, minimize
from .query import ConjunctiveQuery, cq
from .terms import Constant, FreshVariableFactory, Term, Variable

__all__ = [
    "AggregateFunction",
    "AggregateQuery",
    "AggregateTerm",
    "Atom",
    "EqualityAtom",
    "Constant",
    "ConjunctiveQuery",
    "FreshVariableFactory",
    "MatchPlan",
    "TargetIndex",
    "Term",
    "Variable",
    "cq",
    "are_isomorphic",
    "find_containment_mapping",
    "find_homomorphism",
    "find_isomorphism",
    "find_match",
    "has_match_from_binding",
    "iter_binding_matches",
    "iter_homomorphisms",
    "iter_matches",
    "shared_slot_links",
    "is_bag_equivalent",
    "is_bag_equivalent_with_set_enforced",
    "is_bag_set_equivalent",
    "is_minimal",
    "is_set_contained",
    "is_set_equivalent",
    "minimize",
    "violates_bag_containment_count_condition",
]
