"""Set-semantics containment and equivalence of conjunctive queries.

The classical Chandra–Merlin result (Section 2.1 of the paper): for CQ
queries ``Q1`` and ``Q2``, the set containment ``Q1 ⊑S Q2`` holds if and
only if there is a containment mapping *from Q2 to Q1*.  Set equivalence is
mutual containment.

These dependency-free tests are the building blocks for the Σ-aware tests of
Theorem 2.2 (set semantics), Theorem 6.1 (bag semantics), and Theorem 6.2
(bag-set semantics), implemented in :mod:`repro.equivalence`.
"""

from __future__ import annotations

from .homomorphism import find_containment_mapping
from .query import ConjunctiveQuery


def is_set_contained(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ⊑S Q2``: the answer to Q1 is a subset of the answer to Q2
    on every set-valued database.

    Per Chandra–Merlin this holds iff there is a containment mapping from Q2
    to Q1.
    """
    return find_containment_mapping(q2, q1) is not None


def is_set_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ≡S Q2`` (mutual set containment)."""
    return is_set_contained(q1, q2) and is_set_contained(q2, q1)


def containment_witness(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> dict | None:
    """Return the containment mapping from Q2 to Q1 witnessing ``Q1 ⊑S Q2``.

    Returns None when the containment does not hold.  Exposed for callers
    (and tests) that want to inspect *why* a containment was accepted.
    """
    return find_containment_mapping(q2, q1)
