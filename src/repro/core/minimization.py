"""Dependency-free minimization of conjunctive queries.

The classical minimization procedure of Chandra–Merlin (referenced in the
paper's introduction): repeatedly try to drop a body subgoal and keep the
shorter query whenever it stays set-equivalent to the original.  The result
— the *core* of the query — is unique up to isomorphism.

Σ-minimality (Definition 3.1 of the paper), which additionally allows
replacing variables and works modulo a dependency set, lives in
:mod:`repro.reformulation.minimality` because it needs the chase.
"""

from __future__ import annotations

from .containment import is_set_equivalent
from .homomorphism import iter_homomorphisms
from .query import ConjunctiveQuery
from .terms import Variable


def drop_atom_if_safe(query: ConjunctiveQuery, index: int) -> ConjunctiveQuery | None:
    """Drop the body atom at *index*, or return None if the result is unsafe.

    Dropping a subgoal can strand a head variable; such candidates are not
    queries at all and are skipped by the minimization procedures.
    """
    remaining = query.body[:index] + query.body[index + 1 :]
    if not remaining:
        return None
    covered = {v for atom in remaining for v in atom.variables()}
    head_variables = {t for t in query.head_terms if isinstance(t, Variable)}
    if not head_variables <= covered:
        return None
    return query.with_body(remaining)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return a minimal (core) query set-equivalent to *query*.

    Greedy subgoal removal: drop any subgoal whose removal preserves set
    equivalence, until no more subgoals can be dropped.  The classical
    theory guarantees the result is the core of the query, unique up to
    isomorphism and independent of removal order.
    """
    current = query
    changed = True
    while changed:
        changed = False
        for index in range(len(current.body)):
            if len(current.body) == 1:
                break
            candidate = drop_atom_if_safe(current, index)
            if candidate is not None and is_set_equivalent(candidate, current):
                current = candidate
                changed = True
                break
    return current


def is_minimal(query: ConjunctiveQuery) -> bool:
    """True when no single subgoal can be dropped without losing equivalence."""
    if len(query.body) == 1:
        return True
    for index in range(len(query.body)):
        candidate = drop_atom_if_safe(query, index)
        if candidate is not None and is_set_equivalent(candidate, query):
            return False
    return True


def core_endomorphisms(query: ConjunctiveQuery) -> list[dict]:
    """All endomorphisms of *query* (homomorphisms from the query to itself
    that fix the head).

    Useful both for minimization diagnostics and for the Σ-minimality search
    of Definition 3.1, which considers replacing variables of a query by
    other variables of the same query.
    """
    fixed = {}
    for term in query.head_terms:
        fixed[term] = term
    return list(iter_homomorphisms(query.body, query.body, fixed=fixed))
