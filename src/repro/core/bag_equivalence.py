"""Dependency-free equivalence tests under bag and bag-set semantics.

Implements the Chaudhuri–Vardi characterisations (Theorem 2.1 of the paper)
and the paper's own extension to schemas where some relations are forced to
be set valued (Theorem 4.2):

* ``Q ≡B Q'``    iff Q and Q' are isomorphic;
* ``Q ≡BS Q'``   iff their canonical representations are isomorphic;
* with set-enforced relations ``P1..Pk`` (and no other dependencies),
  ``Q ≡B Q'`` iff the queries obtained by dropping duplicate subgoals over
  ``P1..Pk`` are isomorphic.

Also provided is the necessary condition for bag containment from
Chaudhuri–Vardi that the paper re-proves in Appendix D (Lemma D.1): if
``Q1 ⊑B Q2`` then, for every predicate, Q2 has at least as many subgoals
with that predicate as Q1 does.  The corresponding helper
:func:`violates_bag_containment_count_condition` is used by property tests
and by the counterexample-database constructions.
"""

from __future__ import annotations

from typing import Iterable

from .homomorphism import are_isomorphic, find_isomorphism
from .query import ConjunctiveQuery


def is_bag_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ≡B Q2`` in the absence of dependencies (Theorem 2.1(1))."""
    return are_isomorphic(q1, q2)


def is_bag_set_equivalent(q1: ConjunctiveQuery, q2: ConjunctiveQuery) -> bool:
    """Decide ``Q1 ≡BS Q2`` in the absence of dependencies (Theorem 2.1(2)).

    The test is isomorphism of the canonical representations (duplicate
    subgoals dropped).
    """
    return are_isomorphic(q1.canonical_representation(), q2.canonical_representation())


def is_bag_equivalent_with_set_enforced(
    q1: ConjunctiveQuery,
    q2: ConjunctiveQuery,
    set_valued_predicates: Iterable[str],
) -> bool:
    """Decide bag equivalence in the presence of set-enforcing constraints only.

    Theorem 4.2: with ``P1..Pk`` the relations required to be set valued in
    every instance (and no other dependencies), ``Q1 ≡B Q2`` iff the queries
    obtained by dropping duplicate subgoals whose predicates are among
    ``P1..Pk`` are isomorphic.
    """
    predicates = set(set_valued_predicates)
    reduced1 = q1.drop_duplicates_for(predicates)
    reduced2 = q2.drop_duplicates_for(predicates)
    return are_isomorphic(reduced1, reduced2)


def bag_equivalence_witness(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> dict | None:
    """Return the isomorphism witnessing ``Q1 ≡B Q2``, or None."""
    return find_isomorphism(q1, q2)


def violates_bag_containment_count_condition(
    q1: ConjunctiveQuery, q2: ConjunctiveQuery
) -> list[str]:
    """Predicates witnessing that ``Q1 ⊑B Q2`` cannot hold.

    Chaudhuri–Vardi (re-proved as part of Appendix D): Q1 is bag contained in
    Q2 only if, for each predicate used in Q1, Q2 has at least as many
    subgoals with that predicate as Q1 does.  Returns the list of predicates
    for which Q1 has strictly more subgoals than Q2 — an empty list means the
    necessary condition is satisfied (which does *not* by itself imply
    containment).
    """
    counts1 = q1.predicate_counts()
    counts2 = q2.predicate_counts()
    return sorted(
        predicate
        for predicate, count in counts1.items()
        if count > counts2.get(predicate, 0)
    )
