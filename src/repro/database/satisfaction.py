"""Dependency satisfaction on database instances (``D |= Σ``, Section 2.4).

* a tgd ``φ → ∃V̄ ψ`` is satisfied when every assignment satisfying φ can be
  extended to one satisfying ψ;
* an egd ``φ → U1 = U2`` is satisfied when every assignment satisfying φ
  makes the equated terms equal.

Satisfaction depends only on the *core sets* of the relations (duplicates do
not matter), so the checks run against the deduplicated instance.  Note that
set-enforcing constraints (relations required to be set valued, Appendix C)
are *not* expressible over the un-augmented schema; they are checked
separately by :func:`satisfies_set_valuedness`.
"""

from __future__ import annotations

from typing import Iterable

from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..evaluation.assignments import (
    InstanceIndex,
    instantiate_terms,
    iter_satisfying_assignments,
)
from .instance import DatabaseInstance


def satisfies_tgd(instance: DatabaseInstance, tgd: TGD) -> bool:
    """Does *instance* satisfy the tuple-generating dependency *tgd*?"""
    deduplicated = instance.distinct()
    index = InstanceIndex(deduplicated)
    for assignment in iter_satisfying_assignments(tgd.premise, deduplicated, index):
        premise_bindings = {
            variable: assignment[variable]
            for variable in tgd.universal_variables()
            if variable in assignment
        }
        extended = iter_satisfying_assignments(
            tgd.conclusion, deduplicated, index, fixed=premise_bindings
        )
        if next(iter(extended), None) is None:
            return False
    return True


def satisfies_egd(instance: DatabaseInstance, egd: EGD) -> bool:
    """Does *instance* satisfy the equality-generating dependency *egd*?"""
    deduplicated = instance.distinct()
    index = InstanceIndex(deduplicated)
    for assignment in iter_satisfying_assignments(egd.premise, deduplicated, index):
        for equality in egd.equalities:
            left, right = instantiate_terms([equality.left, equality.right], assignment)
            if left != right:
                return False
    return True


def satisfies(instance: DatabaseInstance, dependency: Dependency) -> bool:
    """Does *instance* satisfy *dependency*?"""
    if isinstance(dependency, TGD):
        return satisfies_tgd(instance, dependency)
    return satisfies_egd(instance, dependency)


def satisfies_all(
    instance: DatabaseInstance,
    dependencies: DependencySet | Iterable[Dependency],
    check_set_valuedness: bool = True,
) -> bool:
    """Does *instance* satisfy every dependency of the set (``D |= Σ``)?

    When *dependencies* is a :class:`DependencySet` carrying set-valuedness
    markers and *check_set_valuedness* is True, the marked relations are also
    required to be duplicate free in *instance*.
    """
    if isinstance(dependencies, DependencySet):
        if check_set_valuedness and not satisfies_set_valuedness(
            instance, dependencies.set_valued_predicates
        ):
            return False
        items: Iterable[Dependency] = dependencies.dependencies
    else:
        items = dependencies
    return all(satisfies(instance, dependency) for dependency in items)


def satisfies_set_valuedness(
    instance: DatabaseInstance, set_valued_predicates: Iterable[str]
) -> bool:
    """Are all the listed relations duplicate free in *instance*?"""
    return instance.is_set_valued(set_valued_predicates)


def violated_dependencies(
    instance: DatabaseInstance, dependencies: DependencySet | Iterable[Dependency]
) -> list[Dependency]:
    """The dependencies of the set that *instance* violates (diagnostics helper)."""
    items: Iterable[Dependency]
    items = dependencies.dependencies if isinstance(dependencies, DependencySet) else dependencies
    return [dependency for dependency in items if not satisfies(instance, dependency)]
