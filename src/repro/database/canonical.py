"""Canonical databases of conjunctive queries (Section 2.1).

The canonical database D(Q) of a CQ query Q freezes the query: every
constant of the body is kept, every variable is consistently replaced by a
distinct fresh constant, and the resulting ground atoms are the only tuples
of the instance.  The canonical database is set valued by construction and
is unique up to isomorphism (choice of the fresh constants).

Several constructions in the paper start from canonical databases:

* the Chandra–Merlin containment test (conceptually),
* chase termination — ``D(Qn) |= Σ`` is the set-chase termination condition,
* the counterexample databases of Theorem 4.1's proof, of Proposition E.2 /
  E.3, and of Lemma D.1 are all modifications of canonical databases; the
  helpers here (:func:`frozen_variable_constant`, returning the constant a
  given variable froze to) make those modifications easy to express.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Variable
from .instance import DatabaseInstance


@dataclass(frozen=True)
class CanonicalDatabase:
    """A canonical database together with the freezing assignment used to build it."""

    instance: DatabaseInstance
    assignment: dict[Variable, object]
    query: ConjunctiveQuery

    def constant_for(self, variable: Variable | str) -> object:
        """The constant that *variable* froze to."""
        if isinstance(variable, str):
            variable = Variable(variable)
        return self.assignment[variable]

    def head_tuple(self) -> tuple:
        """The tuple the frozen head evaluates to (γ(X̄) in the paper's proofs)."""
        values = []
        for term in self.query.head_terms:
            if isinstance(term, Constant):
                values.append(term.value)
            else:
                values.append(self.assignment[term])
        return tuple(values)


def canonical_database(query: ConjunctiveQuery) -> CanonicalDatabase:
    """Build the canonical database D(Q) of *query*.

    Fresh constants are derived from variable names (``"@X"`` for variable
    ``X``), with a numeric suffix added if that string happens to collide
    with an actual constant of the query — so the frozen constants are always
    distinct from the query's own constants and from each other.
    """
    existing_constants = {c.value for c in query.constants()}
    assignment: dict[Variable, object] = {}
    for variable in query.all_variables():
        candidate = f"@{variable.name}"
        suffix = 0
        while candidate in existing_constants:
            suffix += 1
            candidate = f"@{variable.name}#{suffix}"
        existing_constants.add(candidate)
        assignment[variable] = candidate

    instance = DatabaseInstance()
    seen: set[tuple[str, tuple]] = set()
    for atom in query.body:
        row = []
        for term in atom.terms:
            if isinstance(term, Constant):
                row.append(term.value)
            else:
                row.append(assignment[term])
        key = (atom.predicate, tuple(row))
        # The canonical database is a set: duplicate subgoals contribute one tuple.
        if key in seen:
            continue
        seen.add(key)
        instance.add_tuple(atom.predicate, row)
    return CanonicalDatabase(instance, assignment, query)
