"""Bag-valued database instances, canonical databases, dependency satisfaction."""

from .canonical import CanonicalDatabase, canonical_database
from .generator import chained_instance, random_instance, random_key_respecting_instance
from .instance import DatabaseInstance, Relation
from .satisfaction import (
    satisfies,
    satisfies_all,
    satisfies_egd,
    satisfies_set_valuedness,
    satisfies_tgd,
    violated_dependencies,
)

__all__ = [
    "CanonicalDatabase",
    "DatabaseInstance",
    "Relation",
    "canonical_database",
    "chained_instance",
    "random_instance",
    "random_key_respecting_instance",
    "satisfies",
    "satisfies_all",
    "satisfies_egd",
    "satisfies_set_valuedness",
    "satisfies_tgd",
    "violated_dependencies",
]
