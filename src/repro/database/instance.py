"""Bag-valued relations and database instances.

Under bag semantics (Section 2.2) a stored relation is a multiset of tuples;
a relation is *set valued* when its cardinality equals the cardinality of its
core set.  :class:`Relation` stores tuples in a :class:`collections.Counter`
so both views are cheap; :class:`DatabaseInstance` is a name-indexed
collection of relations with helpers to build instances from plain Python
data, to view them as ground atoms (used by dependency-satisfaction checks),
and to deduplicate them (the set-valued projection used when evaluating
under bag-set semantics).
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Iterator, Mapping, Sequence

from ..core.atoms import Atom
from ..core.terms import Constant
from ..exceptions import SchemaError
from ..schema.schema import DatabaseSchema

Tuple = tuple

class Relation:
    """A (generally bag-valued) relation: a multiset of same-arity tuples."""

    def __init__(self, name: str, arity: int, tuples: Iterable[Sequence[object]] = ()):
        self.name = name
        self.arity = arity
        self._tuples: Counter[tuple] = Counter()
        for row in tuples:
            self.add(row)

    # ------------------------------------------------------------------ #
    def add(self, row: Sequence[object], multiplicity: int = 1) -> None:
        """Add *multiplicity* copies of *row*."""
        row = tuple(row)
        if len(row) != self.arity:
            raise SchemaError(
                f"tuple {row!r} has arity {len(row)}, relation {self.name} "
                f"expects arity {self.arity}"
            )
        if multiplicity <= 0:
            raise SchemaError("multiplicity must be positive")
        self._tuples[row] += multiplicity

    def multiplicity(self, row: Sequence[object]) -> int:
        """Number of copies of *row* in the relation (0 when absent)."""
        return self._tuples.get(tuple(row), 0)

    def core_set(self) -> set[tuple]:
        """The core set (distinct tuples) of the relation."""
        return set(self._tuples)

    @property
    def cardinality(self) -> int:
        """Total number of tuples, counting duplicates."""
        return sum(self._tuples.values())

    def is_set_valued(self) -> bool:
        """True when the relation contains no duplicate tuples."""
        return all(count == 1 for count in self._tuples.values())

    def distinct(self) -> "Relation":
        """The set-valued relation with the same core set."""
        deduplicated = Relation(self.name, self.arity)
        for row in self._tuples:
            deduplicated.add(row)
        return deduplicated

    def scaled(self, factor: int) -> "Relation":
        """A copy in which every tuple's multiplicity is multiplied by *factor*.

        Used by the Lemma D.1 counterexample construction ("m copies of the
        canonical relation").
        """
        if factor <= 0:
            raise SchemaError("scaling factor must be positive")
        copy = Relation(self.name, self.arity)
        for row, count in self._tuples.items():
            copy.add(row, count * factor)
        return copy

    def __iter__(self) -> Iterator[tuple]:
        """Iterate over distinct tuples."""
        return iter(self._tuples)

    def iter_with_multiplicity(self) -> Iterator[tuple[tuple, int]]:
        """Iterate over ``(tuple, multiplicity)`` pairs."""
        return iter(self._tuples.items())

    def __len__(self) -> int:
        return self.cardinality

    def __contains__(self, row: Sequence[object]) -> bool:
        return tuple(row) in self._tuples

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.name == other.name
            and self.arity == other.arity
            and self._tuples == other._tuples
        )

    def as_counter(self) -> Counter[tuple]:
        """A copy of the underlying multiset."""
        return Counter(self._tuples)

    def __str__(self) -> str:
        rows = ", ".join(
            f"{row}×{count}" if count > 1 else f"{row}"
            for row, count in sorted(self._tuples.items(), key=repr)
        )
        return f"{self.name} = {{{{{rows}}}}}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self!s})"


class DatabaseInstance:
    """A database instance: one (bag-valued) relation per relation symbol."""

    def __init__(self, relations: Iterable[Relation] = ()):
        self.relations: dict[str, Relation] = {}
        for relation in relations:
            self.relations[relation.name] = relation

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dict(
        cls,
        data: Mapping[str, Iterable[Sequence[object]]],
        schema: DatabaseSchema | None = None,
    ) -> "DatabaseInstance":
        """Build an instance from ``{"p": [(1, 2), (1, 2)], ...}``.

        Listing a tuple twice makes its multiplicity 2 (bag semantics).  When
        a *schema* is supplied, relations missing from *data* are created
        empty and arities are validated.
        """
        instance = cls()
        for name, rows in data.items():
            rows = [tuple(r) for r in rows]
            if schema is not None and name in schema:
                arity = schema.arity(name)
            elif rows:
                arity = len(rows[0])
            else:
                raise SchemaError(
                    f"cannot infer arity of empty relation {name!r} without a schema"
                )
            instance.relations[name] = Relation(name, arity, rows)
        if schema is not None:
            for relation_schema in schema:
                if relation_schema.name not in instance.relations:
                    instance.relations[relation_schema.name] = Relation(
                        relation_schema.name, relation_schema.arity
                    )
        return instance

    def add_tuple(self, relation: str, row: Sequence[object], multiplicity: int = 1) -> None:
        """Add a tuple to *relation*, creating the relation if needed."""
        if relation not in self.relations:
            self.relations[relation] = Relation(relation, len(row))
        self.relations[relation].add(row, multiplicity)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def relation(self, name: str) -> Relation:
        """The relation named *name*; an empty 0-tuple relation is never created
        implicitly — a missing name raises :class:`SchemaError`."""
        try:
            return self.relations[name]
        except KeyError as exc:
            raise SchemaError(f"instance has no relation named {name!r}") from exc

    def has_relation(self, name: str) -> bool:
        """True when the instance has a relation named *name* (even if empty)."""
        return name in self.relations

    def relation_names(self) -> list[str]:
        """All relation names present in the instance."""
        return list(self.relations)

    def is_set_valued(self, relations: Iterable[str] | None = None) -> bool:
        """Is the instance (or the listed subset of relations) duplicate free?"""
        names = list(relations) if relations is not None else self.relation_names()
        return all(
            self.relations[name].is_set_valued()
            for name in names
            if name in self.relations
        )

    def total_tuples(self) -> int:
        """Total number of tuples across all relations, counting duplicates."""
        return sum(rel.cardinality for rel in self.relations.values())

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def distinct(self) -> "DatabaseInstance":
        """The set-valued instance with the same core sets (bag-set semantics
        evaluates queries against this projection)."""
        return DatabaseInstance(rel.distinct() for rel in self.relations.values())

    def copy(self) -> "DatabaseInstance":
        """A deep copy of the instance."""
        copy = DatabaseInstance()
        for name, relation in self.relations.items():
            fresh = Relation(name, relation.arity)
            for row, count in relation.iter_with_multiplicity():
                fresh.add(row, count)
            copy.relations[name] = fresh
        return copy

    def ground_atoms(self) -> list[Atom]:
        """The instance viewed as a set of ground atoms (one per distinct tuple).

        Used by homomorphism-based dependency checks; multiplicities are not
        represented because dependency satisfaction only depends on the core
        sets.  Every term is wrapped as a :class:`~repro.core.terms.Constant`
        explicitly — tuples of a database are ground by definition, and the
        explicit wrap (besides being correct for uppercase string values,
        which the name-based coercion would misread as variables) feeds the
        values straight through the constant intern table.
        """
        atoms = []
        for relation in self.relations.values():
            for row in relation:
                atoms.append(
                    Atom(
                        relation.name,
                        [v if isinstance(v, Constant) else Constant(v) for v in row],
                    )
                )
        return atoms

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseInstance):
            return NotImplemented
        mine = {n: r for n, r in self.relations.items() if r.cardinality}
        theirs = {n: r for n, r in other.relations.items() if r.cardinality}
        return mine == theirs

    def __str__(self) -> str:
        return "\n".join(str(rel) for rel in self.relations.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"DatabaseInstance({self.relation_names()})"
