"""Synthetic database-instance generators.

Used by the benchmark harness (experiment E11: evaluation-engine scaling) and
by randomized tests.  Three generators are provided:

* :func:`random_instance` — independent uniform tuples over an integer
  domain, optionally with duplicate tuples (bag-valued relations);
* :func:`random_key_respecting_instance` — tuples whose listed key positions
  are unique, so key egds are satisfied by construction;
* :func:`chained_instance` — tuples forming a referential chain
  ``r1 → r2 → ...`` so that inclusion dependencies between consecutive
  relations hold by construction.
"""

from __future__ import annotations

import random
from typing import Mapping, Sequence

from ..schema.schema import DatabaseSchema
from .instance import DatabaseInstance


def random_instance(
    schema: DatabaseSchema,
    tuples_per_relation: int,
    domain_size: int = 50,
    duplicate_fraction: float = 0.0,
    seed: int = 0,
) -> DatabaseInstance:
    """A random instance of *schema*.

    ``duplicate_fraction`` of the tuples in each relation are duplicates of
    previously generated tuples, producing a bag-valued instance; 0 yields a
    set-valued instance (with high probability for reasonable domain sizes,
    and exactly if ``domain_size ** arity`` exceeds the tuple count).
    """
    rng = random.Random(seed)
    instance = DatabaseInstance()
    for relation in schema:
        rows: list[tuple] = []
        for _ in range(tuples_per_relation):
            if rows and rng.random() < duplicate_fraction:
                rows.append(rng.choice(rows))
            else:
                rows.append(
                    tuple(rng.randrange(domain_size) for _ in range(relation.arity))
                )
        for row in rows:
            instance.add_tuple(relation.name, row)
    return instance


def random_key_respecting_instance(
    schema: DatabaseSchema,
    key_positions: Mapping[str, Sequence[int]],
    tuples_per_relation: int,
    domain_size: int = 50,
    seed: int = 0,
) -> DatabaseInstance:
    """A set-valued random instance in which the given key positions are unique.

    ``key_positions`` maps relation names to the 0-based positions of their
    key; relations not listed get independent random tuples.
    """
    rng = random.Random(seed)
    instance = DatabaseInstance()
    for relation in schema:
        positions = key_positions.get(relation.name)
        seen_keys: set[tuple] = set()
        produced = 0
        attempts = 0
        while produced < tuples_per_relation and attempts < tuples_per_relation * 20:
            attempts += 1
            row = tuple(rng.randrange(domain_size) for _ in range(relation.arity))
            if positions is not None:
                key = tuple(row[p] for p in positions)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
            if instance.has_relation(relation.name) and row in instance.relation(relation.name):
                continue
            instance.add_tuple(relation.name, row)
            produced += 1
        if not instance.has_relation(relation.name):
            instance.add_tuple(relation.name, tuple(range(relation.arity)))
    return instance


def chained_instance(
    relation_names: Sequence[str],
    arity: int,
    chain_length: int,
    fanout: int = 1,
    seed: int = 0,
) -> DatabaseInstance:
    """An instance where each relation references the next one positionally.

    Relation ``r_i`` contains tuples whose first component equals the first
    component of some tuple of ``r_{i+1}``, so the inclusion dependencies
    ``r_i[0] ⊆ r_{i+1}[0]`` all hold.  ``fanout`` controls how many tuples of
    ``r_i`` reference each tuple of ``r_{i+1}``.
    """
    rng = random.Random(seed)
    instance = DatabaseInstance()
    keys = list(range(chain_length))
    for name in reversed(relation_names):
        for key in keys:
            for copy in range(fanout):
                row = [key] + [rng.randrange(1000) for _ in range(arity - 1)]
                instance.add_tuple(name, tuple(row))
    return instance
