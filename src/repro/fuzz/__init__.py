"""Randomized workload generation and differential fuzzing.

The scenario-diversity layer of the repository: a seeded generator of random
conjunctive-query pairs and weakly-acyclic dependency sets
(:mod:`~repro.fuzz.generator`), a differential oracle checking the
accelerated engines against the frozen references plus the Proposition 6.1
chain and both front-end round trips (:mod:`~repro.fuzz.oracle`), greedy
failure shrinking (:mod:`~repro.fuzz.shrink`), a JSON regression corpus
(:mod:`~repro.fuzz.corpus`), and the campaign runner behind the ``repro
fuzz`` CLI command (:mod:`~repro.fuzz.runner`).
"""

from .corpus import (
    CorpusCase,
    CorpusError,
    DEFAULT_CORPUS_DIR,
    case_from_dict,
    case_to_dict,
    iter_corpus_paths,
    load_corpus,
    load_corpus_file,
    save_case,
)
from .generator import (
    DEFAULT_CONFIG,
    FuzzCase,
    GeneratorConfig,
    generate_block,
    generate_case,
    generate_cases,
    generate_dependencies,
    with_max_steps,
)
from .oracle import ALL_SEMANTICS, CaseReport, OracleMismatch, run_oracle
from .runner import (
    CampaignResult,
    FuzzFailure,
    replay_cases,
    run_campaign,
)
from .shrink import check_family, fails_like, shrink_case

__all__ = [
    "ALL_SEMANTICS",
    "CampaignResult",
    "CaseReport",
    "CorpusCase",
    "CorpusError",
    "DEFAULT_CONFIG",
    "DEFAULT_CORPUS_DIR",
    "FuzzCase",
    "FuzzFailure",
    "GeneratorConfig",
    "OracleMismatch",
    "case_from_dict",
    "case_to_dict",
    "check_family",
    "fails_like",
    "generate_block",
    "generate_case",
    "generate_cases",
    "generate_dependencies",
    "iter_corpus_paths",
    "load_corpus",
    "load_corpus_file",
    "replay_cases",
    "run_campaign",
    "run_oracle",
    "save_case",
    "shrink_case",
    "with_max_steps",
]
