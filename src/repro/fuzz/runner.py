"""Campaign driver: generate, batch-decide, oracle-check, shrink, report.

A campaign of N cases is organized around the generator's Σ blocks: all
cases of a block share one dependency set, so the runner builds one
:class:`~repro.session.Session` per block and routes the block's equivalence
decisions through :meth:`Session.decide_many` — the same batch pipeline the
``batch`` CLI command uses.  Sequentially that exercises the shared chase
cache (a block's pairs overlap heavily); with ``jobs=N`` it fans the
decisions out over worker processes, so large soaks exercise the
multiprocessing pipeline too.  The per-case oracle then reuses those
verdicts instead of re-deciding.

Failures are optionally shrunk (:mod:`repro.fuzz.shrink`) and serialized
(:mod:`repro.fuzz.corpus`) with the exact ``seed``/``index`` that
regenerates them.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable

from ..equivalence.decision import EquivalenceVerdict
from ..semantics import Semantics
from ..session.engine import Session
from .corpus import save_case
from .generator import (
    DEFAULT_CONFIG,
    FuzzCase,
    GeneratorConfig,
    generate_block,
)
from .oracle import ALL_SEMANTICS, CaseReport, OracleMismatch, run_oracle
from .shrink import shrink_case


@dataclass
class FuzzFailure:
    """One failing case, its mismatches, and (optionally) its shrunk form."""

    report: CaseReport
    shrunk: FuzzCase | None = None

    @property
    def case(self) -> FuzzCase:
        return self.report.case

    def summary(self) -> str:
        checks = ", ".join(sorted(set(self.report.failed_checks())))
        return f"{self.case.origin}: {checks}"


@dataclass
class CampaignResult:
    """Aggregate outcome of one fuzz campaign."""

    seed: int
    cases: int
    passed: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)
    budget_exhausted: int = 0
    #: How often each (semantics, verdict) combination occurred — campaign
    #: health telemetry: a generator drifting into all-inequivalent (or
    #: all-equivalent) pairs stops testing anything interesting.
    verdict_counts: dict[str, int] = field(default_factory=dict)
    #: Reproduction files actually written (empty when nothing was written —
    #: e.g. failures that only carry campaign-level batch-pipeline faults).
    failure_reports: list[Path] = field(default_factory=list)
    #: How often the oracle worker pool failed and a block fell back to the
    #: serial path — nonzero means ``--jobs`` silently stopped parallelizing.
    oracle_pool_fallbacks: int = 0
    wall_time: float = 0.0

    @property
    def failed(self) -> int:
        return len(self.failures)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary_lines(self) -> list[str]:
        lines = [
            f"fuzz: seed {self.seed}, {self.cases} cases — "
            f"{self.passed} passed, {self.failed} failed, "
            f"{self.budget_exhausted} hit the chase budget "
            f"({self.wall_time:.1f}s)"
        ]
        for key in sorted(self.verdict_counts):
            lines.append(f"  verdicts {key}: {self.verdict_counts[key]}")
        if self.oracle_pool_fallbacks:
            lines.append(
                f"  WARNING: oracle worker pool failed on "
                f"{self.oracle_pool_fallbacks} blocks (ran serially)"
            )
        return lines


def _block_verdicts(
    session: Session,
    block: list[FuzzCase],
    jobs: int | None,
) -> list[dict[Semantics, EquivalenceVerdict]]:
    """Decide every pair of the block per semantics via the batch pipeline.

    Returns one semantics→verdict mapping per case; pairs whose chase failed
    or exhausted the budget are simply absent from their mapping (the oracle
    has already checked that both engines agree on that outcome).
    """
    pairs = [(case.query, case.other) for case in block]
    max_steps = block[0].max_steps
    verdicts: list[dict[Semantics, EquivalenceVerdict]] = [
        {} for _ in block
    ]
    for semantics in ALL_SEMANTICS:
        report = session.decide_many(
            pairs,
            semantics=semantics,
            max_steps=max_steps,
            concurrency=jobs,
        )
        for item in report:
            if item.ok:
                verdicts[item.index][semantics] = item.result
    return verdicts


def run_campaign(
    seed: int,
    cases: int,
    config: GeneratorConfig = DEFAULT_CONFIG,
    *,
    jobs: int | None = None,
    shrink: bool = False,
    failure_dir: str | Path | None = None,
    on_progress: Callable[[int, CaseReport], None] | None = None,
) -> CampaignResult:
    """Run a fuzz campaign of *cases* cases from *seed*.

    ``jobs`` parallelizes the oracle passes over a per-campaign worker pool
    (and routes the first block's decisions through ``decide_many``'s
    multiprocessing path, so every campaign exercises that pipeline);
    ``shrink`` 1-minimizes every failure before reporting; ``failure_dir``
    writes one JSON reproduction file per failure (shrunk when shrinking is
    on).  ``on_progress`` is called with every finished case report.
    """
    started = time.perf_counter()
    result = CampaignResult(seed=seed, cases=cases)
    # One worker pool for the whole campaign: the oracle passes are the
    # dominant cost and are pure, so they fan out with a per-campaign pool
    # (a per-block pool would pay the spawn cost hundreds of times over).
    pool = None
    if jobs is not None and jobs > 1:
        from concurrent.futures import ProcessPoolExecutor

        pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        block_number = 0
        while True:
            block = generate_block(seed, block_number, config, stop=cases)
            block_number += 1
            if not block:
                break
            session = Session(
                dependencies=block[0].dependencies, max_steps=block[0].max_steps
            )
            block_verdicts: list[dict[Semantics, EquivalenceVerdict] | None]
            pipeline_error: Exception | None = None
            # decide_many spawns a fresh worker pool per call (one Session
            # per process, by design); paying that three times per block
            # would dwarf the decisions themselves.  The first block runs
            # with ``concurrency=jobs`` so every campaign exercises the
            # batch multiprocessing pipeline end to end; later blocks decide
            # in-process, where the shared session cache makes the
            # decisions nearly free, and the per-campaign oracle pool below
            # carries the actual parallelism.
            decide_jobs = jobs if block_number == 1 else None
            try:
                block_verdicts = list(
                    _block_verdicts(session, block, decide_jobs)
                )
            except Exception as error:  # a pipeline-level crash fails the block
                block_verdicts = [None] * len(block)
                pipeline_error = error
            reports = _oracle_reports(
                session, block, block_verdicts, pool, result
            )
            for case, report in zip(block, reports):
                if pipeline_error is not None:
                    report.mismatches.append(_pipeline_mismatch(pipeline_error))
                _tally(result, report)
                if not report.ok:
                    _handle_failure(result, case, report, shrink, failure_dir)
                else:
                    result.passed += 1
                if on_progress is not None:
                    on_progress(
                        case.index if case.index is not None else 0, report
                    )
    finally:
        if pool is not None:
            pool.shutdown()
    result.wall_time = time.perf_counter() - started
    return result


def _pipeline_mismatch(error: Exception) -> OracleMismatch:
    return OracleMismatch("batch-pipeline", str(error))


def _oracle_worker(payload: tuple) -> CaseReport:
    case, precomputed = payload
    return _guarded_oracle(case, None, precomputed)


def _oracle_reports(
    session: Session,
    block: list[FuzzCase],
    block_verdicts: list,
    pool,
    result: CampaignResult | None = None,
) -> list[CaseReport]:
    """One oracle report per case — fanned out over *pool* when one is given.

    The oracle dominates a campaign's wall time (six chases per case, one
    engine deliberately slow), and each pass is pure and independent, so
    ``jobs`` parallelizes it too — not just the ``decide_many`` verdicts.
    Worker reports lose nothing: the precomputed verdicts travel with the
    payload, and a worker rebuilds its own Session (caches are per-process
    anyway).  A pool-level fault falls back to the serial path — the oracle
    is pure, so re-running a case is harmless — but the fallback is counted
    on the campaign result so silently-broken parallelism stays visible.
    """
    if pool is not None and len(block) > 1:
        try:
            return list(
                pool.map(
                    _oracle_worker, list(zip(block, block_verdicts)), chunksize=2
                )
            )
        except Exception:
            if result is not None:
                result.oracle_pool_fallbacks += 1
    return [
        _guarded_oracle(case, session, precomputed)
        for case, precomputed in zip(block, block_verdicts)
    ]


def _guarded_oracle(case, session, precomputed) -> CaseReport:
    """Run the oracle, converting an unexpected crash into a failing report.

    The oracle handles the *expected* chase exceptions itself; anything else
    (a KeyError in an engine, a RecursionError, a renderer blowing up) is
    exactly the kind of find a soak exists to capture — it must fail this
    one case with its seed/index intact, not abort the whole campaign.
    """
    try:
        return run_oracle(case, session=session, precomputed_verdicts=precomputed)
    except Exception as error:
        return CaseReport(
            case=case,
            mismatches=[
                OracleMismatch(
                    "oracle-crash", f"{type(error).__name__}: {error}"
                )
            ],
        )


def _handle_failure(
    result: CampaignResult,
    case: FuzzCase,
    report: CaseReport,
    shrink: bool,
    failure_dir: str | Path | None,
) -> None:
    failure = FuzzFailure(report=report)
    # A batch-pipeline crash is a campaign-level fault, not a property of
    # any one case: replaying the case would pass, so shrinking can never
    # preserve the failure and a per-case reproduction file would only
    # mislead.  An oracle crash *is* case-reproducible, but re-running the
    # crashing oracle per shrink probe is not — write its artifact unshrunk.
    oracle_mismatches = [
        m for m in report.mismatches if m.check != "batch-pipeline"
    ]
    shrinkable = [m for m in oracle_mismatches if m.check != "oracle-crash"]
    if oracle_mismatches:
        if shrink and shrinkable:
            failure.shrunk = shrink_case(case, shrinkable[0].check)
        if failure_dir is not None:
            result.failure_reports.append(_write_failure(failure, failure_dir))
    result.failures.append(failure)


def _tally(result: CampaignResult, report: CaseReport) -> None:
    if report.budget_exhausted:
        result.budget_exhausted += 1
    for semantics, verdict in report.verdicts.items():
        key = f"{semantics}={'eq' if verdict else 'ne'}"
        result.verdict_counts[key] = result.verdict_counts.get(key, 0) + 1


def _write_failure(failure: FuzzFailure, directory: str | Path) -> Path:
    directory = Path(directory)
    case = failure.shrunk if failure.shrunk is not None else failure.case
    if failure.case.seed is not None and failure.case.index is not None:
        stem = f"seed{failure.case.seed}_case{failure.case.index}"
    else:
        # Origins of replayed corpus files carry their file name; strip the
        # extension so the report is "one.json", not "one.json.json".
        stem = failure.case.origin.replace(":", "_").replace("/", "_")
        stem = stem.removesuffix(".json")
    checks = ", ".join(sorted(set(failure.report.failed_checks())))
    return save_case(
        case,
        directory / f"{stem}.json",
        name=stem,
        description=f"fuzz failure ({checks}); "
        f"original case {failure.case.origin}",
    )


def replay_cases(
    cases: list[FuzzCase],
    *,
    shrink: bool = False,
    failure_dir: str | Path | None = None,
) -> CampaignResult:
    """Replay explicit cases (corpus files, failure reports) through the oracle."""
    started = time.perf_counter()
    result = CampaignResult(seed=-1, cases=len(cases))
    for case in cases:
        report = _guarded_oracle(case, None, None)
        _tally(result, report)
        if report.ok:
            result.passed += 1
            continue
        _handle_failure(result, case, report, shrink, failure_dir)
    result.wall_time = time.perf_counter() - started
    return result
