"""Seeded random generation of fuzz cases: query pairs plus a dependency set.

Every hand-written fixture in this repository replays a paper example or one
of three structured workload families; the decision procedures, however, are
exactly the kind of code where *rare shapes* hide bugs — self-joins, repeated
variables within one atom, constants in dependency conclusions, egd/tgd
interleavings, duplicate subgoals.  This module generates those shapes on
purpose, deterministically from a seed:

* random conjunctive queries with controlled body size, self-join density,
  constant bias, and repeated-variable bias (a small variable pool makes
  repetitions the norm, not the exception);
* a *mutated partner query* per case — duplicated subgoal, dropped subgoal,
  variable renaming, extra subgoal, or shuffled body — so the equivalence
  verdicts of a campaign are a healthy mix of positives and negatives under
  the three semantics;
* random weakly-acyclic Σ of tgds and egds, routed through
  :func:`repro.dependencies.regularize.regularize` (the sound chase requires
  regularized tgds) and filtered through
  :func:`repro.dependencies.weak_acyclicity.is_weakly_acyclic` (so every set
  chase, and by Proposition 5.1 every sound chase, terminates).

Determinism contract: ``generate_case(seed, index)`` depends only on its
arguments and the :class:`GeneratorConfig` — the RNG is seeded with the
string ``"{seed}:{index}"``, whose expansion is stable across Python
versions and platforms.  Cases whose ``index // sigma_block_size`` agree
share a dependency set, so campaign runners can batch their decisions
through one :class:`~repro.session.Session` (shared chase cache, optional
multiprocessing).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..dependencies.regularize import regularize
from ..dependencies.weak_acyclicity import is_weakly_acyclic
from ..exceptions import QueryError


@dataclass(frozen=True)
class GeneratorConfig:
    """Tunable shape parameters of the generator.

    The defaults are small on purpose: the differential oracle runs six
    chases per case (three semantics, two engines — one of them the frozen,
    deliberately slow reference), so case size is the campaign's throughput
    knob.
    """

    #: Number of distinct relation names available to one case.
    predicates: int = 3
    #: Maximum relation arity (arity is drawn per predicate, 1..max_arity).
    max_arity: int = 3
    #: Maximum number of body atoms per generated query.
    max_body_atoms: int = 4
    #: Maximum number of head terms (at least 1, so SQL rendering works).
    max_head_terms: int = 3
    #: Maximum tgds / egds per dependency set.
    max_tgds: int = 3
    max_egds: int = 2
    #: Probability that a query term position holds a constant.
    constant_bias: float = 0.15
    #: Probability that an atom repeats the previous atom's predicate.
    self_join_bias: float = 0.35
    #: Probability that a head position holds a constant.
    head_constant_bias: float = 0.1
    #: Probability that a tgd-conclusion position holds a constant
    #: ("constants in dependency heads" — a classically under-tested shape).
    conclusion_constant_bias: float = 0.15
    #: Probability that a predicate is required to be set valued.
    set_valued_bias: float = 0.5
    #: Chase step budget per case; cases exceeding it are recorded as
    #: budget-exhausted (both engines must still agree on that outcome).
    max_steps: int = 80
    #: Consecutive cases sharing one Σ (campaigns batch them per Session).
    sigma_block_size: int = 10
    #: Constant pool (ints and lowercase strings survive the SQL round trip).
    constant_pool: tuple[object, ...] = (0, 1, 7, "a", "b")


DEFAULT_CONFIG = GeneratorConfig()


@dataclass(frozen=True)
class FuzzCase:
    """One differential-testing case: a query pair and the Σ they live under.

    ``origin`` records where the case came from (``"seed0:17"`` for
    generated cases, a file name for corpus replays) so every failure report
    can name the exact reproduction recipe.
    """

    query: ConjunctiveQuery
    other: ConjunctiveQuery
    dependencies: DependencySet
    max_steps: int = DEFAULT_CONFIG.max_steps
    origin: str = "<handmade>"
    seed: int | None = None
    index: int | None = None

    def arities(self) -> dict[str, int]:
        """Predicate → arity over every atom of the case (queries and Σ).

        Generated cases use each predicate at a single arity, which is what
        the SQL round trip needs; hand-made corpus cases are free to violate
        that, in which case the oracle skips the SQL check for them.
        """
        seen: dict[str, int] = {}
        for atom in self._all_atoms():
            seen.setdefault(atom.predicate, atom.arity)
        return seen

    def has_consistent_arities(self) -> bool:
        """True when no predicate is used at two different arities."""
        seen: dict[str, int] = {}
        for atom in self._all_atoms():
            if seen.setdefault(atom.predicate, atom.arity) != atom.arity:
                return False
        return True

    def _all_atoms(self):
        yield from self.query.body
        yield from self.other.body
        for dependency in self.dependencies:
            yield from dependency.premise
            if isinstance(dependency, TGD):
                yield from dependency.conclusion

    def __str__(self) -> str:
        return (
            f"FuzzCase[{self.origin}]: {self.query} | {self.other} | "
            f"{len(self.dependencies)} dependencies"
        )


@dataclass(frozen=True)
class _Vocabulary:
    """The relation names and arities one dependency-set block draws from."""

    arities: dict[str, int] = field(default_factory=dict)

    @property
    def names(self) -> list[str]:
        return list(self.arities)


def _rng(seed: int, label: object) -> random.Random:
    # String seeds hash via a version-stable path in CPython's Random,
    # unlike tuples (which go through PYTHONHASHSEED-dependent hash()).
    return random.Random(f"{seed}:{label}")


def _vocabulary(rng: random.Random, config: GeneratorConfig) -> _Vocabulary:
    count = rng.randint(2, max(2, config.predicates))
    return _Vocabulary(
        {f"p{i}": rng.randint(1, config.max_arity) for i in range(count)}
    )


# --------------------------------------------------------------------------- #
# Queries
# --------------------------------------------------------------------------- #
def _random_term(
    rng: random.Random,
    pool: list[Variable],
    config: GeneratorConfig,
    constant_bias: float,
) -> Term:
    if rng.random() < constant_bias:
        return Constant(rng.choice(config.constant_pool))
    return rng.choice(pool)


def _random_body(
    rng: random.Random, vocab: _Vocabulary, config: GeneratorConfig
) -> list[Atom]:
    n_atoms = rng.randint(1, config.max_body_atoms)
    # A pool barely larger than the atom count forces repeated variables,
    # both across atoms (joins) and within one atom (diagonal subgoals).
    pool = [Variable(f"X{i}") for i in range(rng.randint(1, n_atoms + 2))]
    body: list[Atom] = []
    for position in range(n_atoms):
        if body and rng.random() < config.self_join_bias:
            predicate = body[-1].predicate  # deliberate self-join
        else:
            predicate = rng.choice(vocab.names)
        arity = vocab.arities[predicate]
        terms = [
            _random_term(rng, pool, config, config.constant_bias)
            for _ in range(arity)
        ]
        body.append(Atom(predicate, terms))
    return body


def _random_query(
    rng: random.Random,
    vocab: _Vocabulary,
    config: GeneratorConfig,
    head_predicate: str = "Q",
) -> ConjunctiveQuery:
    body = _random_body(rng, vocab, config)
    body_vars = sorted(
        {v for atom in body for v in atom.variables()}, key=lambda v: v.name
    )
    head_terms: list[Term] = []
    for _ in range(rng.randint(1, config.max_head_terms)):
        if not body_vars or rng.random() < config.head_constant_bias:
            head_terms.append(Constant(rng.choice(config.constant_pool)))
        else:
            head_terms.append(rng.choice(body_vars))
    return ConjunctiveQuery(head_predicate, head_terms, body)


#: The mutation kinds `_mutate` draws from; each yields a partner query whose
#: equivalence to the original is *interestingly undetermined* — isomorphic
#: renamings and body shuffles must come out equivalent under all semantics,
#: duplicated subgoals split bag from bag-set, dropped/added subgoals are
#: usually inequivalent unless Σ makes the subgoal redundant.
MUTATIONS = ("rename", "shuffle", "duplicate-atom", "drop-atom", "add-atom")


def _mutate(
    rng: random.Random,
    query: ConjunctiveQuery,
    vocab: _Vocabulary,
    config: GeneratorConfig,
) -> ConjunctiveQuery:
    kind = rng.choice(MUTATIONS)
    body = list(query.body)
    if kind == "rename":
        renaming = {
            v: Variable(f"Y{i}") for i, v in enumerate(query.all_variables())
        }
        return ConjunctiveQuery(
            "Q2",
            [renaming.get(t, t) for t in query.head_terms],
            [atom.substitute(dict(renaming)) for atom in body],
        )
    if kind == "shuffle":
        rng.shuffle(body)
        return ConjunctiveQuery("Q2", query.head_terms, body)
    if kind == "duplicate-atom":
        body.append(rng.choice(body))
        return ConjunctiveQuery("Q2", query.head_terms, body)
    if kind == "drop-atom" and len(body) > 1:
        victim = rng.randrange(len(body))
        try:
            return ConjunctiveQuery(
                "Q2", query.head_terms, body[:victim] + body[victim + 1 :]
            )
        except QueryError:
            pass  # dropping the atom would orphan a head variable
    # "add-atom", and the fallback for an unsafe drop.
    pool = query.all_variables() or [Variable("X0")]
    predicate = rng.choice(vocab.names)
    extra = Atom(
        predicate,
        [
            _random_term(rng, pool, config, config.constant_bias)
            for _ in range(vocab.arities[predicate])
        ],
    )
    return ConjunctiveQuery("Q2", query.head_terms, body + [extra])


# --------------------------------------------------------------------------- #
# Dependencies
# --------------------------------------------------------------------------- #
def _dependency_atom(
    rng: random.Random,
    vocab: _Vocabulary,
    pool: list[Variable],
    config: GeneratorConfig,
    constant_bias: float,
) -> Atom:
    predicate = rng.choice(vocab.names)
    return Atom(
        predicate,
        [
            _random_term(rng, pool, config, constant_bias)
            for _ in range(vocab.arities[predicate])
        ],
    )


def _random_tgd(
    rng: random.Random, vocab: _Vocabulary, config: GeneratorConfig, name: str
) -> TGD | None:
    universal = [Variable(f"U{i}") for i in range(rng.randint(1, 3))]
    premise = [
        _dependency_atom(rng, vocab, universal, config, constant_bias=0.0)
        for _ in range(rng.randint(1, 2))
    ]
    # The conclusion pool mixes premise variables (frontier) with fresh ones
    # (implicitly existentially quantified by the TGD model).
    premise_vars = sorted(
        {v for atom in premise for v in atom.variables()}, key=lambda v: v.name
    )
    conclusion_pool = premise_vars + [
        Variable(f"V{i}") for i in range(rng.randint(1, 2))
    ]
    conclusion = [
        _dependency_atom(
            rng, vocab, conclusion_pool, config, config.conclusion_constant_bias
        )
        for _ in range(rng.randint(1, 2))
    ]
    return TGD(premise, conclusion, name=name)


def _random_egd(
    rng: random.Random, vocab: _Vocabulary, config: GeneratorConfig, name: str
) -> EGD | None:
    wide = [p for p in vocab.names if vocab.arities[p] >= 2]
    if wide and rng.random() < 0.7:
        # A functional dependency: two atoms of one predicate agreeing on a
        # key position force agreement on a value position — the shape that
        # interleaves with tgd steps via assignment fixing.
        predicate = rng.choice(wide)
        arity = vocab.arities[predicate]
        key = rng.randrange(arity)
        value = rng.choice([i for i in range(arity) if i != key])
        shared = Variable("K")
        left = [
            shared if i == key else Variable(f"A{i}") for i in range(arity)
        ]
        right = [
            shared if i == key else Variable(f"B{i}") for i in range(arity)
        ]
        return EGD(
            [Atom(predicate, left), Atom(predicate, right)],
            _equality(left[value], right[value]),
            name=name,
        )
    # A generic egd: random premise, equality between two of its variables.
    pool = [Variable(f"U{i}") for i in range(rng.randint(2, 4))]
    premise = [
        _dependency_atom(rng, vocab, pool, config, constant_bias=0.0)
        for _ in range(rng.randint(1, 2))
    ]
    premise_vars = sorted(
        {v for atom in premise for v in atom.variables()}, key=lambda v: v.name
    )
    if len(premise_vars) < 2:
        return None
    left, right = rng.sample(premise_vars, 2)
    return EGD(premise, _equality(left, right), name=name)


def _equality(left: Term, right: Term):
    from ..core.atoms import EqualityAtom

    return EqualityAtom(left, right)


def generate_dependencies(
    seed: int, block: int, config: GeneratorConfig = DEFAULT_CONFIG
) -> tuple[DependencySet, _Vocabulary]:
    """The regularized, weakly acyclic Σ shared by one block of cases."""
    rng = _rng(seed, f"sigma:{block}")
    vocab = _vocabulary(rng, config)
    dependencies: list[Dependency] = []
    for i in range(rng.randint(0, config.max_tgds)):
        tgd = _random_tgd(rng, vocab, config, name=f"t{i + 1}")
        if tgd is not None:
            dependencies.append(tgd)
    for i in range(rng.randint(0, config.max_egds)):
        egd = _random_egd(rng, vocab, config, name=f"e{i + 1}")
        if egd is not None:
            dependencies.append(egd)
    set_valued = [
        name for name in vocab.names if rng.random() < config.set_valued_bias
    ]
    sigma = regularize(DependencySet(dependencies, set_valued))
    # Weak acyclicity guarantees chase termination (Appendix H.1); greedily
    # drop tgds — most recently generated first, so the survivor prefix stays
    # stable — until the remainder is weakly acyclic.
    while not is_weakly_acyclic(sigma):
        tgds = [d for d in sigma.dependencies if isinstance(d, TGD)]
        sigma = sigma.without(tgds[-1])
    return sigma, vocab


def _case_with_sigma(
    seed: int,
    index: int,
    config: GeneratorConfig,
    sigma: DependencySet,
    vocab: _Vocabulary,
) -> FuzzCase:
    rng = _rng(seed, f"case:{index}")
    query = _random_query(rng, vocab, config)
    other = _mutate(rng, query, vocab, config)
    return FuzzCase(
        query=query,
        other=other,
        dependencies=sigma,
        max_steps=config.max_steps,
        origin=f"seed{seed}:{index}",
        seed=seed,
        index=index,
    )


def _block_size(config: GeneratorConfig) -> int:
    # Clamped once here so every caller agrees: sigma_block_size <= 1 means
    # "fresh Σ per case" rather than a ZeroDivisionError.
    return max(1, config.sigma_block_size)


def generate_case(
    seed: int, index: int, config: GeneratorConfig = DEFAULT_CONFIG
) -> FuzzCase:
    """The *index*-th case of the campaign seeded with *seed*.

    Pure function of its arguments: campaigns, replays, and shrinking all
    reconstruct identical cases from ``(seed, index)``.
    """
    sigma, vocab = generate_dependencies(
        seed, index // _block_size(config), config
    )
    return _case_with_sigma(seed, index, config, sigma, vocab)


def generate_block(
    seed: int,
    block: int,
    config: GeneratorConfig = DEFAULT_CONFIG,
    *,
    stop: int | None = None,
) -> list[FuzzCase]:
    """Every case of Σ-block *block*, truncated at global case index *stop*.

    Identical to calling :func:`generate_case` per index, but Σ — whose
    construction pays for regularization and a weak-acyclicity SCC pass —
    is built once for the whole block.
    """
    block_size = _block_size(config)
    start = block * block_size
    end = start + block_size if stop is None else min(start + block_size, stop)
    if end <= start:
        return []
    sigma, vocab = generate_dependencies(seed, block, config)
    return [
        _case_with_sigma(seed, index, config, sigma, vocab)
        for index in range(start, end)
    ]


def generate_cases(
    seed: int, count: int, config: GeneratorConfig = DEFAULT_CONFIG
) -> list[FuzzCase]:
    """The first *count* cases of the campaign seeded with *seed*."""
    cases: list[FuzzCase] = []
    block = 0
    while len(cases) < count:
        cases.extend(generate_block(seed, block, config, stop=count))
        block += 1
    return cases


def with_max_steps(case: FuzzCase, max_steps: int) -> FuzzCase:
    """A copy of *case* with a different chase budget."""
    return replace(case, max_steps=max_steps)
