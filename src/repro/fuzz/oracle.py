"""The differential oracle: every cheap invariant this repository can check.

Given a :class:`~repro.fuzz.generator.FuzzCase` (a query pair plus Σ), the
oracle runs six independent families of checks and reports every mismatch:

1. **Engine differential** — the accelerated chase drivers
   (:func:`repro.chase.sound_chase.sound_chase`, delta-driven, indexed) must
   reproduce the frozen reference drivers
   (:mod:`repro.chase.reference`) *step for step*: same step records, same
   terminal query, and the same outcome kind when the chase fails or runs
   out of budget.  The homomorphism engines are compared the same way, and
   so are the binding-level applicability probes: for every dependency of
   Σ, the zero-materialization trigger enumeration of
   :mod:`repro.chase.steps` must yield the same homomorphisms, with the
   same key order, as the frozen pre-kernel path.
2. **Proposition 6.1** — the bag ⇒ bag-set ⇒ set implication chain must hold
   across the three verdicts of a :class:`~repro.session.Session`; each
   verdict is additionally recomputed from the *reference* chase results, so
   a chase divergence that happens to produce a plausible query still trips
   the oracle.
3. **Datalog round trip** — rendering a query or dependency and parsing it
   back must reproduce the object (dependency names are rendering-invisible
   and are compared structurally).
4. **SQL round trip** — rendering a query to SQL against the case's derived
   schema and translating it back must yield an isomorphic query.
5. **Static analysis** — the chase-free analyzer must agree with
   :func:`repro.dependencies.is_weakly_acyclic` on every Σ, its termination
   certificate (or witness cycle) must machine-verify, and on weakly
   acyclic Σ the certificate's static chase-depth bound must dominate the
   rounds every terminated reference chase actually took.
6. **Incremental resume** — replaying the case as a *delta sequence* (a
   head-safe prefix of the query grown one atom at a time, then the second
   half of Σ one dependency at a time) through
   :func:`repro.chase.incremental.resume_chase` must land on a genuine
   fixpoint (no applicable step remains) that is Σ-equivalent to a cold
   chase of the same accumulated state, with agreeing outcome kinds when a
   chase fails.

Every check is pure: the oracle never mutates the case and builds a fresh
:class:`Session` per report, so corpus replays and shrink probes are
hermetic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..chase.incremental import (
    ChaseDelta,
    chase_with_checkpoint,
    has_applicable_step,
    resume_chase,
)
from ..chase.reference import (
    _iter_applicable_egd_homomorphisms as _reference_egd_triggers,
    _iter_applicable_tgd_homomorphisms as _reference_tgd_triggers,
    sound_chase_reference,
)
from ..chase.sound_chase import sound_chase
from ..chase.steps import (
    ChaseFailedError,
    iter_applicable_egd_homomorphisms,
    iter_applicable_tgd_homomorphisms,
)
from ..core.homomorphism import find_isomorphism, iter_homomorphisms
from ..core.query import ConjunctiveQuery
from ..core.reference import iter_homomorphisms_reference
from ..dependencies.base import EGD, TGD, Dependency, DependencySet
from ..dependencies.weak_acyclicity import is_weakly_acyclic
from ..datalog import parse_dependency, parse_query, render_dependency, render_query
from ..equivalence.decision import EquivalenceVerdict
from ..exceptions import ChaseNonTerminationError, ReproError
from ..schema.schema import DatabaseSchema
from ..semantics import Semantics
from ..session.engine import Session, assert_proposition_6_1
from ..sql import query_to_sql, translate_sql
from .generator import FuzzCase

#: Order matters: Proposition 6.1 reads bag ⇒ bag-set ⇒ set.
ALL_SEMANTICS = (Semantics.BAG, Semantics.BAG_SET, Semantics.SET)


@dataclass(frozen=True)
class OracleMismatch:
    """One invariant violation: which check tripped, and the evidence."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"{self.check}: {self.detail}"


@dataclass
class CaseReport:
    """Everything one oracle pass over one case produced."""

    case: FuzzCase
    mismatches: list[OracleMismatch] = field(default_factory=list)
    #: Verdicts per semantics, for campaign statistics; absent when a chase
    #: failed or exhausted its budget.
    verdicts: dict[Semantics, bool] = field(default_factory=dict)
    #: True when some chase of the case ran out of its step budget (the
    #: engines still had to agree on that outcome for the case to pass).
    budget_exhausted: bool = False

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def failed_checks(self) -> list[str]:
        return [mismatch.check for mismatch in self.mismatches]

    def __str__(self) -> str:
        status = "ok" if self.ok else "; ".join(map(str, self.mismatches))
        return f"{self.case.origin}: {status}"


# --------------------------------------------------------------------------- #
# Chase outcomes
# --------------------------------------------------------------------------- #
def _chase_outcome(chase_fn, query, dependencies, semantics, max_steps):
    """Normalize a chase run into a comparable (kind, payload) pair."""
    try:
        result = chase_fn(query, dependencies, semantics, max_steps)
    except ChaseNonTerminationError:
        return ("budget-exhausted", None)
    except ChaseFailedError:
        return ("chase-failed", None)
    return ("terminated", result)


def _describe(outcome) -> str:
    kind, result = outcome
    if result is None:
        return kind
    return f"{kind}: {result.query} after {result.step_count} steps"


def _compare_chases(case: FuzzCase, report: CaseReport) -> dict:
    """Run both engines on both queries under all semantics; return the
    reference outcomes keyed by (which-query, semantics) for reuse."""
    reference_outcomes: dict[tuple[str, Semantics], tuple] = {}
    for label, query in (("query", case.query), ("other", case.other)):
        for semantics in ALL_SEMANTICS:
            fast = _chase_outcome(
                sound_chase, query, case.dependencies, semantics, case.max_steps
            )
            slow = _chase_outcome(
                sound_chase_reference,
                query,
                case.dependencies,
                semantics,
                case.max_steps,
            )
            reference_outcomes[(label, semantics)] = slow
            if slow[0] == "budget-exhausted":
                report.budget_exhausted = True
            if fast[0] != slow[0]:
                report.mismatches.append(
                    OracleMismatch(
                        f"chase-differential[{semantics}]",
                        f"{label}: accelerated {_describe(fast)} vs "
                        f"reference {_describe(slow)}",
                    )
                )
                continue
            if fast[0] != "terminated":
                continue
            fast_result, slow_result = fast[1], slow[1]
            if fast_result.query != slow_result.query:
                report.mismatches.append(
                    OracleMismatch(
                        f"chase-differential[{semantics}]",
                        f"{label}: terminal queries differ — accelerated "
                        f"{fast_result.query} vs reference {slow_result.query}",
                    )
                )
            elif fast_result.steps != slow_result.steps:
                report.mismatches.append(
                    OracleMismatch(
                        f"chase-differential[{semantics}]",
                        f"{label}: step records diverge at step "
                        f"{_first_divergence(fast_result.steps, slow_result.steps)}",
                    )
                )
    return reference_outcomes


def _first_divergence(left: list, right: list) -> int:
    for position, (a, b) in enumerate(zip(left, right)):
        if a != b:
            return position
    return min(len(left), len(right))


def _compare_homomorphism_engines(case: FuzzCase, report: CaseReport) -> None:
    """Indexed vs reference homomorphism search between the two bodies."""
    fast = list(iter_homomorphisms(case.query.body, case.other.body))
    slow = list(iter_homomorphisms_reference(case.query.body, case.other.body))
    if fast != slow:
        report.mismatches.append(
            OracleMismatch(
                "homomorphism-differential",
                f"{len(fast)} indexed vs {len(slow)} reference homomorphisms "
                "(or a different enumeration order)",
            )
        )


def _compare_applicability_probes(case: FuzzCase, report: CaseReport) -> None:
    """Binding-level trigger enumeration vs the frozen pre-kernel path.

    The chase differential (check 1) compares what the drivers *applied*;
    this compares what the applicability layer *offered*: for every
    dependency of Σ against both queries, the zero-materialization probe of
    :mod:`repro.chase.steps` must yield the same applicable triggers — same
    dicts, same key order (hence the ``items()`` comparison), same
    equality images — as the frozen backtracking enumeration.
    """
    for label, query in (("query", case.query), ("other", case.other)):
        for dependency in case.dependencies:
            if isinstance(dependency, TGD):
                fast = [
                    list(hom.items())
                    for hom in iter_applicable_tgd_homomorphisms(query, dependency)
                ]
                slow = [
                    list(hom.items())
                    for hom in _reference_tgd_triggers(query, dependency)
                ]
            else:
                fast = [
                    (list(hom.items()), left, right)
                    for hom, left, right in iter_applicable_egd_homomorphisms(
                        query, dependency
                    )
                ]
                slow = [
                    (list(hom.items()), left, right)
                    for hom, left, right in _reference_egd_triggers(query, dependency)
                ]
            if fast != slow:
                report.mismatches.append(
                    OracleMismatch(
                        "probe-differential",
                        f"{label}/{dependency.name}: binding-level probe "
                        f"offered {len(fast)} triggers vs {len(slow)} "
                        "reference (or a different order)",
                    )
                )


# --------------------------------------------------------------------------- #
# Proposition 6.1 and verdict differentials
# --------------------------------------------------------------------------- #
def _check_verdicts(
    case: FuzzCase,
    report: CaseReport,
    reference_outcomes: dict,
    session: Session | None,
    precomputed: dict[Semantics, EquivalenceVerdict] | None = None,
) -> None:
    """Session verdicts: Proposition 6.1 chain + reference-chase recomputation.

    ``precomputed`` lets a campaign runner supply verdicts it already
    obtained through ``Session.decide_many`` (exercising the batch
    pipelines); otherwise a session is consulted directly.
    """
    if session is None:
        session = Session(
            dependencies=case.dependencies, max_steps=case.max_steps
        )
    verdicts: dict[Semantics, EquivalenceVerdict] = {}
    for semantics in ALL_SEMANTICS:
        if precomputed is not None and semantics in precomputed:
            verdicts[semantics] = precomputed[semantics]
            continue
        try:
            verdicts[semantics] = session.decide(
                case.query, case.other, semantics, case.max_steps
            )
        except (ChaseNonTerminationError, ChaseFailedError):
            continue  # outcome-kind agreement was already checked above
    report.verdicts = {
        semantics: bool(verdict) for semantics, verdict in verdicts.items()
    }
    try:
        assert_proposition_6_1(verdicts)
    except AssertionError as error:
        report.mismatches.append(OracleMismatch("proposition-6.1", str(error)))

    # Recompute each verdict from the *reference* chase results: the session
    # must agree with the decision the frozen engines would have made.
    for semantics, verdict in verdicts.items():
        left = reference_outcomes.get(("query", semantics))
        right = reference_outcomes.get(("other", semantics))
        if not left or not right:
            continue
        if left[0] != "terminated" or right[0] != "terminated":
            continue
        strategy = session.strategy_for(semantics)
        expected = strategy.equivalent_chased(
            left[1].query, right[1].query, session.dependencies
        )
        if bool(verdict) != bool(expected):
            report.mismatches.append(
                OracleMismatch(
                    f"verdict-differential[{semantics}]",
                    f"session decided {bool(verdict)} but the reference "
                    f"chases decide {expected}",
                )
            )


# --------------------------------------------------------------------------- #
# Round trips
# --------------------------------------------------------------------------- #
def _dependency_signature(dependency: Dependency) -> tuple:
    """Structural identity of a dependency, ignoring its (unrendered) name."""
    if isinstance(dependency, TGD):
        return ("tgd", dependency.premise, dependency.conclusion)
    assert isinstance(dependency, EGD)
    return ("egd", dependency.premise, dependency.equalities)


def _check_datalog_round_trip(case: FuzzCase, report: CaseReport) -> None:
    for label, query in (("query", case.query), ("other", case.other)):
        rendered = render_query(query)
        try:
            parsed = parse_query(rendered)
        except ReproError as error:
            report.mismatches.append(
                OracleMismatch(
                    "datalog-roundtrip",
                    f"{label}: {rendered!r} failed to parse back: {error}",
                )
            )
            continue
        if parsed != query:
            report.mismatches.append(
                OracleMismatch(
                    "datalog-roundtrip",
                    f"{label}: {rendered!r} parsed back as {parsed}",
                )
            )
    for dependency in case.dependencies:
        rendered = render_dependency(dependency)
        try:
            parsed = parse_dependency(rendered)
        except ReproError as error:
            report.mismatches.append(
                OracleMismatch(
                    "datalog-roundtrip",
                    f"dependency {rendered!r} failed to parse back: {error}",
                )
            )
            continue
        if len(parsed) != 1 or _dependency_signature(
            parsed[0]
        ) != _dependency_signature(dependency):
            report.mismatches.append(
                OracleMismatch(
                    "datalog-roundtrip",
                    f"dependency {rendered!r} parsed back as "
                    f"{[str(d) for d in parsed]}",
                )
            )


def _check_sql_round_trip(case: FuzzCase, report: CaseReport) -> None:
    if not case.has_consistent_arities():
        return  # hand-made corpus cases may overload a predicate name
    schema = DatabaseSchema.from_arities(
        case.arities(), set_valued=case.dependencies.set_valued_predicates
    )
    for label, query in (("query", case.query), ("other", case.other)):
        if not query.head_terms:
            continue  # SELECT needs at least one output column
        try:
            sql = query_to_sql(query, schema, Semantics.BAG_SET)
            translated = translate_sql(sql, schema).query
        except ReproError as error:
            report.mismatches.append(
                OracleMismatch(
                    "sql-roundtrip", f"{label}: round trip raised {error}"
                )
            )
            continue
        if not isinstance(translated, ConjunctiveQuery):
            report.mismatches.append(
                OracleMismatch(
                    "sql-roundtrip",
                    f"{label}: {sql!r} translated back as a non-CQ query",
                )
            )
            continue
        # The translator names every query "Q" and invents variable names;
        # isomorphism (head-respecting bijection of subgoal occurrences) is
        # the right notion of "came back unchanged".
        renamed = ConjunctiveQuery(
            query.head_predicate, translated.head_terms, translated.body
        )
        if find_isomorphism(query, renamed) is None:
            report.mismatches.append(
                OracleMismatch(
                    "sql-roundtrip",
                    f"{label}: {sql!r} translated back as non-isomorphic "
                    f"{translated}",
                )
            )


# --------------------------------------------------------------------------- #
# Incremental resume
# --------------------------------------------------------------------------- #
def _delta_sequence(case: FuzzCase):
    """Decompose the case into a start state and a list of monotone deltas.

    The start query is the shortest head-safe body prefix; every further
    body atom becomes one atom delta.  The start Σ is the first half of the
    case's dependency set (all set-valued markers included from the start,
    so only dependencies are ever delta'd); the second half arrives one
    dependency at a time.  Returns ``None`` when the case offers no delta
    to replay.
    """
    from ..core.terms import Variable

    head_variables = set(case.query.head_variables())
    covered: set = set()
    prefix_length = 1  # a CQ body is a nonempty conjunction
    for position, atom in enumerate(case.query.body):
        covered |= {term for term in atom.terms if isinstance(term, Variable)}
        if covered >= head_variables:
            prefix_length = position + 1
            break
    atom_deltas = case.query.body[prefix_length:]

    all_dependencies = list(case.dependencies)
    split = len(all_dependencies) // 2
    base_sigma = DependencySet(
        all_dependencies[:split] if split else all_dependencies,
        case.dependencies.set_valued_predicates,
    )
    dependency_deltas = all_dependencies[split:] if split else []
    if not atom_deltas and not dependency_deltas:
        return None

    base_query = ConjunctiveQuery(
        case.query.head_predicate,
        case.query.head_terms,
        case.query.body[:prefix_length],
    )
    deltas = [ChaseDelta.atoms(atom) for atom in atom_deltas]
    deltas.extend(ChaseDelta.dependencies(dep) for dep in dependency_deltas)
    return base_query, base_sigma, deltas


def _check_incremental_resume(case: FuzzCase, report: CaseReport) -> None:
    """Resumed delta replay vs cold chase of the same accumulated state.

    Each delta step must (a) agree with a cold chase on the outcome *kind*
    (terminated / chase-failed; budget exhaustion on either side skips the
    rest of the sequence — step accounting legitimately differs between the
    two paths), (b) land on a genuine fixpoint per the trust-nothing
    :func:`~repro.chase.incremental.has_applicable_step` probe, and (c) be
    Σ-equivalent to the cold result under the step's semantics.
    """
    decomposed = _delta_sequence(case)
    if decomposed is None:
        return
    base_query, sigma, deltas = decomposed
    semantics = ALL_SEMANTICS[(case.index or 0) % len(ALL_SEMANTICS)]
    session = Session(max_steps=case.max_steps)
    strategy = session.strategy_for(semantics)
    try:
        _, checkpoint = chase_with_checkpoint(
            base_query, sigma, semantics, case.max_steps
        )
    except ChaseNonTerminationError:
        report.budget_exhausted = True
        return
    except ChaseFailedError:
        return  # kind agreement on full states is covered by check 1

    for position, delta in enumerate(deltas):
        try:
            outcome = resume_chase(checkpoint, delta)
        except ChaseNonTerminationError:
            report.budget_exhausted = True
            return
        except ChaseFailedError:
            outcome = None
        new_sigma = checkpoint.sigma
        if outcome is not None:
            new_sigma = outcome.checkpoint.sigma
            new_query = outcome.checkpoint.base_query
        else:
            from ..chase.incremental import apply_delta_to_query, apply_delta_to_sigma

            new_query = apply_delta_to_query(checkpoint.base_query, delta)
            new_sigma = apply_delta_to_sigma(checkpoint.sigma, delta)
        cold = _chase_outcome(
            sound_chase, new_query, new_sigma, semantics, case.max_steps
        )
        if cold[0] == "budget-exhausted":
            report.budget_exhausted = True
            return
        resumed_kind = "terminated" if outcome is not None else "chase-failed"
        if resumed_kind != cold[0]:
            report.mismatches.append(
                OracleMismatch(
                    f"incremental-resume[{semantics}]",
                    f"delta {position}: resumed chase {resumed_kind} but cold "
                    f"chase {cold[0]}",
                )
            )
            return
        if outcome is None:
            return  # both failed; the accumulated state is inconsistent
        if has_applicable_step(
            outcome.result.query, new_sigma, semantics, case.max_steps
        ):
            report.mismatches.append(
                OracleMismatch(
                    f"incremental-resume[{semantics}]",
                    f"delta {position}: resumed result "
                    f"{outcome.result.query} is not a fixpoint "
                    f"(resumed={outcome.resumed})",
                )
            )
            return
        if not strategy.equivalent_chased(
            outcome.result.query, cold[1].query, new_sigma
        ):
            report.mismatches.append(
                OracleMismatch(
                    f"incremental-resume[{semantics}]",
                    f"delta {position}: resumed result {outcome.result.query} "
                    f"not Σ-equivalent to cold result {cold[1].query} "
                    f"(resumed={outcome.resumed})",
                )
            )
            return
        checkpoint = outcome.checkpoint


# --------------------------------------------------------------------------- #
# Entry point
# --------------------------------------------------------------------------- #
def _check_static_analysis(
    case: FuzzCase, report: CaseReport, reference_outcomes: dict
) -> None:
    """Analyzer verdict agreement, certificate validity, and bound dominance."""
    from ..analysis.static import analyze

    static = analyze(case.dependencies, queries=(case.query, case.other))
    expected = is_weakly_acyclic(case.dependencies)
    if static.certified != expected:
        report.mismatches.append(
            OracleMismatch(
                "static-analysis",
                f"analyzer certified={static.certified} but "
                f"is_weakly_acyclic={expected}",
            )
        )
        return
    if static.certificate is not None:
        certificate = static.certificate
        if not certificate.verify(case.dependencies):
            report.mismatches.append(
                OracleMismatch(
                    "static-analysis", "termination certificate fails verify()"
                )
            )
            return
        for (label, semantics), outcome in reference_outcomes.items():
            kind, result = outcome
            if kind != "terminated":
                continue
            query = case.query if label == "query" else case.other
            bound = certificate.chase_depth_bound(query)
            observed_rounds = result.step_count + 1
            if observed_rounds > bound:
                report.mismatches.append(
                    OracleMismatch(
                        "static-analysis",
                        f"{label}[{semantics}]: observed {observed_rounds} "
                        f"chase rounds exceed the static depth bound {bound}",
                    )
                )
    else:
        assert static.witness is not None
        if not static.witness.verify(case.dependencies):
            report.mismatches.append(
                OracleMismatch("static-analysis", "witness cycle fails verify()")
            )


def run_oracle(
    case: FuzzCase,
    *,
    session: Session | None = None,
    precomputed_verdicts: dict[Semantics, EquivalenceVerdict] | None = None,
) -> CaseReport:
    """Run every check on *case* and return the full report.

    ``session`` (optional) lets a campaign reuse one Session — and hence one
    chase cache — across a block of cases sharing Σ; ``precomputed_verdicts``
    lets it feed in verdicts obtained through the batch pipelines.
    """
    report = CaseReport(case=case)
    reference_outcomes = _compare_chases(case, report)
    _compare_homomorphism_engines(case, report)
    _compare_applicability_probes(case, report)
    _check_verdicts(case, report, reference_outcomes, session, precomputed_verdicts)
    _check_datalog_round_trip(case, report)
    _check_sql_round_trip(case, report)
    _check_static_analysis(case, report, reference_outcomes)
    _check_incremental_resume(case, report)
    return report
