"""JSON serialization of fuzz cases: the regression corpus and failure reports.

Two kinds of files share one format:

* **corpus cases** (``tests/corpus/*.json``) — previously found failures and
  deliberately nasty shapes, committed to the repository and replayed as
  named pytest parametrizations on every run;
* **failure reports** — written by a campaign for every failing case,
  carrying the exact ``seed``/``index`` that reproduces it plus the shrunk
  case, so a nightly soak failure is a one-command replay.

The textual encoding is the rule notation of :mod:`repro.datalog` (queries
and dependencies render/parse losslessly), which keeps corpus files humanly
editable::

    {
      "name": "self-join-under-fd",
      "description": "why this case exists",
      "query": "Q(X) :- p0(X, Y), p0(Y, Y)",
      "other": "Q2(X) :- p0(X, Y), p0(Y, Y), p0(X, Y)",
      "dependencies": ["p0(K, A1) & p0(K, B1) -> A1 = B1"],
      "set_valued": ["p0"],
      "max_steps": 80
    }
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from ..datalog import (
    parse_dependency,
    parse_query,
    render_dependency,
    render_query,
)
from ..dependencies.base import Dependency, DependencySet
from ..exceptions import ReproError
from .generator import DEFAULT_CONFIG, FuzzCase

#: Directory of the committed regression corpus, relative to the repo root.
DEFAULT_CORPUS_DIR = Path(__file__).resolve().parents[3] / "tests" / "corpus"


class CorpusError(ReproError):
    """A corpus file is missing required fields or fails to parse."""


@dataclass(frozen=True)
class CorpusCase:
    """A named, documented fuzz case loaded from (or bound for) a JSON file."""

    name: str
    description: str
    case: FuzzCase


def case_to_dict(
    case: FuzzCase, *, name: str = "", description: str = ""
) -> dict:
    """Serialize a case (plus optional corpus metadata) to a JSON-able dict."""
    payload: dict = {}
    if name:
        payload["name"] = name
    if description:
        payload["description"] = description
    payload.update(
        {
            "query": render_query(case.query),
            "other": render_query(case.other),
            "dependencies": [
                render_dependency(d) for d in case.dependencies
            ],
            "set_valued": sorted(case.dependencies.set_valued_predicates),
            "max_steps": case.max_steps,
        }
    )
    if case.seed is not None:
        payload["seed"] = case.seed
    if case.index is not None:
        payload["index"] = case.index
    return payload


def case_from_dict(payload: dict, *, origin: str = "<corpus>") -> FuzzCase:
    """Deserialize a case; raises :class:`CorpusError` on malformed input."""
    try:
        query = parse_query(payload["query"])
        other = parse_query(payload["other"])
        dependencies: list[Dependency] = []
        for line in payload.get("dependencies", []):
            dependencies.extend(parse_dependency(line))
    except KeyError as error:
        raise CorpusError(f"{origin}: missing field {error}") from error
    except ReproError as error:
        raise CorpusError(f"{origin}: {error}") from error
    return FuzzCase(
        query=query,
        other=other,
        dependencies=DependencySet(
            dependencies, payload.get("set_valued", [])
        ),
        max_steps=int(payload.get("max_steps", DEFAULT_CONFIG.max_steps)),
        origin=origin,
        seed=payload.get("seed"),
        index=payload.get("index"),
    )


def load_corpus_file(path: str | Path) -> CorpusCase:
    """Load one corpus JSON file."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as error:
        raise CorpusError(f"{path}: {error}") from error
    case = case_from_dict(payload, origin=path.name)
    return CorpusCase(
        name=payload.get("name", path.stem),
        description=payload.get("description", ""),
        case=case,
    )


def load_corpus(directory: str | Path = DEFAULT_CORPUS_DIR) -> list[CorpusCase]:
    """Load every ``*.json`` corpus case under *directory*, sorted by name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [
        load_corpus_file(path) for path in sorted(directory.glob("*.json"))
    ]


def iter_corpus_paths(
    directory: str | Path = DEFAULT_CORPUS_DIR,
) -> Iterable[Path]:
    """The corpus file paths, for pytest parametrization ids."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return sorted(directory.glob("*.json"))


def save_case(
    case: FuzzCase,
    path: str | Path,
    *,
    name: str = "",
    description: str = "",
) -> Path:
    """Write a case to *path* as pretty-printed JSON; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = case_to_dict(case, name=name, description=description)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n")
    return path
