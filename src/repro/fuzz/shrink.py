"""Greedy shrinking of failing fuzz cases.

A failure found on a four-atom query under seven dependencies is a chore to
debug; the same failure on one atom under one dependency is a unit test.
:func:`shrink_case` repeatedly tries every single deletion — a body atom of
either query, a dependency of Σ, a set-valuedness marker — and keeps the
first deletion under which the case *still fails the same check*, until no
single deletion preserves the failure.  The result is 1-minimal: removing
any one remaining component makes the failure disappear.

The failure predicate is "same check family still trips" (e.g. any
``chase-differential[...]`` mismatch), not "any mismatch at all": shrinking
must not wander from the bug being reported to a different one.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Iterator

from ..core.query import ConjunctiveQuery
from ..dependencies.base import DependencySet
from ..exceptions import QueryError
from .generator import FuzzCase
from .oracle import run_oracle

#: Upper bound on oracle probes per shrink, a safety valve against
#: pathologically large hand-made cases (generated ones sit far below it).
MAX_PROBES = 400


def check_family(check: str) -> str:
    """The family of a check name: ``chase-differential[bag]`` → ``chase-differential``."""
    return check.split("[", 1)[0]


def fails_like(case: FuzzCase, family: str) -> bool:
    """Does *case* still trip a check of the given family?"""
    report = run_oracle(case)
    return any(check_family(m.check) == family for m in report.mismatches)


def _query_deletions(query: ConjunctiveQuery) -> Iterator[ConjunctiveQuery]:
    if len(query.body) <= 1:
        return
    for index in range(len(query.body)):
        try:
            yield query.drop_atom_at(index)
        except QueryError:
            continue  # dropping this atom would orphan a head variable


def _deletion_candidates(case: FuzzCase) -> Iterator[FuzzCase]:
    """Every case reachable from *case* by one deletion, most valuable first.

    Dependencies go first — dropping one usually removes whole chase
    branches — then body atoms, then set-valuedness markers.
    """
    for dependency in list(case.dependencies):
        yield replace(
            case, dependencies=case.dependencies.without(dependency)
        )
    for smaller in _query_deletions(case.query):
        yield replace(case, query=smaller)
    for smaller in _query_deletions(case.other):
        yield replace(case, other=smaller)
    for name in sorted(case.dependencies.set_valued_predicates):
        remaining = case.dependencies.set_valued_predicates - {name}
        yield replace(
            case,
            dependencies=DependencySet(list(case.dependencies), remaining),
        )


def shrink_case(
    case: FuzzCase,
    failing_check: str,
    *,
    still_fails: Callable[[FuzzCase], bool] | None = None,
    max_probes: int = MAX_PROBES,
) -> FuzzCase:
    """Greedily 1-minimize *case* while it keeps failing like *failing_check*.

    ``still_fails`` overrides the oracle-based predicate (the tests use this
    to shrink against synthetic failures); the default re-runs
    :func:`~repro.fuzz.oracle.run_oracle` per probe and asks whether any
    mismatch of the same family remains.
    """
    family = check_family(failing_check)
    predicate = still_fails or (lambda candidate: fails_like(candidate, family))
    current = case
    probes = 0
    progress = True
    while progress and probes < max_probes:
        progress = False
        for candidate in _deletion_candidates(current):
            probes += 1
            if predicate(candidate):
                # The shrunk case is *not* what (seed, index) regenerates —
                # drop the generator coordinates so a serialized shrunk case
                # never advertises a reproduction recipe that yields
                # different contents; the origin string keeps the provenance.
                current = replace(
                    candidate,
                    origin=f"{case.origin} (shrunk)",
                    seed=None,
                    index=None,
                )
                progress = True
                break
            if probes >= max_probes:
                break
    return current
