"""Tokenizer for the SPJ subset of SQL handled by the library.

The SQL front end covers what the paper's title promises: select–project–join
queries with equality comparisons, optional ``DISTINCT``, optional grouping
and aggregation, and the DDL constraints (``PRIMARY KEY``, ``UNIQUE``,
``FOREIGN KEY ... REFERENCES``) that translate into embedded dependencies.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..exceptions import ParseError

KEYWORDS = {
    "select",
    "distinct",
    "from",
    "where",
    "and",
    "group",
    "by",
    "as",
    "create",
    "table",
    "primary",
    "key",
    "unique",
    "foreign",
    "references",
    "not",
    "null",
    "int",
    "integer",
    "text",
    "varchar",
    "real",
    "float",
    "sum",
    "count",
    "max",
    "min",
}

_TOKEN_REGEX = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+(?:\.\d+)?)
  | (?P<string>'[^']*')
  | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<punct>\(|\)|,|\.|=|;|\*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    """A SQL token: ``kind`` is one of keyword, ident, number, string, punct."""

    kind: str
    value: str
    position: int

    def matches_keyword(self, *keywords: str) -> bool:
        return self.kind == "keyword" and self.value in keywords

    def matches_punct(self, *symbols: str) -> bool:
        return self.kind == "punct" and self.value in symbols


def tokenize(sql: str) -> list[Token]:
    """Tokenize a SQL string; raises :class:`ParseError` on unexpected input."""
    tokens: list[Token] = []
    position = 0
    while position < len(sql):
        match = _TOKEN_REGEX.match(sql, position)
        if match is None:
            raise ParseError(
                f"unexpected character {sql[position]!r} at position {position}",
                position,
            )
        kind = match.lastgroup or ""
        value = match.group()
        if kind not in ("ws", "comment"):
            if kind == "ident" and value.lower() in KEYWORDS:
                tokens.append(Token("keyword", value.lower(), position))
            elif kind == "ident":
                tokens.append(Token("ident", value, position))
            elif kind == "string":
                tokens.append(Token("string", value[1:-1], position))
            else:
                tokens.append(Token(kind, value, position))
        position = match.end()
    return tokens
