"""SQL front end: parsing, DDL-to-dependency translation, and SQL rendering."""

from .ast import (
    AggregateExpression,
    ColumnDefinition,
    ColumnRef,
    CreateTableStatement,
    EqualityCondition,
    ForeignKeyConstraint,
    Literal,
    SelectItem,
    SelectStatement,
    TableRef,
)
from .parser import parse_create_table, parse_select, parse_statements
from .render import aggregate_query_to_sql, query_to_sql
from .translate import (
    TranslatedQuery,
    schema_from_ddl,
    translate_select,
    translate_sql,
)

__all__ = [
    "AggregateExpression",
    "ColumnDefinition",
    "ColumnRef",
    "CreateTableStatement",
    "EqualityCondition",
    "ForeignKeyConstraint",
    "Literal",
    "SelectItem",
    "SelectStatement",
    "TableRef",
    "TranslatedQuery",
    "aggregate_query_to_sql",
    "parse_create_table",
    "parse_select",
    "parse_statements",
    "query_to_sql",
    "schema_from_ddl",
    "translate_select",
    "translate_sql",
]
