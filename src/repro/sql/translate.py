"""Translation between SQL and the conjunctive-query / dependency model.

Two directions are provided:

* :func:`schema_from_ddl` — turn ``CREATE TABLE`` statements into a
  :class:`~repro.schema.schema.DatabaseSchema` plus a
  :class:`~repro.dependencies.base.DependencySet`: PRIMARY KEY and UNIQUE
  constraints become key egds and mark the relation as set valued (the SQL
  standard point the paper makes in its introduction: without such
  constraints a stored relation is a bag), and FOREIGN KEY constraints become
  inclusion-dependency tgds.
* :func:`translate_select` — turn a ``SELECT`` statement into a
  :class:`~repro.core.query.ConjunctiveQuery` or
  :class:`~repro.core.aggregate.AggregateQuery`, together with the query
  evaluation semantics the SQL standard assigns to it (set when ``DISTINCT``
  is present, bag-set when all stored relations are sets, bag otherwise).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.aggregate import AggregateFunction, AggregateQuery, AggregateTerm
from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..dependencies.base import Dependency, DependencySet
from ..dependencies.builders import inclusion_dependency, key_egds
from ..exceptions import TranslationError
from ..schema.schema import DatabaseSchema, RelationSchema
from ..semantics import Semantics
from .ast import (
    AggregateExpression,
    ColumnRef,
    CreateTableStatement,
    Literal,
    SelectStatement,
)
from .parser import parse_select, parse_statements


# ---------------------------------------------------------------------- #
# DDL → schema + dependencies
# ---------------------------------------------------------------------- #
def schema_from_ddl(
    statements: list[CreateTableStatement] | str,
) -> tuple[DatabaseSchema, DependencySet]:
    """Build the database schema and embedded dependencies from DDL.

    *statements* may be a SQL script (string) or a list of parsed
    CREATE TABLE statements.
    """
    if isinstance(statements, str):
        parsed = [s for s in parse_statements(statements) if isinstance(s, CreateTableStatement)]
    else:
        parsed = list(statements)

    schema = DatabaseSchema()
    dependencies: list[Dependency] = []
    set_valued: set[str] = set()

    for statement in parsed:
        columns = statement.column_names()
        relation = RelationSchema(statement.table, len(columns), columns)
        primary_key = statement.effective_primary_key()
        uniques = statement.effective_unique_constraints()
        if primary_key or uniques:
            # The SQL standard treats a table with a PRIMARY KEY or UNIQUE
            # constraint as duplicate free.
            relation = relation.as_set_valued()
            set_valued.add(statement.table)
        schema.add_relation(relation)

        for key_columns, label in [(primary_key, "pk")] + [
            (unique, f"unique{i}") for i, unique in enumerate(uniques)
        ]:
            if not key_columns:
                continue
            positions = [relation.attribute_position(c) for c in key_columns]
            dependencies.extend(
                key_egds(statement.table, relation.arity, positions,
                         name_prefix=f"{label}_{statement.table}")
            )

    # Foreign keys need every referenced table's arity, hence the second pass.
    for statement in parsed:
        source = schema.relation(statement.table)
        for constraint in statement.foreign_keys:
            if constraint.referenced_table not in schema:
                raise TranslationError(
                    f"foreign key in {statement.table} references unknown table "
                    f"{constraint.referenced_table}"
                )
            target = schema.relation(constraint.referenced_table)
            dependencies.append(
                inclusion_dependency(
                    source.name,
                    source.arity,
                    [source.attribute_position(c) for c in constraint.columns],
                    target.name,
                    target.arity,
                    [target.attribute_position(c) for c in constraint.referenced_columns],
                    name=f"fk_{source.name}_{target.name}",
                )
            )

    return schema, DependencySet(dependencies, set_valued)


# ---------------------------------------------------------------------- #
# SELECT → conjunctive / aggregate query
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class TranslatedQuery:
    """A translated SELECT statement.

    ``semantics`` is the evaluation semantics SQL assigns to the statement on
    the given schema: set when DISTINCT is present, bag-set when every stored
    relation is set valued, bag otherwise.
    """

    query: ConjunctiveQuery | AggregateQuery
    distinct: bool
    semantics: Semantics
    statement: SelectStatement

    @property
    def is_aggregate(self) -> bool:
        return isinstance(self.query, AggregateQuery)


class _SlotUnionFind:
    """Union-find over (alias, column) slots driven by WHERE equalities."""

    def __init__(self) -> None:
        self.parent: dict[tuple[str, str], tuple[str, str]] = {}
        self.constant: dict[tuple[str, str], object] = {}

    def _ensure(self, slot: tuple[str, str]) -> None:
        self.parent.setdefault(slot, slot)

    def find(self, slot: tuple[str, str]) -> tuple[str, str]:
        self._ensure(slot)
        root = slot
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[slot] != root:
            self.parent[slot], slot = root, self.parent[slot]
        return root

    def union(self, first: tuple[str, str], second: tuple[str, str]) -> None:
        root1, root2 = self.find(first), self.find(second)
        if root1 == root2:
            return
        self.parent[root2] = root1
        if root2 in self.constant:
            self.assign_constant(root1, self.constant[root2])

    def assign_constant(self, slot: tuple[str, str], value: object) -> None:
        root = self.find(slot)
        existing = self.constant.get(root)
        if existing is not None and existing != value:
            raise TranslationError(
                f"conflicting constants {existing!r} and {value!r} for column "
                f"{slot[0]}.{slot[1]}"
            )
        self.constant[root] = value

    def constant_for(self, slot: tuple[str, str]) -> object | None:
        return self.constant.get(self.find(slot))


def _variable_name(alias: str, column: str) -> str:
    return f"{alias[:1].upper()}{alias[1:]}_{column}"


def translate_select(
    statement: SelectStatement | str, schema: DatabaseSchema,
    set_valued_predicates: frozenset[str] | None = None,
) -> TranslatedQuery:
    """Translate a SELECT statement over *schema* into the query model."""
    if isinstance(statement, str):
        statement = parse_select(statement)

    alias_to_table: dict[str, str] = {}
    for table_ref in statement.from_tables:
        if table_ref.table not in schema:
            raise TranslationError(f"unknown table {table_ref.table!r} in FROM clause")
        alias = table_ref.effective_alias
        if alias in alias_to_table:
            raise TranslationError(f"duplicate alias {alias!r} in FROM clause")
        alias_to_table[alias] = table_ref.table

    def resolve(ref: ColumnRef) -> tuple[str, str]:
        if ref.qualifier is not None:
            if ref.qualifier not in alias_to_table:
                raise TranslationError(f"unknown table alias {ref.qualifier!r}")
            table = alias_to_table[ref.qualifier]
            relation = schema.relation(table)
            if ref.column not in relation.attribute_names:
                raise TranslationError(
                    f"table {table} has no column {ref.column!r}"
                )
            return ref.qualifier, ref.column
        owners = [
            alias
            for alias, table in alias_to_table.items()
            if ref.column in schema.relation(table).attribute_names
        ]
        if not owners:
            raise TranslationError(f"column {ref.column!r} not found in FROM tables")
        if len(owners) > 1:
            raise TranslationError(
                f"column {ref.column!r} is ambiguous (tables {sorted(owners)})"
            )
        return owners[0], ref.column

    slots = _SlotUnionFind()
    for condition in statement.where_conditions:
        left_slot = resolve(condition.left)
        if isinstance(condition.right, Literal):
            slots.assign_constant(left_slot, condition.right.value)
        else:
            slots.union(left_slot, resolve(condition.right))

    def term_for(slot: tuple[str, str]) -> Term:
        constant = slots.constant_for(slot)
        if constant is not None:
            return Constant(constant)
        root = slots.find(slot)
        return Variable(_variable_name(*root))

    body: list[Atom] = []
    for table_ref in statement.from_tables:
        alias = table_ref.effective_alias
        relation = schema.relation(table_ref.table)
        terms = [term_for((alias, column)) for column in relation.attribute_names]
        body.append(Atom(relation.name, terms))

    # Determine the evaluation semantics SQL would use.
    if set_valued_predicates is None:
        set_valued_predicates = frozenset(schema.set_valued_relations())
    referenced_tables = {table_ref.table for table_ref in statement.from_tables}
    if statement.distinct:
        semantics = Semantics.SET
    elif referenced_tables <= set_valued_predicates:
        semantics = Semantics.BAG_SET
    else:
        semantics = Semantics.BAG

    aggregate_items = [
        item for item in statement.select_items
        if isinstance(item.expression, AggregateExpression)
    ]
    plain_items = [
        item for item in statement.select_items
        if not isinstance(item.expression, AggregateExpression)
    ]

    if aggregate_items:
        if len(aggregate_items) != 1:
            raise TranslationError(
                "only a single aggregate output per query is supported "
                "(as in the paper's aggregate query syntax)"
            )
        grouping_terms: list[Term] = []
        for item in plain_items:
            if not isinstance(item.expression, ColumnRef):
                raise TranslationError(
                    "grouping select items must be column references"
                )
            grouping_terms.append(term_for(resolve(item.expression)))
        expression = aggregate_items[0].expression
        assert isinstance(expression, AggregateExpression)
        if expression.argument is None:
            aggregate_term = AggregateTerm(AggregateFunction.COUNT_STAR)
        else:
            argument_term = term_for(resolve(expression.argument))
            if not isinstance(argument_term, Variable):
                raise TranslationError(
                    "the aggregated column must not be bound to a constant"
                )
            aggregate_term = AggregateTerm(
                AggregateFunction.from_name(expression.function), argument_term
            )
        query: ConjunctiveQuery | AggregateQuery = AggregateQuery(
            "Q", grouping_terms, aggregate_term, body
        )
    else:
        head_terms: list[Term] = []
        for item in statement.select_items:
            if isinstance(item.expression, ColumnRef):
                head_terms.append(term_for(resolve(item.expression)))
            elif isinstance(item.expression, Literal):
                head_terms.append(Constant(item.expression.value))
            else:  # pragma: no cover - excluded above
                raise TranslationError("unexpected select item")
        query = ConjunctiveQuery("Q", head_terms, body)

    return TranslatedQuery(query, statement.distinct, semantics, statement)


def translate_sql(
    sql: str, schema: DatabaseSchema
) -> TranslatedQuery:
    """Parse and translate a single SELECT statement."""
    return translate_select(parse_select(sql), schema)
