"""Rendering conjunctive / aggregate queries back to SQL text.

The reformulation algorithms operate on conjunctive queries; rendering their
outputs back to SQL closes the loop promised by the paper's title — SQL in,
equivalent (Σ-minimal) SQL out.  Each body atom becomes a FROM item with a
generated alias; shared variables become equality join predicates; constants
become equality filters; ``DISTINCT`` is added when the caller evaluates the
query under set semantics.
"""

from __future__ import annotations

from ..core.aggregate import AggregateFunction, AggregateQuery
from ..core.query import ConjunctiveQuery
from ..core.terms import Constant, Term, Variable
from ..exceptions import TranslationError
from ..schema.schema import DatabaseSchema
from ..semantics import Semantics


def _format_literal(value: object) -> str:
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    return str(value)


class _RenderContext:
    """Tracks alias assignment and variable occurrences for one query body."""

    def __init__(self, query: ConjunctiveQuery | AggregateQuery, schema: DatabaseSchema):
        self.schema = schema
        self.aliases: list[tuple[str, str]] = []  # (alias, table)
        self.variable_slots: dict[Variable, list[str]] = {}
        self.filters: list[str] = []
        self.joins: list[str] = []
        self._build(query)

    def _build(self, query: ConjunctiveQuery | AggregateQuery) -> None:
        for index, atom in enumerate(query.body):
            if atom.predicate not in self.schema:
                raise TranslationError(
                    f"cannot render atom over unknown relation {atom.predicate!r}"
                )
            relation = self.schema.relation(atom.predicate)
            if relation.arity != atom.arity:
                raise TranslationError(
                    f"atom {atom} arity does not match schema relation {relation}"
                )
            alias = f"t{index + 1}"
            self.aliases.append((alias, atom.predicate))
            for position, term in enumerate(atom.terms):
                column = relation.attribute_names[position]
                slot = f"{alias}.{column}"
                if isinstance(term, Constant):
                    self.filters.append(f"{slot} = {_format_literal(term.value)}")
                else:
                    occurrences = self.variable_slots.setdefault(term, [])
                    if occurrences:
                        self.joins.append(f"{occurrences[0]} = {slot}")
                    occurrences.append(slot)

    def slot_for(self, term: Term) -> str:
        if isinstance(term, Constant):
            return _format_literal(term.value)
        occurrences = self.variable_slots.get(term)
        if not occurrences:
            raise TranslationError(f"head variable {term} does not occur in the body")
        return occurrences[0]

    def from_clause(self) -> str:
        return ", ".join(f"{table} {alias}" for alias, table in self.aliases)

    def where_clause(self) -> str:
        conditions = self.joins + self.filters
        return " AND ".join(conditions)


def query_to_sql(
    query: ConjunctiveQuery,
    schema: DatabaseSchema,
    semantics: Semantics | str = Semantics.BAG_SET,
) -> str:
    """Render a conjunctive query as a SQL SELECT statement."""
    semantics = Semantics.from_name(semantics)
    context = _RenderContext(query, schema)
    select_list = ", ".join(context.slot_for(term) for term in query.head_terms)
    distinct = "DISTINCT " if semantics is Semantics.SET else ""
    sql = f"SELECT {distinct}{select_list} FROM {context.from_clause()}"
    where = context.where_clause()
    if where:
        sql += f" WHERE {where}"
    return sql


def aggregate_query_to_sql(query: AggregateQuery, schema: DatabaseSchema) -> str:
    """Render an aggregate query as a SQL SELECT ... GROUP BY statement."""
    context = _RenderContext(query, schema)
    select_parts = [context.slot_for(term) for term in query.grouping_terms]
    aggregate_argument = query.aggregate.argument
    if aggregate_argument is None:  # COUNT_STAR is the only argument-free case
        select_parts.append("COUNT(*)")
    else:
        argument = context.slot_for(aggregate_argument)
        select_parts.append(f"{query.aggregate.function.value.upper()}({argument})")
    sql = f"SELECT {', '.join(select_parts)} FROM {context.from_clause()}"
    where = context.where_clause()
    if where:
        sql += f" WHERE {where}"
    if query.grouping_terms:
        group_by = ", ".join(context.slot_for(term) for term in query.grouping_terms)
        sql += f" GROUP BY {group_by}"
    return sql
