"""Recursive-descent parser for the supported SQL fragment.

``parse_select`` handles SPJ queries with equality WHERE conditions,
``DISTINCT``, ``GROUP BY``, and the four aggregate functions;
``parse_create_table`` handles table definitions with PRIMARY KEY, UNIQUE and
FOREIGN KEY constraints; ``parse_statements`` splits a script on ``;`` and
parses each statement.
"""

from __future__ import annotations

from ..exceptions import ParseError
from .ast import (
    AggregateExpression,
    ColumnDefinition,
    ColumnRef,
    CreateTableStatement,
    EqualityCondition,
    ForeignKeyConstraint,
    Literal,
    SelectItem,
    SelectStatement,
    TableRef,
)
from .lexer import Token, tokenize

_AGGREGATE_KEYWORDS = ("sum", "count", "max", "min")
_TYPE_KEYWORDS = ("int", "integer", "text", "varchar", "real", "float")


class _SqlParser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # ------------------------------------------------------------------ #
    def peek(self, offset: int = 0) -> Token | None:
        position = self.index + offset
        if position < len(self.tokens):
            return self.tokens[position]
        return None

    def advance(self) -> Token:
        token = self.peek()
        if token is None:
            raise ParseError(f"unexpected end of SQL input in {self.sql!r}")
        self.index += 1
        return token

    def expect_keyword(self, *keywords: str) -> Token:
        token = self.advance()
        if not token.matches_keyword(*keywords):
            raise ParseError(
                f"expected {' or '.join(k.upper() for k in keywords)} but found "
                f"{token.value!r} at position {token.position}",
                token.position,
            )
        return token

    def expect_punct(self, symbol: str) -> Token:
        token = self.advance()
        if not token.matches_punct(symbol):
            raise ParseError(
                f"expected {symbol!r} but found {token.value!r} at position "
                f"{token.position}",
                token.position,
            )
        return token

    def expect_ident(self) -> Token:
        token = self.advance()
        if token.kind not in ("ident", "keyword"):
            raise ParseError(
                f"expected an identifier but found {token.value!r} at position "
                f"{token.position}",
                token.position,
            )
        return token

    def at_keyword(self, *keywords: str) -> bool:
        token = self.peek()
        return token is not None and token.matches_keyword(*keywords)

    def at_punct(self, symbol: str) -> bool:
        token = self.peek()
        return token is not None and token.matches_punct(symbol)

    def at_end(self) -> bool:
        return self.index >= len(self.tokens) or self.at_punct(";")

    # ------------------------------------------------------------------ #
    def parse_column_ref(self) -> ColumnRef:
        first = self.expect_ident()
        if self.at_punct("."):
            self.advance()
            second = self.expect_ident()
            return ColumnRef(column=second.value, qualifier=first.value)
        return ColumnRef(column=first.value)

    def parse_value(self) -> ColumnRef | Literal:
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of SQL input")
        if token.kind == "number":
            self.advance()
            text = token.value
            return Literal(float(text) if "." in text else int(text))
        if token.kind == "string":
            self.advance()
            return Literal(token.value)
        return self.parse_column_ref()

    def parse_select_item(self) -> SelectItem:
        token = self.peek()
        expression: ColumnRef | Literal | AggregateExpression
        if token is not None and token.matches_keyword(*_AGGREGATE_KEYWORDS):
            function = self.advance().value
            self.expect_punct("(")
            if self.at_punct("*"):
                self.advance()
                argument = None
            else:
                argument = self.parse_column_ref()
            self.expect_punct(")")
            expression = AggregateExpression(function, argument)
        else:
            value = self.parse_value()
            expression = value
        alias = None
        if self.at_keyword("as"):
            self.advance()
            alias = self.expect_ident().value
        return SelectItem(expression, alias)

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = False
        if self.at_keyword("distinct"):
            self.advance()
            distinct = True
        items = [self.parse_select_item()]
        while self.at_punct(","):
            self.advance()
            items.append(self.parse_select_item())
        self.expect_keyword("from")
        tables = [self.parse_table_ref()]
        while self.at_punct(","):
            self.advance()
            tables.append(self.parse_table_ref())
        conditions: list[EqualityCondition] = []
        if self.at_keyword("where"):
            self.advance()
            conditions.append(self.parse_condition())
            while self.at_keyword("and"):
                self.advance()
                conditions.append(self.parse_condition())
        group_by: list[ColumnRef] = []
        if self.at_keyword("group"):
            self.advance()
            self.expect_keyword("by")
            group_by.append(self.parse_column_ref())
            while self.at_punct(","):
                self.advance()
                group_by.append(self.parse_column_ref())
        if not self.at_end():
            token = self.advance()
            raise ParseError(
                f"unexpected trailing SQL {token.value!r} at position {token.position}",
                token.position,
            )
        return SelectStatement(
            select_items=tuple(items),
            from_tables=tuple(tables),
            where_conditions=tuple(conditions),
            distinct=distinct,
            group_by=tuple(group_by),
        )

    def parse_table_ref(self) -> TableRef:
        table = self.expect_ident().value
        alias = None
        if self.at_keyword("as"):
            self.advance()
            alias = self.expect_ident().value
        else:
            following = self.peek()
            if following is not None and following.kind == "ident":
                alias = self.advance().value
        return TableRef(table, alias)

    def parse_condition(self) -> EqualityCondition:
        left = self.parse_value()
        self.expect_punct("=")
        right = self.parse_value()
        if isinstance(left, Literal):
            if isinstance(right, Literal):
                raise ParseError("conditions between two literals are not supported")
            left, right = right, left
        return EqualityCondition(left, right)

    # ------------------------------------------------------------------ #
    def parse_create_table(self) -> CreateTableStatement:
        self.expect_keyword("create")
        self.expect_keyword("table")
        table = self.expect_ident().value
        self.expect_punct("(")
        columns: list[ColumnDefinition] = []
        primary_key: tuple[str, ...] = ()
        uniques: list[tuple[str, ...]] = []
        foreign_keys: list[ForeignKeyConstraint] = []
        while True:
            if self.at_keyword("primary"):
                self.advance()
                self.expect_keyword("key")
                primary_key = self._parse_column_name_list()
            elif self.at_keyword("unique"):
                self.advance()
                uniques.append(self._parse_column_name_list())
            elif self.at_keyword("foreign"):
                self.advance()
                self.expect_keyword("key")
                local_columns = self._parse_column_name_list()
                self.expect_keyword("references")
                referenced_table = self.expect_ident().value
                referenced_columns = self._parse_column_name_list()
                foreign_keys.append(
                    ForeignKeyConstraint(local_columns, referenced_table, referenced_columns)
                )
            else:
                columns.append(self._parse_column_definition())
            if self.at_punct(","):
                self.advance()
                continue
            self.expect_punct(")")
            break
        return CreateTableStatement(
            table=table,
            columns=tuple(columns),
            primary_key=primary_key,
            unique_constraints=tuple(uniques),
            foreign_keys=tuple(foreign_keys),
        )

    def _parse_column_name_list(self) -> tuple[str, ...]:
        self.expect_punct("(")
        names = [self.expect_ident().value]
        while self.at_punct(","):
            self.advance()
            names.append(self.expect_ident().value)
        self.expect_punct(")")
        return tuple(names)

    def _parse_column_definition(self) -> ColumnDefinition:
        name = self.expect_ident().value
        type_name = "int"
        if self.at_keyword(*_TYPE_KEYWORDS):
            type_name = self.advance().value
            # Optional length, e.g. VARCHAR(20).
            if self.at_punct("("):
                self.advance()
                self.advance()
                self.expect_punct(")")
        primary = unique = not_null = False
        while True:
            if self.at_keyword("primary"):
                self.advance()
                self.expect_keyword("key")
                primary = True
            elif self.at_keyword("unique"):
                self.advance()
                unique = True
            elif self.at_keyword("not"):
                self.advance()
                self.expect_keyword("null")
                not_null = True
            else:
                break
        return ColumnDefinition(name, type_name, primary, unique, not_null)


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement."""
    return _SqlParser(sql).parse_select()


def parse_create_table(sql: str) -> CreateTableStatement:
    """Parse one CREATE TABLE statement."""
    return _SqlParser(sql).parse_create_table()


def parse_statements(sql: str) -> list[SelectStatement | CreateTableStatement]:
    """Parse a ``;``-separated script of SELECT and CREATE TABLE statements."""
    statements: list[SelectStatement | CreateTableStatement] = []
    for chunk in sql.split(";"):
        stripped = chunk.strip()
        if not stripped:
            continue
        lowered = stripped.lower()
        if lowered.startswith("create"):
            statements.append(parse_create_table(stripped))
        elif lowered.startswith("select"):
            statements.append(parse_select(stripped))
        else:
            raise ParseError(f"unsupported statement: {stripped[:40]!r}...")
    return statements
