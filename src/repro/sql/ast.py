"""Abstract syntax trees for the supported SQL fragment.

Two statement kinds are modelled:

* :class:`SelectStatement` — SPJ queries with equality predicates, optional
  ``DISTINCT``, optional ``GROUP BY`` and a single aggregate output;
* :class:`CreateTableStatement` — table definitions with column types and the
  constraints (``PRIMARY KEY``, ``UNIQUE``, ``FOREIGN KEY``) that become
  embedded dependencies.

The AST is deliberately small and value-like; translation to the query /
dependency model lives in :mod:`repro.sql.translate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ColumnRef:
    """A column reference ``table_or_alias.column`` (the qualifier is optional)."""

    column: str
    qualifier: str | None = None

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.column}" if self.qualifier else self.column


@dataclass(frozen=True)
class Literal:
    """A numeric or string literal."""

    value: object

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


@dataclass(frozen=True)
class AggregateExpression:
    """An aggregate select item, e.g. ``SUM(o.amount)`` or ``COUNT(*)``."""

    function: str  # "sum" | "count" | "max" | "min"
    argument: ColumnRef | None  # None means COUNT(*)

    def __str__(self) -> str:
        inner = "*" if self.argument is None else str(self.argument)
        return f"{self.function.upper()}({inner})"


@dataclass(frozen=True)
class SelectItem:
    """One item of the select list, with an optional output alias."""

    expression: ColumnRef | Literal | AggregateExpression
    alias: str | None = None

    def __str__(self) -> str:
        rendered = str(self.expression)
        return f"{rendered} AS {self.alias}" if self.alias else rendered


@dataclass(frozen=True)
class TableRef:
    """A FROM item ``table [AS] alias``."""

    table: str
    alias: str | None = None

    @property
    def effective_alias(self) -> str:
        return self.alias or self.table

    def __str__(self) -> str:
        return f"{self.table} {self.alias}" if self.alias else self.table


@dataclass(frozen=True)
class EqualityCondition:
    """An equality in the WHERE clause: column = column or column = literal."""

    left: ColumnRef
    right: ColumnRef | Literal

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class SelectStatement:
    """A parsed SELECT statement."""

    select_items: tuple[SelectItem, ...]
    from_tables: tuple[TableRef, ...]
    where_conditions: tuple[EqualityCondition, ...] = ()
    distinct: bool = False
    group_by: tuple[ColumnRef, ...] = ()

    def has_aggregate(self) -> bool:
        return any(
            isinstance(item.expression, AggregateExpression)
            for item in self.select_items
        )

    def __str__(self) -> str:
        parts = ["SELECT"]
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(str(item) for item in self.select_items))
        parts.append("FROM " + ", ".join(str(t) for t in self.from_tables))
        if self.where_conditions:
            parts.append(
                "WHERE " + " AND ".join(str(c) for c in self.where_conditions)
            )
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(str(c) for c in self.group_by))
        return " ".join(parts)


@dataclass(frozen=True)
class ColumnDefinition:
    """A column definition inside CREATE TABLE."""

    name: str
    type_name: str = "int"
    primary_key: bool = False
    unique: bool = False
    not_null: bool = False


@dataclass(frozen=True)
class ForeignKeyConstraint:
    """A ``FOREIGN KEY (cols) REFERENCES table (cols)`` table constraint."""

    columns: tuple[str, ...]
    referenced_table: str
    referenced_columns: tuple[str, ...]


@dataclass(frozen=True)
class CreateTableStatement:
    """A parsed CREATE TABLE statement."""

    table: str
    columns: tuple[ColumnDefinition, ...]
    primary_key: tuple[str, ...] = ()
    unique_constraints: tuple[tuple[str, ...], ...] = ()
    foreign_keys: tuple[ForeignKeyConstraint, ...] = field(default_factory=tuple)

    def column_names(self) -> tuple[str, ...]:
        return tuple(column.name for column in self.columns)

    def effective_primary_key(self) -> tuple[str, ...]:
        """Table-level PRIMARY KEY, falling back to a column-level one."""
        if self.primary_key:
            return self.primary_key
        for column in self.columns:
            if column.primary_key:
                return (column.name,)
        return ()

    def effective_unique_constraints(self) -> tuple[tuple[str, ...], ...]:
        """Table-level UNIQUE constraints plus column-level UNIQUE markers."""
        constraints = list(self.unique_constraints)
        for column in self.columns:
            if column.unique:
                constraints.append((column.name,))
        return tuple(constraints)
