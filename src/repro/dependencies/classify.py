"""Classification of dependencies: fd-shaped egds, positional keys, key-based tgds.

Definition 5.1 of the paper introduces *key-based* tgds (equivalent to
Deutsch's UWDs): a tgd ``φ(X̄,Ȳ) → ∃Z̄ ψ(Ȳ,Z̄)`` is key based when, for every
conclusion atom, the positions carrying universally quantified terms form a
superkey of the relation and the relation is set valued in every instance.
Every chase step with a key-based tgd is assignment fixing, but the converse
fails (Example 4.8 / 5.1): the paper's assignment-fixing notion is strictly
more general, which is why the sound chase in :mod:`repro.chase` uses the
latter.  This module provides the key-based test so the two notions can be
compared (tests and the E2 benchmark do exactly that).

Key information is extracted from the egds of the dependency set: an egd is
*fd shaped* when its premise consists of two atoms over the same predicate
that share variables on a set of "determinant" positions and its conclusion
equates the two variables at one other position.  Those positional fds feed
the standard attribute-closure computation.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.atoms import Atom
from ..core.terms import Constant, Variable
from .base import EGD, TGD, Dependency, DependencySet

PositionalFD = tuple[frozenset[int], int]


def egd_as_positional_fd(dependency: Dependency) -> tuple[str, PositionalFD] | None:
    """Recognise an fd-shaped egd and return ``(relation, (determinant, dependent))``.

    Returns None when the egd does not match the functional-dependency shape
    of Appendix B (two premise atoms over one predicate, one equality between
    same-position variables).
    """
    if not isinstance(dependency, EGD):
        return None
    if len(dependency.premise) != 2 or len(dependency.equalities) != 1:
        return None
    first, second = dependency.premise
    if first.predicate != second.predicate or first.arity != second.arity:
        return None
    equality = dependency.equalities[0]
    dependent_position: int | None = None
    determinant: set[int] = set()
    for position, (term1, term2) in enumerate(zip(first.terms, second.terms)):
        if term1 == term2:
            determinant.add(position)
            continue
        pair = {term1, term2}
        if pair == {equality.left, equality.right}:
            if dependent_position is not None:
                return None
            dependent_position = position
        # Positions where the two atoms differ and are not the equated pair
        # are "don't care" positions (the Z̄ / Z̄' of Appendix B).
    if dependent_position is None:
        return None
    return first.predicate, (frozenset(determinant), dependent_position)


def extract_positional_fds(
    dependencies: Iterable[Dependency],
) -> dict[str, list[PositionalFD]]:
    """All fd-shaped egds of *dependencies*, grouped by relation."""
    result: dict[str, list[PositionalFD]] = {}
    for dependency in dependencies:
        recognised = egd_as_positional_fd(dependency)
        if recognised is None:
            continue
        relation, fd = recognised
        result.setdefault(relation, []).append(fd)
    return result


def positions_closure(
    start: Iterable[int], fds: Sequence[PositionalFD]
) -> frozenset[int]:
    """Closure of a set of positions under positional fds."""
    closure = set(start)
    changed = True
    while changed:
        changed = False
        for determinant, dependent in fds:
            if determinant <= closure and dependent not in closure:
                closure.add(dependent)
                changed = True
    return frozenset(closure)


def is_superkey_positions(
    relation: str,
    arity: int,
    positions: Iterable[int],
    dependencies: Iterable[Dependency],
) -> bool:
    """Do *positions* form a superkey of *relation* given the set's fd-shaped egds?"""
    fds = extract_positional_fds(dependencies).get(relation, [])
    closure = positions_closure(positions, fds)
    return set(range(arity)) <= closure


def universal_positions(atom: Atom, universal_variables: Iterable[Variable]) -> set[int]:
    """Positions of *atom* holding universally quantified variables or constants."""
    universal = set(universal_variables)
    positions = set()
    for index, term in enumerate(atom.terms):
        if isinstance(term, Constant) or term in universal:
            positions.add(index)
    return positions


def is_key_based_tgd(tgd: TGD, dependencies: DependencySet) -> bool:
    """Definition 5.1: is *tgd* key based with respect to *dependencies*?

    For every conclusion atom, (i) the positions carrying universal terms
    must be a superkey of the relation under the fd-shaped egds of the set,
    and (ii) the relation must be set valued in every instance (per the
    dependency set's set-valuedness markers).
    """
    universal = set(tgd.universal_variables())
    for atom in tgd.conclusion:
        if not dependencies.is_set_valued(atom.predicate):
            return False
        positions = universal_positions(atom, universal)
        if not is_superkey_positions(
            atom.predicate, atom.arity, positions, dependencies
        ):
            return False
    return True


def classify_dependency(dependency: Dependency) -> str:
    """A human-readable classification used by diagnostics and examples."""
    if isinstance(dependency, EGD):
        if egd_as_positional_fd(dependency) is not None:
            return "egd (functional dependency)"
        return "egd"
    if dependency.is_full():
        return "full tgd"
    if dependency.is_inclusion_dependency():
        return "inclusion dependency"
    return "tgd"
