"""Convenience constructors for common integrity constraints as dependencies.

Embedded dependencies are expressive enough to state all the usual integrity
constraints (Section 2.4): keys, functional dependencies, foreign keys,
inclusion dependencies.  This module builds the corresponding tgds/egds over
positional relation schemas so that callers (and the SQL DDL translator) do
not have to spell the atoms out by hand.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.atoms import Atom, EqualityAtom
from ..core.terms import Variable
from ..exceptions import DependencyError
from ..schema.keys import FunctionalDependency
from ..schema.schema import RelationSchema
from .base import EGD, TGD


def _positional_variables(prefix: str, arity: int) -> list[Variable]:
    return [Variable(f"{prefix}{i + 1}") for i in range(arity)]


def functional_dependency_egd(
    relation: str,
    arity: int,
    determinant_positions: Sequence[int],
    dependent_position: int,
    name: str = "",
) -> EGD:
    """The egd stating that *determinant_positions* determine *dependent_position*.

    Positions are 0-based.  Example: ``functional_dependency_egd("s", 2, [0], 1)``
    produces ``s(X1, Y1) ∧ s(X1, Y2) → Y1 = Y2``.
    """
    if dependent_position in determinant_positions:
        raise DependencyError("dependent position must not be a determinant position")
    if not all(0 <= p < arity for p in [*determinant_positions, dependent_position]):
        raise DependencyError(
            f"positions out of range for arity-{arity} relation {relation}"
        )
    left_terms: list[Variable] = []
    right_terms: list[Variable] = []
    for position in range(arity):
        if position in determinant_positions:
            shared = Variable(f"X{position + 1}")
            left_terms.append(shared)
            right_terms.append(shared)
        else:
            left_terms.append(Variable(f"Y{position + 1}a"))
            right_terms.append(Variable(f"Y{position + 1}b"))
    equality = EqualityAtom(
        left_terms[dependent_position], right_terms[dependent_position]
    )
    return EGD(
        [Atom(relation, left_terms), Atom(relation, right_terms)],
        [equality],
        name=name,
    )


def key_egds(
    relation: str,
    arity: int,
    key_positions: Sequence[int],
    name_prefix: str = "",
) -> list[EGD]:
    """Egds stating that *key_positions* form a superkey of *relation*.

    One egd per non-key position (Appendix B's σ(K|A) family).
    """
    egds = []
    for position in range(arity):
        if position in key_positions:
            continue
        name = f"{name_prefix}_{relation}_pos{position}" if name_prefix else ""
        egds.append(
            functional_dependency_egd(relation, arity, key_positions, position, name)
        )
    return egds


def fd_to_egd(
    relation: RelationSchema, fd: FunctionalDependency, name: str = ""
) -> list[EGD]:
    """Translate an attribute-level functional dependency into egds.

    One egd is produced per dependent attribute (an fd with a multi-attribute
    right-hand side is split).
    """
    if fd.relation != relation.name:
        raise DependencyError(
            f"fd is over {fd.relation}, relation schema is {relation.name}"
        )
    determinant = [relation.attribute_position(a) for a in fd.lhs]
    egds = []
    for attribute in sorted(fd.rhs - fd.lhs):
        dependent = relation.attribute_position(attribute)
        egds.append(
            functional_dependency_egd(
                relation.name, relation.arity, determinant, dependent, name
            )
        )
    return egds


def inclusion_dependency(
    source_relation: str,
    source_arity: int,
    source_positions: Sequence[int],
    target_relation: str,
    target_arity: int,
    target_positions: Sequence[int],
    name: str = "",
) -> TGD:
    """The tgd ``source[positions] ⊆ target[positions]``.

    Example: ``inclusion_dependency("orders", 3, [1], "customer", 2, [0])``
    produces ``orders(X1, X2, X3) → ∃Y2 customer(X2, Y2)``.
    """
    if len(source_positions) != len(target_positions):
        raise DependencyError("source and target position lists must have equal length")
    source_terms = _positional_variables("X", source_arity)
    target_terms: list[Variable] = []
    mapping = dict(zip(target_positions, source_positions))
    for position in range(target_arity):
        if position in mapping:
            target_terms.append(source_terms[mapping[position]])
        else:
            target_terms.append(Variable(f"Y{position + 1}"))
    return TGD(
        [Atom(source_relation, source_terms)],
        [Atom(target_relation, target_terms)],
        name=name,
    )


def foreign_key(
    source_relation: str,
    source_arity: int,
    source_positions: Sequence[int],
    target_relation: str,
    target_arity: int,
    target_positions: Sequence[int],
    name: str = "",
) -> list[TGD | EGD]:
    """A foreign key: inclusion dependency plus key egds on the target.

    The referenced positions are required to be a key of the target relation,
    which is how SQL's ``FOREIGN KEY ... REFERENCES`` semantics translate to
    embedded dependencies.
    """
    dependencies: list[TGD | EGD] = [
        inclusion_dependency(
            source_relation,
            source_arity,
            source_positions,
            target_relation,
            target_arity,
            target_positions,
            name=name,
        )
    ]
    dependencies.extend(
        key_egds(target_relation, target_arity, list(target_positions), name_prefix=name)
    )
    return dependencies


def set_valued_marker_predicates(relations: Iterable[str]) -> frozenset[str]:
    """Normalise an iterable of relation names into the set-valued marker set."""
    return frozenset(relations)
