"""Embedded dependencies: tuple-generating and equality-generating dependencies.

Section 2.4 of the paper: an embedded dependency has the form

    σ : φ(Ū, W̄) → ∃V̄ ψ(Ū, V̄)

where φ and ψ are conjunctions of atoms possibly including equations.  Every
set of embedded dependencies is equivalent to a set of *tgds* (conclusion is
relational atoms only) and *egds* (conclusion is equations only); this module
provides the three classes plus the normalisation, and a
:class:`DependencySet` container that also records which relations are
required to be set valued (the constraint the paper encodes via tuple-ID
egds, Appendix C, and which drives Theorem 4.1's soundness conditions).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Iterator, Mapping, Sequence, Union

from ..core.atoms import Atom, EqualityAtom, atoms_variables
from ..core.terms import FreshVariableFactory, Term, Variable
from ..exceptions import DependencyError


@dataclass(frozen=True)
class TGD:
    """A tuple-generating dependency ``premise → ∃Z̄ conclusion``.

    The existential variables are implicit: every conclusion variable that
    does not occur in the premise is existentially quantified.
    """

    premise: tuple[Atom, ...]
    conclusion: tuple[Atom, ...]
    name: str = ""

    def __init__(
        self,
        premise: Sequence[Atom],
        conclusion: Sequence[Atom],
        name: str = "",
    ):
        object.__setattr__(self, "premise", tuple(premise))
        object.__setattr__(self, "conclusion", tuple(conclusion))
        object.__setattr__(self, "name", name)
        if not self.premise:
            raise DependencyError("tgd needs a nonempty premise")
        if not self.conclusion:
            raise DependencyError("tgd needs a nonempty conclusion")

    # ------------------------------------------------------------------ #
    def universal_variables(self) -> list[Variable]:
        """Variables of the premise (all universally quantified)."""
        return atoms_variables(self.premise)

    def existential_variables(self) -> list[Variable]:
        """Conclusion variables that do not occur in the premise."""
        universal = set(self.universal_variables())
        return [v for v in atoms_variables(self.conclusion) if v not in universal]

    def frontier_variables(self) -> list[Variable]:
        """Premise variables that also occur in the conclusion."""
        conclusion_vars = set(atoms_variables(self.conclusion))
        return [v for v in self.universal_variables() if v in conclusion_vars]

    def is_full(self) -> bool:
        """True when the tgd has no existential variables."""
        return not self.existential_variables()

    def is_inclusion_dependency(self) -> bool:
        """A tgd with a single relational atom on each side (footnote 9)."""
        return len(self.premise) == 1 and len(self.conclusion) == 1

    def predicates(self) -> set[str]:
        """All predicate names mentioned by the dependency."""
        return {a.predicate for a in self.premise} | {
            a.predicate for a in self.conclusion
        }

    def all_variables(self) -> list[Variable]:
        """Distinct variables of premise and conclusion."""
        seen: dict[Variable, None] = {}
        for var in atoms_variables(self.premise):
            seen.setdefault(var, None)
        for var in atoms_variables(self.conclusion):
            seen.setdefault(var, None)
        return list(seen)

    def rename_variables(self, mapping: Mapping[Variable, Variable]) -> "TGD":
        """Apply a variable renaming to both sides."""
        substitution: dict[Term, Term] = dict(mapping)
        return TGD(
            [a.substitute(substitution) for a in self.premise],
            [a.substitute(substitution) for a in self.conclusion],
            name=self.name,
        )

    def freshen(self, avoid: Iterable[Variable]) -> "TGD":
        """Rename every variable so none collides with *avoid*.

        The chase assumes w.l.o.g. that the query being chased shares no
        variables with the dependency; this produces such a copy.
        """
        avoid_names = {v.name for v in avoid}
        own = self.all_variables()
        if not any(v.name in avoid_names for v in own):
            return self
        factory = FreshVariableFactory(avoid_names | {v.name for v in own})
        renaming = {v: factory(hint=v.name) for v in own}
        return self.rename_variables(renaming)

    def __str__(self) -> str:
        premise = " ∧ ".join(str(a) for a in self.premise)
        conclusion = " ∧ ".join(str(a) for a in self.conclusion)
        existentials = self.existential_variables()
        prefix = ""
        if existentials:
            prefix = "∃" + ",".join(v.name for v in existentials) + " "
        label = f"{self.name}: " if self.name else ""
        return f"{label}{premise} → {prefix}{conclusion}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TGD({self!s})"


@dataclass(frozen=True)
class EGD:
    """An equality-generating dependency ``premise → U1 = U2 ∧ ...``."""

    premise: tuple[Atom, ...]
    equalities: tuple[EqualityAtom, ...]
    name: str = ""

    def __init__(
        self,
        premise: Sequence[Atom],
        equalities: Sequence[EqualityAtom] | EqualityAtom,
        name: str = "",
    ):
        if isinstance(equalities, EqualityAtom):
            equalities = [equalities]
        object.__setattr__(self, "premise", tuple(premise))
        object.__setattr__(self, "equalities", tuple(equalities))
        object.__setattr__(self, "name", name)
        if not self.premise:
            raise DependencyError("egd needs a nonempty premise")
        if not self.equalities:
            raise DependencyError("egd needs at least one equality")
        premise_vars = set(atoms_variables(self.premise))
        for eq in self.equalities:
            for var in eq.variables():
                if var not in premise_vars:
                    raise DependencyError(
                        f"egd equality variable {var} does not occur in the premise"
                    )

    def universal_variables(self) -> list[Variable]:
        """Variables of the premise."""
        return atoms_variables(self.premise)

    def predicates(self) -> set[str]:
        """Predicate names used by the premise."""
        return {a.predicate for a in self.premise}

    def all_variables(self) -> list[Variable]:
        """Distinct variables of the dependency."""
        return self.universal_variables()

    def rename_variables(self, mapping: Mapping[Variable, Variable]) -> "EGD":
        """Apply a variable renaming."""
        substitution: dict[Term, Term] = dict(mapping)
        return EGD(
            [a.substitute(substitution) for a in self.premise],
            [eq.substitute(substitution) for eq in self.equalities],
            name=self.name,
        )

    def freshen(self, avoid: Iterable[Variable]) -> "EGD":
        """Rename variables away from *avoid* (see :meth:`TGD.freshen`)."""
        avoid_names = {v.name for v in avoid}
        own = self.all_variables()
        if not any(v.name in avoid_names for v in own):
            return self
        factory = FreshVariableFactory(avoid_names | {v.name for v in own})
        renaming = {v: factory(hint=v.name) for v in own}
        return self.rename_variables(renaming)

    def __str__(self) -> str:
        premise = " ∧ ".join(str(a) for a in self.premise)
        conclusion = " ∧ ".join(str(eq) for eq in self.equalities)
        label = f"{self.name}: " if self.name else ""
        return f"{label}{premise} → {conclusion}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"EGD({self!s})"


Dependency = Union[TGD, EGD]


def normalise_embedded_dependency(
    premise: Sequence[Atom],
    conclusion: Sequence[Atom | EqualityAtom],
    name: str = "",
) -> list[Dependency]:
    """Split a general embedded dependency into tgds and egds.

    A conclusion mixing relational atoms and equations is split into (at
    most) one tgd carrying the relational atoms and one egd carrying the
    equations — the standard equivalence cited in Section 2.4.
    """
    relational = [a for a in conclusion if isinstance(a, Atom)]
    equalities = [a for a in conclusion if isinstance(a, EqualityAtom)]
    result: list[Dependency] = []
    if relational:
        result.append(TGD(premise, relational, name=name or ""))
    if equalities:
        egd_name = name if not relational else (f"{name}_eq" if name else "")
        result.append(EGD(premise, equalities, name=egd_name))
    if not result:
        raise DependencyError("embedded dependency has an empty conclusion")
    return result


@dataclass
class DependencySet:
    """A finite set Σ of embedded dependencies plus set-valuedness information.

    ``set_valued_predicates`` lists the relation names required to be set
    valued in every instance of the schema.  Under bag semantics those
    constraints behave like the tuple-ID egds of Appendix C; recording them
    as names keeps the queries over the original (un-augmented) schema while
    the full tuple-ID encoding is available from
    :mod:`repro.dependencies.tuple_ids`.
    """

    dependencies: list[Dependency] = field(default_factory=list)
    set_valued_predicates: frozenset[str] = frozenset()

    def __init__(
        self,
        dependencies: Iterable[Dependency] = (),
        set_valued_predicates: Iterable[str] = (),
    ):
        self.dependencies = list(dependencies)
        self.set_valued_predicates = frozenset(set_valued_predicates)
        # Memoized fingerprint, stored with the exact inputs it was computed
        # over — the tuple of dependencies and the set-valued markers — so
        # any mutation of the public attributes (list append/remove/replace,
        # with or without add(), or reassigning set_valued_predicates) is
        # detected and triggers a recompute.
        self._fingerprint: (
            tuple[tuple[tuple[Dependency, ...], frozenset[str]], Hashable] | None
        ) = None

    @classmethod
    def coerce(
        cls, dependencies: "DependencySet | Iterable[Dependency]"
    ) -> "DependencySet":
        """*dependencies* as a :class:`DependencySet` (pass-through when it is one).

        The single coercion point for every module that accepts either a
        dependency set or a plain sequence of dependencies.
        """
        if isinstance(dependencies, DependencySet):
            return dependencies
        return cls(dependencies)

    @property
    def fingerprint(self) -> Hashable:
        """A hashable, name-insensitive fingerprint of the set, computed once.

        Dependency order is preserved (the deterministic chase strategy tries
        dependencies in order, so reordering Σ may legitimately produce a
        different — equivalent — terminal result); display names are dropped
        (they never influence chasing).  The value is memoized on the
        instance, guarded by the exact inputs it was computed over (the
        dependency sequence and the set-valued markers): any mutation of the
        public attributes — through :meth:`add` or directly — is observed on
        the next access and recomputes.  A warm access therefore costs one
        tuple build and an elementwise identity comparison, not the full
        fingerprint walk.
        """
        guard = (tuple(self.dependencies), self.set_valued_predicates)
        cached = self._fingerprint
        if cached is not None and cached[0] == guard:
            return cached[1]
        parts: list[Hashable] = []
        for dependency in guard[0]:
            if isinstance(dependency, TGD):
                parts.append(("tgd", dependency.premise, dependency.conclusion))
            elif isinstance(dependency, EGD):
                parts.append(("egd", dependency.premise, dependency.equalities))
            else:  # pragma: no cover - future dependency kinds
                parts.append(("dep", repr(dependency)))
        value: Hashable = (tuple(parts), guard[1])
        self._fingerprint = (guard, value)
        return value

    def __iter__(self) -> Iterator[Dependency]:
        return iter(self.dependencies)

    def __len__(self) -> int:
        return len(self.dependencies)

    def __contains__(self, dependency: Dependency) -> bool:
        return dependency in self.dependencies

    def tgds(self) -> list[TGD]:
        """The tuple-generating dependencies of the set."""
        return [d for d in self.dependencies if isinstance(d, TGD)]

    def egds(self) -> list[EGD]:
        """The equality-generating dependencies of the set."""
        return [d for d in self.dependencies if isinstance(d, EGD)]

    def predicates(self) -> set[str]:
        """Every predicate mentioned by some dependency."""
        result: set[str] = set()
        for dependency in self.dependencies:
            result |= dependency.predicates()
        return result

    def is_set_valued(self, predicate: str) -> bool:
        """Is *predicate* required to be set valued in every instance?"""
        return predicate in self.set_valued_predicates

    def add(self, dependency: Dependency) -> None:
        """Append a dependency (invalidates the memoized fingerprint)."""
        self.dependencies.append(dependency)
        self._fingerprint = None

    def without(self, dependency: Dependency) -> "DependencySet":
        """A copy of the set with one dependency removed."""
        remaining = [d for d in self.dependencies if d is not dependency and d != dependency]
        return DependencySet(remaining, self.set_valued_predicates)

    def with_set_valued(self, predicates: Iterable[str]) -> "DependencySet":
        """A copy with additional set-valued predicates recorded."""
        return DependencySet(
            self.dependencies,
            self.set_valued_predicates | frozenset(predicates),
        )

    def restricted_to(self, dependencies: Iterable[Dependency]) -> "DependencySet":
        """A copy containing only *dependencies* (set-valuedness preserved)."""
        return DependencySet(dependencies, self.set_valued_predicates)

    def __str__(self) -> str:
        lines = [str(d) for d in self.dependencies]
        if self.set_valued_predicates:
            lines.append(
                "set-valued: {" + ", ".join(sorted(self.set_valued_predicates)) + "}"
            )
        return "\n".join(lines)
