"""Embedded dependencies: tgds, egds, builders, regularization, weak acyclicity."""

from .base import EGD, TGD, Dependency, DependencySet, normalise_embedded_dependency
from .builders import (
    fd_to_egd,
    foreign_key,
    functional_dependency_egd,
    inclusion_dependency,
    key_egds,
)
from .classify import (
    classify_dependency,
    egd_as_positional_fd,
    extract_positional_fds,
    is_key_based_tgd,
    is_superkey_positions,
)
from .regularize import (
    is_regularized,
    is_regularized_set,
    regularize,
    regularize_dependencies,
    regularize_tgd,
)
from .tuple_ids import (
    augment_schema_with_tuple_ids,
    dependency_set_with_tuple_ids,
    detect_set_enforcing_predicates,
    is_set_enforcing_egd,
    set_enforcing_egd,
    set_enforcing_egds_for,
    tid_projection_query,
)
from .weak_acyclicity import dependency_graph, is_weakly_acyclic, special_edges_on_cycles

__all__ = [
    "EGD",
    "TGD",
    "Dependency",
    "DependencySet",
    "augment_schema_with_tuple_ids",
    "classify_dependency",
    "dependency_graph",
    "dependency_set_with_tuple_ids",
    "detect_set_enforcing_predicates",
    "egd_as_positional_fd",
    "extract_positional_fds",
    "fd_to_egd",
    "foreign_key",
    "functional_dependency_egd",
    "inclusion_dependency",
    "is_key_based_tgd",
    "is_regularized",
    "is_regularized_set",
    "is_set_enforcing_egd",
    "is_superkey_positions",
    "is_weakly_acyclic",
    "key_egds",
    "normalise_embedded_dependency",
    "regularize",
    "regularize_dependencies",
    "regularize_tgd",
    "set_enforcing_egd",
    "set_enforcing_egds_for",
    "special_edges_on_cycles",
    "tid_projection_query",
]
