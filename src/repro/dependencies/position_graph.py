"""Int-keyed dependency (position) graph shared by the weak-acyclicity gate
and the static analyzer.

This replaces the earlier :mod:`networkx` ``MultiDiGraph`` with a
self-contained structure tuned for the two questions the repository asks of
it:

* *Is Σ weakly acyclic?* — a special edge lies on a cycle iff both endpoints
  fall in the same strongly connected component (Tarjan, iterative).
* *Why / why not?* — every edge carries provenance (the tgd and the
  universal variable that induced it), so a cyclic Σ yields a concrete
  witness cycle renderable in rule notation, and an acyclic Σ yields a rank
  function over positions (the number of special edges on the longest path
  into a position) that certifies termination and bounds chase depth.

Construction mirrors Definition H.1 exactly as the networkx version did —
including which positions become nodes and how parallel edges multiply — so
``number_of_nodes()`` / ``number_of_edges()`` and the multiset of special
edges on cycles are unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..core.terms import Variable
from .base import TGD, Dependency

Position = tuple[str, int]


@dataclass(frozen=True)
class PositionEdge:
    """One edge of the dependency graph, with provenance.

    ``source``/``target`` are node ids (indices into
    :attr:`PositionGraph.positions`); ``dependency`` is the inducing tgd and
    ``variable`` the universal variable whose premise occurrence is the edge
    source.  Parallel edges are kept (the graph is a multigraph, exactly as
    Definition H.1 produces it).
    """

    source: int
    target: int
    special: bool
    dependency: TGD
    variable: Variable


class PositionGraph:
    """The dependency graph of Definition H.1 over int node ids."""

    def __init__(self) -> None:
        self.positions: list[Position] = []
        self._ids: dict[Position, int] = {}
        self.edges: list[PositionEdge] = []
        self._successors: list[list[int]] = []  # node id -> edge indices out of it
        self._components: list[int] | None = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_node(self, position: Position) -> int:
        """Intern *position*, returning its node id."""
        node = self._ids.get(position)
        if node is None:
            node = len(self.positions)
            self._ids[position] = node
            self.positions.append(position)
            self._successors.append([])
            self._components = None
        return node

    def add_edge(
        self,
        source: Position,
        target: Position,
        *,
        special: bool,
        dependency: TGD,
        variable: Variable,
    ) -> PositionEdge:
        """Append an edge (parallel edges allowed; insertion order kept)."""
        src = self.add_node(source)
        dst = self.add_node(target)
        edge = PositionEdge(src, dst, special, dependency, variable)
        self._successors[src].append(len(self.edges))
        self.edges.append(edge)
        self._components = None
        return edge

    @classmethod
    def from_dependencies(cls, dependencies: Iterable[Dependency]) -> "PositionGraph":
        """Build the graph of Definition H.1 (egds contribute nothing)."""
        graph = cls()
        for dependency in dependencies:
            if not isinstance(dependency, TGD):
                continue
            premise_positions: dict[Variable, list[Position]] = {}
            for atom in dependency.premise:
                for index, term in enumerate(atom.terms):
                    if isinstance(term, Variable):
                        premise_positions.setdefault(term, []).append(
                            (atom.predicate, index)
                        )
            existential = dependency.existential_variables()
            conclusion_positions: dict[Variable, list[Position]] = {}
            for atom in dependency.conclusion:
                for index, term in enumerate(atom.terms):
                    if isinstance(term, Variable):
                        conclusion_positions.setdefault(term, []).append(
                            (atom.predicate, index)
                        )
            for variable, sources in premise_positions.items():
                targets = conclusion_positions.get(variable, [])
                if not targets and not existential:
                    continue
                for source in sources:
                    graph.add_node(source)
                    # Ordinary edges: premise position of X -> conclusion
                    # position of X.
                    for target in targets:
                        graph.add_edge(
                            source,
                            target,
                            special=False,
                            dependency=dependency,
                            variable=variable,
                        )
                    # Special edges: premise position of X -> every position
                    # of an existential variable in the conclusion, but only
                    # for variables X that occur in the conclusion
                    # (Definition H.1's "for every X in X̄ that occurs in ψ").
                    if variable in conclusion_positions:
                        for exist_var in existential:
                            for target in conclusion_positions.get(exist_var, []):
                                graph.add_edge(
                                    source,
                                    target,
                                    special=True,
                                    dependency=dependency,
                                    variable=variable,
                                )
        return graph

    # ------------------------------------------------------------------ #
    # shape (API kept compatible with the former networkx MultiDiGraph)
    # ------------------------------------------------------------------ #
    def number_of_nodes(self) -> int:
        return len(self.positions)

    def number_of_edges(self) -> int:
        return len(self.edges)

    def node_id(self, position: Position) -> int | None:
        """The node id of *position*, or None when it is not in the graph."""
        return self._ids.get(position)

    def __contains__(self, position: Position) -> bool:
        return position in self._ids

    def __iter__(self) -> Iterator[Position]:
        return iter(self.positions)

    # ------------------------------------------------------------------ #
    # strongly connected components (iterative Tarjan)
    # ------------------------------------------------------------------ #
    def component_of(self) -> list[int]:
        """Node id -> SCC id.

        Tarjan emits components in reverse topological order of the
        condensation, so ``component_of[u] >= component_of[v]`` whenever
        there is an edge ``u -> v`` across components.
        """
        if self._components is not None:
            return self._components
        n = len(self.positions)
        index_of = [-1] * n
        lowlink = [0] * n
        on_stack = [False] * n
        component = [-1] * n
        stack: list[int] = []
        next_index = 0
        component_count = 0
        for root in range(n):
            if index_of[root] != -1:
                continue
            # Each work item is (node, iterator position into its out-edges).
            work: list[tuple[int, int]] = [(root, 0)]
            while work:
                node, edge_pos = work.pop()
                if edge_pos == 0:
                    index_of[node] = lowlink[node] = next_index
                    next_index += 1
                    stack.append(node)
                    on_stack[node] = True
                recurse = False
                out = self._successors[node]
                while edge_pos < len(out):
                    successor = self.edges[out[edge_pos]].target
                    edge_pos += 1
                    if index_of[successor] == -1:
                        work.append((node, edge_pos))
                        work.append((successor, 0))
                        recurse = True
                        break
                    if on_stack[successor]:
                        lowlink[node] = min(lowlink[node], index_of[successor])
                if recurse:
                    continue
                if lowlink[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack[member] = False
                        component[member] = component_count
                        if member == node:
                            break
                    component_count += 1
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        self._components = component
        return component

    def number_of_components(self) -> int:
        components = self.component_of()
        return max(components, default=-1) + 1

    # ------------------------------------------------------------------ #
    # weak acyclicity, witnesses, ranks
    # ------------------------------------------------------------------ #
    def special_edges_in_cycles(self) -> list[PositionEdge]:
        """Special edges with both endpoints in one SCC (insertion order)."""
        component = self.component_of()
        return [
            edge
            for edge in self.edges
            if edge.special and component[edge.source] == component[edge.target]
        ]

    def is_weakly_acyclic(self) -> bool:
        return not self.special_edges_in_cycles()

    def witness_cycle(self) -> list[PositionEdge] | None:
        """A concrete cycle through a special edge, or None when acyclic.

        Takes the first special edge ``u -> v`` lying in an SCC and closes it
        with a shortest edge path ``v -> ... -> u`` inside that SCC (BFS).
        The returned edges form a closed walk: each edge's target is the next
        edge's source, and the last edge's target is the first edge's source.
        """
        offenders = self.special_edges_in_cycles()
        if not offenders:
            return None
        first = offenders[0]
        if first.target == first.source:
            return [first]
        component = self.component_of()
        scc = component[first.source]
        # BFS over edges from the special edge's head back to its tail,
        # restricted to the SCC (guaranteed to succeed: same component).
        parent_edge: dict[int, PositionEdge] = {}
        frontier = [first.target]
        seen = {first.target}
        while frontier:
            next_frontier: list[int] = []
            for node in frontier:
                for edge_index in self._successors[node]:
                    edge = self.edges[edge_index]
                    successor = edge.target
                    if successor in seen or component[successor] != scc:
                        continue
                    parent_edge[successor] = edge
                    if successor == first.source:
                        path: list[PositionEdge] = []
                        cursor = successor
                        while cursor != first.target:
                            step = parent_edge[cursor]
                            path.append(step)
                            cursor = step.source
                        path.reverse()
                        return [first, *path]
                    seen.add(successor)
                    next_frontier.append(successor)
            frontier = next_frontier
        raise AssertionError("special edge in an SCC must close into a cycle")

    def ranks(self) -> list[int] | None:
        """Node id -> rank, or None when Σ is not weakly acyclic.

        The rank of a position is the maximum number of special edges on any
        path ending at it — well defined exactly when no cycle passes through
        a special edge.  Computed by dynamic programming over the
        condensation in topological order; intra-component (necessarily
        ordinary) edges cannot raise ranks, so component granularity is
        exact.
        """
        component = self.component_of()
        if any(
            edge.special and component[edge.source] == component[edge.target]
            for edge in self.edges
        ):
            return None
        component_count = max(component, default=-1) + 1
        component_rank = [0] * component_count
        # Tarjan numbers components in reverse topological order, so walking
        # component ids downward visits sources before their targets.
        edges_by_source_component: list[list[PositionEdge]] = [
            [] for _ in range(component_count)
        ]
        for edge in self.edges:
            edges_by_source_component[component[edge.source]].append(edge)
        for comp in range(component_count - 1, -1, -1):
            for edge in edges_by_source_component[comp]:
                weight = 1 if edge.special else 0
                target_comp = component[edge.target]
                if target_comp != comp:
                    candidate = component_rank[comp] + weight
                    if candidate > component_rank[target_comp]:
                        component_rank[target_comp] = candidate
        return [component_rank[component[node]] for node in range(len(self.positions))]


def render_position(position: Position) -> str:
    """``predicate[index]`` — the conventional notation for a position."""
    return f"{position[0]}[{position[1]}]"


def build_position_graph(
    dependencies: "Sequence[Dependency] | Iterable[Dependency]",
) -> PositionGraph:
    """Convenience wrapper matching the old ``dependency_graph`` call shape."""
    return PositionGraph.from_dependencies(dependencies)
