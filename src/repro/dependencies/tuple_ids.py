"""The tuple-ID framework for set-enforcing constraints (Appendix C).

Under bag semantics a stored relation may contain duplicate tuples.  The
paper shows that the constraint "relation ``R`` is set valued in every
instance" can be expressed as an ordinary egd *provided* each tuple carries a
unique tuple ID in an extra, user-invisible attribute: the egd says that two
tuples agreeing on every ordinary attribute must also agree on the tuple ID,
hence (IDs being unique) must be the same tuple.

This module provides:

* :func:`augment_relation_with_tuple_id` / :func:`augment_schema_with_tuple_ids`
  — build the augmented schema D′ of Appendix C;
* :func:`set_enforcing_egd` — the egd σ_tid^R over the augmented relation;
* :func:`tid_projection_query` / :func:`tid_attribute_query` — the queries
  Q^R_vals and Q^R_tid of Definition C.1;
* :func:`set_enforcing_egds_for` — one egd per relation required to be set
  valued;
* :func:`detect_set_enforcing_predicates` — recognise set-enforcing egds in
  a dependency set (so that chase code can treat them as set-valuedness
  markers rather than as ordinary egds).
"""

from __future__ import annotations

from typing import Iterable

from ..core.atoms import Atom, EqualityAtom
from ..core.query import ConjunctiveQuery
from ..core.terms import Variable
from ..schema.schema import DatabaseSchema, RelationSchema
from .base import EGD, Dependency, DependencySet

TUPLE_ID_ATTRIBUTE = "tid"


def augment_relation_with_tuple_id(relation: RelationSchema) -> RelationSchema:
    """Return *relation* with a trailing tuple-ID attribute appended."""
    attributes = relation.attribute_names + (TUPLE_ID_ATTRIBUTE,)
    return RelationSchema(
        relation.name, relation.arity + 1, attributes, relation.set_valued
    )


def augment_schema_with_tuple_ids(
    schema: DatabaseSchema, relations: Iterable[str] | None = None
) -> DatabaseSchema:
    """Return the schema D′ of Appendix C.

    Every relation in *relations* (default: all) gets an extra trailing
    tuple-ID attribute.
    """
    target = set(relations) if relations is not None else set(schema.relation_names())
    augmented = DatabaseSchema()
    for relation in schema:
        if relation.name in target:
            augmented.add_relation(augment_relation_with_tuple_id(relation))
        else:
            augmented.add_relation(relation)
    return augmented


def set_enforcing_egd(relation: str, arity: int, name: str = "") -> EGD:
    """The egd σ_tid^R over the tuple-ID-augmented relation (arity + 1).

    ``R(X1..Xk, T1) ∧ R(X1..Xk, T2) → T1 = T2``: two tuples that agree on all
    ordinary attributes must share the tuple ID, forcing the projection of R
    onto its ordinary attributes to be a set.
    """
    shared = [Variable(f"X{i + 1}") for i in range(arity)]
    t1, t2 = Variable("Tid1"), Variable("Tid2")
    return EGD(
        [Atom(relation, [*shared, t1]), Atom(relation, [*shared, t2])],
        [EqualityAtom(t1, t2)],
        name=name or f"set_enforcing_{relation}",
    )


def set_enforcing_egds_for(
    schema: DatabaseSchema, relations: Iterable[str] | None = None
) -> list[EGD]:
    """Set-enforcing egds for every relation in *relations* (default: the
    schema's set-valued relations), phrased over the tuple-ID-augmented schema."""
    if relations is None:
        relations = sorted(schema.set_valued_relations())
    return [set_enforcing_egd(name, schema.arity(name)) for name in relations]


def tid_attribute_query(relation: str, arity: int) -> ConjunctiveQuery:
    """Q^R_tid of Definition C.1: project the augmented relation onto the tuple ID."""
    terms = [Variable(f"X{i + 1}") for i in range(arity + 1)]
    return ConjunctiveQuery("Q_tid", [terms[-1]], [Atom(relation, terms)])


def tid_projection_query(relation: str, arity: int) -> ConjunctiveQuery:
    """Q^R_vals of Definition C.1: project the augmented relation onto the
    ordinary attributes (this recovers the user-visible relation under bag
    semantics)."""
    terms = [Variable(f"X{i + 1}") for i in range(arity + 1)]
    return ConjunctiveQuery("Q_vals", terms[:-1], [Atom(relation, terms)])


def is_set_enforcing_egd(dependency: Dependency) -> str | None:
    """If *dependency* is a set-enforcing egd, return the relation it guards.

    A set-enforcing egd has exactly two premise atoms over the same
    predicate, agreeing (same variable) on every position except the last,
    and its single equality equates the two last-position variables.
    Returns None when the dependency does not match the pattern.
    """
    if not isinstance(dependency, EGD):
        return None
    if len(dependency.premise) != 2 or len(dependency.equalities) != 1:
        return None
    first, second = dependency.premise
    if first.predicate != second.predicate or first.arity != second.arity:
        return None
    if first.arity < 2:
        return None
    *front1, last1 = first.terms
    *front2, last2 = second.terms
    if front1 != front2:
        return None
    if last1 == last2:
        return None
    equality = dependency.equalities[0]
    if {equality.left, equality.right} != {last1, last2}:
        return None
    return first.predicate


def detect_set_enforcing_predicates(dependencies: Iterable[Dependency]) -> set[str]:
    """Relations guarded by a set-enforcing egd in *dependencies*."""
    found = set()
    for dependency in dependencies:
        relation = is_set_enforcing_egd(dependency)
        if relation is not None:
            found.add(relation)
    return found


def dependency_set_with_tuple_ids(
    dependencies: DependencySet, schema: DatabaseSchema
) -> DependencySet:
    """Materialise the set-valuedness markers of *dependencies* as tuple-ID egds.

    The returned dependency set contains the original dependencies plus one
    set-enforcing egd (over the augmented, arity+1 relation) per marked
    predicate.  Queries over the original schema remain valid because the
    tuple-ID attribute is invisible to them; this function exists so users
    can inspect and chase with the *formal* encoding of Appendix C.
    """
    extra = [
        set_enforcing_egd(name, schema.arity(name))
        for name in sorted(dependencies.set_valued_predicates)
        if name in schema
    ]
    return DependencySet(
        list(dependencies) + extra, dependencies.set_valued_predicates
    )
