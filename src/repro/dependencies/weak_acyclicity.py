"""Weak acyclicity of a set of dependencies (Appendix H.1 / Definition H.1).

Weak acyclicity is the standard sufficient condition for set-chase
termination (Fagin et al., "Data exchange: semantics and query answering"):
build the *dependency graph* whose nodes are positions ``(relation,
attribute_index)``; for every tgd and every universally quantified variable
``X`` occurring in both sides, add

* an ordinary edge from every position of ``X`` in the premise to every
  position of ``X`` in the conclusion, and
* a *special* edge from every position of ``X`` in the premise to every
  position of an existential variable in the conclusion.

The set is weakly acyclic when no cycle of the graph passes through a
special edge.  Egds are ignored (they never create new values).

The graph and its SCC machinery live in
:mod:`repro.dependencies.position_graph` — a self-contained int-keyed
structure (iterative Tarjan) shared with the static analyzer, which also
needs edge provenance for witness cycles and the rank function behind
termination certificates.  A special edge lies on a cycle iff both of its
endpoints belong to the same SCC.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .base import Dependency, DependencySet
from .position_graph import Position, PositionGraph

__all__ = [
    "Position",
    "dependency_graph",
    "is_weakly_acyclic",
    "special_edges_on_cycles",
]


def _items(
    dependencies: DependencySet | Sequence[Dependency],
) -> Iterable[Dependency]:
    if isinstance(dependencies, DependencySet):
        return dependencies.dependencies
    return dependencies


def dependency_graph(dependencies: Iterable[Dependency]) -> PositionGraph:
    """The dependency graph of Definition H.1.

    Nodes are positions ``(predicate, index)``; edges carry a ``special``
    flag plus provenance (inducing tgd and variable).  The shape accessors
    (``number_of_nodes`` / ``number_of_edges``) match the former networkx
    ``MultiDiGraph``, parallel edges included.
    """
    return PositionGraph.from_dependencies(dependencies)


def is_weakly_acyclic(
    dependencies: DependencySet | Sequence[Dependency],
) -> bool:
    """True when the dependency graph has no cycle through a special edge."""
    return dependency_graph(_items(dependencies)).is_weakly_acyclic()


def special_edges_on_cycles(
    dependencies: DependencySet | Sequence[Dependency],
) -> list[tuple[Position, Position]]:
    """The special edges that lie on cycles — the witnesses of non-weak-acyclicity."""
    graph = dependency_graph(_items(dependencies))
    return [
        (graph.positions[edge.source], graph.positions[edge.target])
        for edge in graph.special_edges_in_cycles()
    ]
