"""Weak acyclicity of a set of dependencies (Appendix H.1 / Definition H.1).

Weak acyclicity is the standard sufficient condition for set-chase
termination (Fagin et al., "Data exchange: semantics and query answering"):
build the *dependency graph* whose nodes are positions ``(relation,
attribute_index)``; for every tgd and every universally quantified variable
``X`` occurring in both sides, add

* an ordinary edge from every position of ``X`` in the premise to every
  position of ``X`` in the conclusion, and
* a *special* edge from every position of ``X`` in the premise to every
  position of an existential variable in the conclusion.

The set is weakly acyclic when no cycle of the graph passes through a
special edge.  Egds are ignored (they never create new values).

The implementation uses :mod:`networkx` for the strongly-connected-component
computation: a special edge lies on a cycle iff both of its endpoints belong
to the same SCC.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import networkx as nx

from ..core.terms import Variable
from .base import TGD, Dependency, DependencySet

Position = tuple[str, int]


def dependency_graph(dependencies: Iterable[Dependency]) -> nx.MultiDiGraph:
    """The dependency graph of Definition H.1.

    Nodes are positions ``(predicate, index)``; edges carry a boolean
    ``special`` attribute.
    """
    graph = nx.MultiDiGraph()
    for dependency in dependencies:
        if not isinstance(dependency, TGD):
            continue
        premise_positions: dict[Variable, list[Position]] = {}
        for atom in dependency.premise:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    premise_positions.setdefault(term, []).append(
                        (atom.predicate, index)
                    )
        existential = set(dependency.existential_variables())
        conclusion_positions: dict[Variable, list[Position]] = {}
        for atom in dependency.conclusion:
            for index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    conclusion_positions.setdefault(term, []).append(
                        (atom.predicate, index)
                    )
        for variable, sources in premise_positions.items():
            if variable not in conclusion_positions and not existential:
                continue
            targets = conclusion_positions.get(variable, [])
            if not targets and not existential:
                continue
            for source in sources:
                graph.add_node(source)
                # Ordinary edges: premise position of X -> conclusion position of X.
                for target in targets:
                    graph.add_node(target)
                    graph.add_edge(source, target, special=False)
                # Special edges: premise position of X -> every position of an
                # existential variable in the conclusion, but only for variables X
                # that occur in the conclusion (Definition H.1's "for every X in
                # X̄ that occurs in ψ").
                if variable in conclusion_positions:
                    for exist_var in existential:
                        for target in conclusion_positions.get(exist_var, []):
                            graph.add_node(target)
                            graph.add_edge(source, target, special=True)
    return graph


def is_weakly_acyclic(
    dependencies: DependencySet | Sequence[Dependency],
) -> bool:
    """True when the dependency graph has no cycle through a special edge."""
    items: Iterable[Dependency]
    items = dependencies.dependencies if isinstance(dependencies, DependencySet) else dependencies
    graph = dependency_graph(items)
    if graph.number_of_nodes() == 0:
        return True
    component_of: dict[Position, int] = {}
    for component_id, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = component_id
    for source, target, data in graph.edges(data=True):
        if data.get("special") and component_of[source] == component_of[target]:
            return False
    return True


def special_edges_on_cycles(
    dependencies: DependencySet | Sequence[Dependency],
) -> list[tuple[Position, Position]]:
    """The special edges that lie on cycles — the witnesses of non-weak-acyclicity."""
    items: Iterable[Dependency]
    items = dependencies.dependencies if isinstance(dependencies, DependencySet) else dependencies
    graph = dependency_graph(items)
    component_of: dict[Position, int] = {}
    for component_id, component in enumerate(nx.strongly_connected_components(graph)):
        for node in component:
            component_of[node] = component_id
    witnesses = []
    for source, target, data in graph.edges(data=True):
        if data.get("special") and component_of[source] == component_of[target]:
            witnesses.append((source, target))
    return witnesses
