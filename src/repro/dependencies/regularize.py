"""Regularization of tgds (Definition 4.1 of the paper).

A tgd ``φ → ∃Z̄ ψ`` is *regularized* when its conclusion cannot be split into
two nonempty groups of atoms that share only universally quantified
variables.  Equivalently: viewing conclusion atoms as nodes and connecting
two atoms whenever they share an *existential* variable, the conclusion must
form a single connected component.

Regularizing a non-regular tgd splits its conclusion into those connected
components, one tgd per component (same premise).  Proposition 4.1: the
regularized set is satisfied by exactly the same databases, and set-chase
results are preserved.  Sound chase under bag / bag-set semantics *requires*
regularized tgds (Examples 4.4–4.5 show what goes wrong otherwise).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..core.atoms import Atom
from ..core.terms import Variable
from .base import TGD, Dependency, DependencySet


def _conclusion_components(tgd: TGD) -> list[list[Atom]]:
    """Connected components of the conclusion under shared existential variables."""
    existential = set(tgd.existential_variables())
    atoms = list(tgd.conclusion)
    parent = list(range(len(atoms)))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    def union(i: int, j: int) -> None:
        parent[find(i)] = find(j)

    variable_to_atoms: dict[Variable, list[int]] = {}
    for index, atom in enumerate(atoms):
        for var in atom.variable_set():
            if var in existential:
                variable_to_atoms.setdefault(var, []).append(index)
    for indices in variable_to_atoms.values():
        for other in indices[1:]:
            union(indices[0], other)

    groups: dict[int, list[Atom]] = {}
    for index, atom in enumerate(atoms):
        groups.setdefault(find(index), []).append(atom)
    # Preserve the original conclusion order inside and across components.
    ordered = sorted(groups.values(), key=lambda grp: atoms.index(grp[0]))
    return ordered


def is_regularized(tgd: TGD) -> bool:
    """True when *tgd* admits no nonshared partition of its conclusion.

    A tgd with a single conclusion atom is trivially regularized.
    """
    if len(tgd.conclusion) <= 1:
        return True
    return len(_conclusion_components(tgd)) == 1


def regularize_tgd(tgd: TGD) -> list[TGD]:
    """The regularized set Σ_σ of a tgd (Section 4.2.1).

    Returns ``[tgd]`` unchanged when the tgd is already regularized.
    """
    components = _conclusion_components(tgd)
    if len(components) == 1:
        return [tgd]
    result = []
    for index, component in enumerate(components):
        suffix = chr(ord("a") + index) if index < 26 else str(index)
        name = f"{tgd.name}_{suffix}" if tgd.name else ""
        result.append(TGD(tgd.premise, component, name=name))
    return result


def regularize_dependencies(
    dependencies: Iterable[Dependency],
) -> list[Dependency]:
    """The regularized version Σ′ of a set of tgds and egds.

    Egds pass through unchanged; each tgd is replaced by its regularized set.
    The result is unique (Section 4.2.1).
    """
    result: list[Dependency] = []
    for dependency in dependencies:
        if isinstance(dependency, TGD):
            result.extend(regularize_tgd(dependency))
        else:
            result.append(dependency)
    return result


def regularize(dependencies: DependencySet | Sequence[Dependency]) -> DependencySet:
    """Regularize a :class:`DependencySet` (set-valuedness markers preserved)."""
    if isinstance(dependencies, DependencySet):
        return DependencySet(
            regularize_dependencies(dependencies.dependencies),
            dependencies.set_valued_predicates,
        )
    return DependencySet(regularize_dependencies(dependencies))


def is_regularized_set(dependencies: DependencySet | Sequence[Dependency]) -> bool:
    """True when every tgd in the set is regularized (Definition 4.1)."""
    items: Iterable[Dependency]
    items = dependencies.dependencies if isinstance(dependencies, DependencySet) else dependencies
    return all(is_regularized(d) for d in items if isinstance(d, TGD))
