"""View-based query rewriting under set, bag, and bag-set semantics.

This is the application the paper positions its framework for (Section 1 and
the contributions list): finding rewritings of a CQ query in terms of view
predicates that are equivalent to the query *in presence of the schema's
embedded dependencies*, under the query-evaluation semantics of interest.

The algorithm is the view-based C&B recipe, made bag-aware with the paper's
machinery:

1. extend the dependency set with the exact-view tgds (forward + backward,
   :meth:`repro.views.definitions.ViewSet.view_dependencies`); DISTINCT views
   additionally become set-enforced relations;
2. chase the input query under *set semantics* over the combined dependency
   set — the resulting universal plan mentions both base and view predicates
   and is used purely as a candidate generator (the set chase introduces
   every view atom the dependencies can justify, which a bag-sound chase by
   design would refuse to add);
3. enumerate subqueries of the universal plan; keep those that use only view
   predicates (total rewritings) or, optionally, mixed base/view bodies
   (partial rewritings);
4. accept a candidate iff its *expansion* is Σ-equivalent to the input query
   under the chosen semantics (Theorems 2.2 / 6.1 / 6.2 applied through
   :func:`repro.equivalence.equivalent_under_dependencies`) — this validation
   step, not the candidate generation, is what carries the bag / bag-set
   soundness guarantees.

Correctness assumptions, spelled out because bag semantics makes them
visible: a view defined **without** DISTINCT is materialised as a bag whose
tuple multiplicities are those of its defining query under bag / bag-set
semantics, so a rewriting's answer over the materialised views coincides
with its expansion's answer over the base database and the expansion test
decides correctness.  A view defined **with** DISTINCT is materialised as a
set, which in general *loses* multiplicities; under bag and bag-set
semantics such a view is therefore only used when its defining query
provably produces no duplicates in the first place (no projection of body
variables and every body relation set enforced) — a conservative sufficient
condition.  Under set semantics DISTINCT is immaterial and every view is
usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from ..core.atoms import Atom
from ..core.homomorphism import are_isomorphic
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..equivalence.under_dependencies import equivalent_under_dependencies
from ..exceptions import ReformulationError
from ..reformulation.candidates import iter_subqueries
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS
from ..chase.sound_chase import sound_chase
from .definitions import ViewDefinition, ViewSet


def _distinct_view_is_duplicate_free(
    view: ViewDefinition, dependencies: DependencySet
) -> bool:
    """Can this DISTINCT view never collapse duplicates?

    Sufficient condition: the definition projects no body variable away and
    every body relation is set enforced — then the defining query returns a
    set under bag and bag-set semantics anyway, so materialising it with
    DISTINCT changes nothing.
    """
    head_variables = set(view.definition.head_variables())
    body_variables = set(view.definition.body_variables())
    if not body_variables <= head_variables:
        return False
    return all(
        dependencies.is_set_valued(atom.predicate) for atom in view.definition.body
    )


def _view_usable_under(
    view: ViewDefinition, semantics: Semantics, dependencies: DependencySet
) -> bool:
    """May *view* appear in a rewriting evaluated under *semantics*?

    Non-DISTINCT views are bags that reproduce their definition's
    multiplicities, so they are always usable; DISTINCT views are usable
    under set semantics unconditionally and under bag / bag-set semantics
    only when they provably produce no duplicates.
    """
    if not view.distinct or semantics is Semantics.SET:
        return True
    return _distinct_view_is_duplicate_free(view, dependencies)


@dataclass
class ViewRewritingResult:
    """Output of :func:`rewrite_query_using_views`."""

    query: ConjunctiveQuery
    semantics: Semantics
    universal_plan: ConjunctiveQuery
    rewritings: list[ConjunctiveQuery] = field(default_factory=list)
    expansions: dict[int, ConjunctiveQuery] = field(default_factory=dict)
    candidates_examined: int = 0

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self.rewritings)

    def __len__(self) -> int:
        return len(self.rewritings)

    def expansion_of(self, rewriting: ConjunctiveQuery) -> ConjunctiveQuery:
        """The expansion that was used to validate *rewriting*."""
        return self.expansions[id(rewriting)]

    def contains_isomorphic(self, query: ConjunctiveQuery) -> bool:
        """Is some accepted rewriting isomorphic to *query*?"""
        return any(are_isomorphic(candidate, query) for candidate in self.rewritings)

    def __str__(self) -> str:
        lines = [
            f"view rewritings of {self.query} under {self.semantics}:",
            f"  universal plan: {self.universal_plan}",
        ]
        lines.extend(f"  {rewriting}" for rewriting in self.rewritings)
        return "\n".join(lines)


def rewrite_query_using_views(
    query: ConjunctiveQuery,
    views: ViewSet,
    dependencies: DependencySet | Sequence[Dependency] = (),
    semantics: Semantics | str = Semantics.SET,
    total_only: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_candidate_size: int | None = None,
) -> ViewRewritingResult:
    """Find view-based rewritings of *query* equivalent under Σ and *semantics*.

    ``total_only`` restricts the output to rewritings whose body uses view
    predicates exclusively; with ``total_only=False`` mixed base/view bodies
    are reported as well (useful when the views alone cannot answer the
    query).  The input query itself (all-base body) is never reported.
    """
    semantics = Semantics.from_name(semantics)
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    if any(atom.predicate in views.view_names() for atom in query.body):
        raise ReformulationError(
            "the input query must be phrased over the base schema; "
            "rewritings over the views are the output"
        )

    combined = views.combined_dependencies(dependencies)
    # Candidate generation always uses the set chase (see the module
    # docstring); per-candidate validation below uses the requested semantics.
    universal_plan = sound_chase(query, combined, Semantics.SET, max_steps).query
    return _collect_rewritings(
        query,
        views,
        dependencies,
        semantics,
        universal_plan,
        total_only=total_only,
        max_steps=max_steps,
        max_candidate_size=max_candidate_size,
    )


def _collect_rewritings(
    query: ConjunctiveQuery,
    views: ViewSet,
    dependencies: DependencySet,
    semantics: Semantics,
    universal_plan: ConjunctiveQuery,
    *,
    total_only: bool,
    max_steps: int,
    max_candidate_size: int | None,
) -> ViewRewritingResult:
    """Steps 3–4 of the recipe: enumerate and validate subquery candidates.

    Shared by :func:`rewrite_query_using_views` (which chases the universal
    plan cold) and :class:`IncrementalViewRewriter` (which maintains it
    across deltas); any terminal set-chase fixpoint of the combined
    dependency set works as *universal_plan* — resumed and cold fixpoints
    differ only up to Σ-equivalence, and the per-candidate expansion test
    carries the correctness guarantee either way.
    """
    result = ViewRewritingResult(
        query=query, semantics=semantics, universal_plan=universal_plan
    )
    usable_views = {
        view.name
        for view in views
        if _view_usable_under(view, semantics, dependencies)
    }
    for candidate in iter_subqueries(universal_plan, max_size=max_candidate_size):
        used_views = {
            atom.predicate for atom in candidate.body if atom.predicate in views.view_names()
        }
        if not used_views:
            continue
        if total_only and not views.uses_only_views(candidate):
            continue
        if not used_views <= usable_views:
            continue
        result.candidates_examined += 1
        expansion = views.expand(candidate)
        if not equivalent_under_dependencies(
            expansion, query, dependencies, semantics, max_steps
        ):
            continue
        if any(are_isomorphic(candidate, existing) for existing in result.rewritings):
            continue
        result.rewritings.append(candidate)
        result.expansions[id(candidate)] = expansion
    return result


class IncrementalViewRewriter:
    """Maintain view-based rewritings while the query and Σ grow.

    The dominant cost of :func:`rewrite_query_using_views` on a warm
    workload is step 2 — re-chasing the input to its universal plan after
    every edit.  This maintainer keeps that chase *resumable* (see
    :mod:`repro.chase.incremental`): :meth:`add_atoms` and
    :meth:`add_dependencies` advance the universal-plan fixpoint from its
    checkpoint instead of rechasing, then re-run only candidate enumeration
    and validation.

    The maintainer owns its working dependency order: it starts from
    ``views.combined_dependencies(dependencies)`` and *appends* every added
    dependency at the end, so each checkpoint's Σ stays a prefix of the next
    (the resumability condition).  This differs from what
    ``combined_dependencies`` would produce if rebuilt from the grown base
    set (base dependencies first, view dependencies after) — harmless, since
    chase order only affects the fixpoint's syntax, never its Σ-equivalence
    class, and validation is order-insensitive.
    """

    def __init__(
        self,
        query: ConjunctiveQuery,
        views: ViewSet,
        dependencies: DependencySet | Sequence[Dependency] = (),
        semantics: Semantics | str = Semantics.SET,
        total_only: bool = True,
        max_steps: int = DEFAULT_MAX_STEPS,
        max_candidate_size: int | None = None,
    ) -> None:
        from ..chase.incremental import ResumableChase

        self.semantics = Semantics.from_name(semantics)
        if not isinstance(dependencies, DependencySet):
            dependencies = DependencySet(dependencies)
        self.views = views
        self.total_only = total_only
        self.max_steps = max_steps
        self.max_candidate_size = max_candidate_size
        self._check_base_only(query.body)
        # Validation Σ (base + added) and the chase's working Σ (combined,
        # append-only) evolve together but keep different orders; see the
        # class docstring.
        self._dependencies = dependencies
        self._chase = ResumableChase(
            query,
            views.combined_dependencies(dependencies),
            Semantics.SET,
            max_steps,
        )

    def _check_base_only(self, atoms: Iterable[Atom]) -> None:
        if any(atom.predicate in self.views.view_names() for atom in atoms):
            raise ReformulationError(
                "the input query must be phrased over the base schema; "
                "rewritings over the views are the output"
            )

    @property
    def query(self) -> ConjunctiveQuery:
        """The current (delta-accumulated) input query."""
        return self._chase.query

    @property
    def dependencies(self) -> DependencySet:
        """The current base dependency set used for validation."""
        return self._dependencies

    def rewrite(self) -> ViewRewritingResult:
        """Rewritings for the current state (chases only what a delta needs)."""
        universal_plan = self._chase.run().query
        return _collect_rewritings(
            self.query,
            self.views,
            self._dependencies,
            self.semantics,
            universal_plan,
            total_only=self.total_only,
            max_steps=self.max_steps,
            max_candidate_size=self.max_candidate_size,
        )

    def add_atoms(self, atoms: Iterable[Atom]) -> ViewRewritingResult:
        """Grow the input query's body and re-derive the rewritings."""
        from ..chase.incremental import ChaseDelta

        added = tuple(atoms)
        self._check_base_only(added)
        self._chase.apply(ChaseDelta.atoms(*added))
        return self.rewrite()

    def add_dependencies(
        self, dependencies: Sequence[Dependency]
    ) -> ViewRewritingResult:
        """Grow the base dependency set and re-derive the rewritings."""
        from ..chase.incremental import ChaseDelta

        added = tuple(dependencies)
        self._chase.apply(ChaseDelta.dependencies(*added))
        base = list(self._dependencies.dependencies) + list(added)
        self._dependencies = DependencySet(
            base, self._dependencies.set_valued_predicates
        )
        return self.rewrite()

    def stats(self) -> dict[str, int]:
        """Resumed-vs-cold counters of the maintained universal-plan chase."""
        return self._chase.stats()


def is_correct_rewriting(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewSet,
    dependencies: DependencySet | Sequence[Dependency] = (),
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """The expansion test: is *rewriting* (over view predicates) equivalent to
    *query* under Σ and the chosen semantics?

    DISTINCT views that may collapse duplicates make the rewriting incorrect
    under bag / bag-set semantics regardless of the expansion, so such
    rewritings are rejected up front (same conservative rule as
    :func:`rewrite_query_using_views`).
    """
    semantics = Semantics.from_name(semantics)
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    for atom in rewriting.body:
        if atom.predicate in views.view_names():
            view = views.view(atom.predicate)
            if not _view_usable_under(view, semantics, dependencies):
                return False
    expansion = views.expand(rewriting)
    return equivalent_under_dependencies(
        expansion, query, dependencies, semantics, max_steps
    )
