"""View-based query rewriting under set, bag, and bag-set semantics.

This is the application the paper positions its framework for (Section 1 and
the contributions list): finding rewritings of a CQ query in terms of view
predicates that are equivalent to the query *in presence of the schema's
embedded dependencies*, under the query-evaluation semantics of interest.

The algorithm is the view-based C&B recipe, made bag-aware with the paper's
machinery:

1. extend the dependency set with the exact-view tgds (forward + backward,
   :meth:`repro.views.definitions.ViewSet.view_dependencies`); DISTINCT views
   additionally become set-enforced relations;
2. chase the input query under *set semantics* over the combined dependency
   set — the resulting universal plan mentions both base and view predicates
   and is used purely as a candidate generator (the set chase introduces
   every view atom the dependencies can justify, which a bag-sound chase by
   design would refuse to add);
3. enumerate subqueries of the universal plan; keep those that use only view
   predicates (total rewritings) or, optionally, mixed base/view bodies
   (partial rewritings);
4. accept a candidate iff its *expansion* is Σ-equivalent to the input query
   under the chosen semantics (Theorems 2.2 / 6.1 / 6.2 applied through
   :func:`repro.equivalence.equivalent_under_dependencies`) — this validation
   step, not the candidate generation, is what carries the bag / bag-set
   soundness guarantees.

Correctness assumptions, spelled out because bag semantics makes them
visible: a view defined **without** DISTINCT is materialised as a bag whose
tuple multiplicities are those of its defining query under bag / bag-set
semantics, so a rewriting's answer over the materialised views coincides
with its expansion's answer over the base database and the expansion test
decides correctness.  A view defined **with** DISTINCT is materialised as a
set, which in general *loses* multiplicities; under bag and bag-set
semantics such a view is therefore only used when its defining query
provably produces no duplicates in the first place (no projection of body
variables and every body relation set enforced) — a conservative sufficient
condition.  Under set semantics DISTINCT is immaterial and every view is
usable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..core.homomorphism import are_isomorphic
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..equivalence.under_dependencies import equivalent_under_dependencies
from ..exceptions import ReformulationError
from ..reformulation.candidates import iter_subqueries
from ..semantics import Semantics
from ..chase.set_chase import DEFAULT_MAX_STEPS
from ..chase.sound_chase import sound_chase
from .definitions import ViewDefinition, ViewSet


def _distinct_view_is_duplicate_free(
    view: ViewDefinition, dependencies: DependencySet
) -> bool:
    """Can this DISTINCT view never collapse duplicates?

    Sufficient condition: the definition projects no body variable away and
    every body relation is set enforced — then the defining query returns a
    set under bag and bag-set semantics anyway, so materialising it with
    DISTINCT changes nothing.
    """
    head_variables = set(view.definition.head_variables())
    body_variables = set(view.definition.body_variables())
    if not body_variables <= head_variables:
        return False
    return all(
        dependencies.is_set_valued(atom.predicate) for atom in view.definition.body
    )


def _view_usable_under(
    view: ViewDefinition, semantics: Semantics, dependencies: DependencySet
) -> bool:
    """May *view* appear in a rewriting evaluated under *semantics*?

    Non-DISTINCT views are bags that reproduce their definition's
    multiplicities, so they are always usable; DISTINCT views are usable
    under set semantics unconditionally and under bag / bag-set semantics
    only when they provably produce no duplicates.
    """
    if not view.distinct or semantics is Semantics.SET:
        return True
    return _distinct_view_is_duplicate_free(view, dependencies)


@dataclass
class ViewRewritingResult:
    """Output of :func:`rewrite_query_using_views`."""

    query: ConjunctiveQuery
    semantics: Semantics
    universal_plan: ConjunctiveQuery
    rewritings: list[ConjunctiveQuery] = field(default_factory=list)
    expansions: dict[int, ConjunctiveQuery] = field(default_factory=dict)
    candidates_examined: int = 0

    def __iter__(self):
        return iter(self.rewritings)

    def __len__(self) -> int:
        return len(self.rewritings)

    def expansion_of(self, rewriting: ConjunctiveQuery) -> ConjunctiveQuery:
        """The expansion that was used to validate *rewriting*."""
        return self.expansions[id(rewriting)]

    def contains_isomorphic(self, query: ConjunctiveQuery) -> bool:
        """Is some accepted rewriting isomorphic to *query*?"""
        return any(are_isomorphic(candidate, query) for candidate in self.rewritings)

    def __str__(self) -> str:
        lines = [
            f"view rewritings of {self.query} under {self.semantics}:",
            f"  universal plan: {self.universal_plan}",
        ]
        lines.extend(f"  {rewriting}" for rewriting in self.rewritings)
        return "\n".join(lines)


def rewrite_query_using_views(
    query: ConjunctiveQuery,
    views: ViewSet,
    dependencies: DependencySet | Sequence[Dependency] = (),
    semantics: Semantics | str = Semantics.SET,
    total_only: bool = True,
    max_steps: int = DEFAULT_MAX_STEPS,
    max_candidate_size: int | None = None,
) -> ViewRewritingResult:
    """Find view-based rewritings of *query* equivalent under Σ and *semantics*.

    ``total_only`` restricts the output to rewritings whose body uses view
    predicates exclusively; with ``total_only=False`` mixed base/view bodies
    are reported as well (useful when the views alone cannot answer the
    query).  The input query itself (all-base body) is never reported.
    """
    semantics = Semantics.from_name(semantics)
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    if any(atom.predicate in views.view_names() for atom in query.body):
        raise ReformulationError(
            "the input query must be phrased over the base schema; "
            "rewritings over the views are the output"
        )

    combined = views.combined_dependencies(dependencies)
    # Candidate generation always uses the set chase (see the module
    # docstring); per-candidate validation below uses the requested semantics.
    universal_plan = sound_chase(query, combined, Semantics.SET, max_steps).query

    result = ViewRewritingResult(
        query=query, semantics=semantics, universal_plan=universal_plan
    )
    usable_views = {
        view.name
        for view in views
        if _view_usable_under(view, semantics, dependencies)
    }
    for candidate in iter_subqueries(universal_plan, max_size=max_candidate_size):
        used_views = {
            atom.predicate for atom in candidate.body if atom.predicate in views.view_names()
        }
        if not used_views:
            continue
        if total_only and not views.uses_only_views(candidate):
            continue
        if not used_views <= usable_views:
            continue
        result.candidates_examined += 1
        expansion = views.expand(candidate)
        if not equivalent_under_dependencies(
            expansion, query, dependencies, semantics, max_steps
        ):
            continue
        if any(are_isomorphic(candidate, existing) for existing in result.rewritings):
            continue
        result.rewritings.append(candidate)
        result.expansions[id(candidate)] = expansion
    return result


def is_correct_rewriting(
    rewriting: ConjunctiveQuery,
    query: ConjunctiveQuery,
    views: ViewSet,
    dependencies: DependencySet | Sequence[Dependency] = (),
    semantics: Semantics | str = Semantics.SET,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> bool:
    """The expansion test: is *rewriting* (over view predicates) equivalent to
    *query* under Σ and the chosen semantics?

    DISTINCT views that may collapse duplicates make the rewriting incorrect
    under bag / bag-set semantics regardless of the expansion, so such
    rewritings are rejected up front (same conservative rule as
    :func:`rewrite_query_using_views`).
    """
    semantics = Semantics.from_name(semantics)
    if not isinstance(dependencies, DependencySet):
        dependencies = DependencySet(dependencies)
    for atom in rewriting.body:
        if atom.predicate in views.view_names():
            view = views.view(atom.predicate)
            if not _view_usable_under(view, semantics, dependencies):
                return False
    expansion = views.expand(rewriting)
    return equivalent_under_dependencies(
        expansion, query, dependencies, semantics, max_steps
    )
