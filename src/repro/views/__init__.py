"""View definitions and view-based query rewriting under the three semantics."""

from .definitions import ViewDefinition, ViewSet
from .rewriting import (
    IncrementalViewRewriter,
    ViewRewritingResult,
    is_correct_rewriting,
    rewrite_query_using_views,
)

__all__ = [
    "IncrementalViewRewriter",
    "ViewDefinition",
    "ViewRewritingResult",
    "ViewSet",
    "is_correct_rewriting",
    "rewrite_query_using_views",
]
