"""View definitions and view-based query rewriting under the three semantics."""

from .definitions import ViewDefinition, ViewSet
from .rewriting import (
    ViewRewritingResult,
    is_correct_rewriting,
    rewrite_query_using_views,
)

__all__ = [
    "ViewDefinition",
    "ViewRewritingResult",
    "ViewSet",
    "is_correct_rewriting",
    "rewrite_query_using_views",
]
