"""View definitions and their encoding as embedded dependencies.

The paper repeatedly points out (introduction and Section 1) that its
equivalence framework is what is needed to rewrite queries *using views*
under bag and bag-set semantics: a candidate rewriting over view predicates
is correct iff its expansion — the query obtained by replacing each view atom
by the view's definition — is Σ-equivalent to the original query under the
chosen semantics.

This module provides the substrate for that application:

* :class:`ViewDefinition` — a named conjunctive view ``V(X̄) :- body``;
* :class:`ViewSet` — a collection of views over one base schema, able to

  - extend a database schema with the view relations,
  - produce the *view dependencies* used by the chase-based rewriting
    algorithm (the standard C&B encoding of exact views): a **forward** full
    tgd ``body(V) → V(X̄)`` stating that every base match is in the view, and
    a **backward** tgd ``V(X̄) → ∃Ȳ body(V)`` stating that the view contains
    nothing else,
  - expand a query over (a mix of) base and view predicates back into a
    query over the base schema.

Whether a materialised view is duplicate free depends on how it was defined:
a view defined with ``DISTINCT`` is set valued, one defined without it is a
bag (this is exactly the paper's point that bag semantics becomes imperative
in the presence of materialised views).  :class:`ViewDefinition.distinct`
records this and :meth:`ViewSet.set_valued_view_names` exposes it to the
rewriting algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..core.atoms import Atom
from ..core.query import ConjunctiveQuery
from ..core.terms import FreshVariableFactory, Term, Variable
from ..dependencies.base import TGD, Dependency, DependencySet
from ..exceptions import QueryError, SchemaError
from ..schema.schema import DatabaseSchema, RelationSchema


@dataclass(frozen=True)
class ViewDefinition:
    """A named conjunctive view ``name(head terms of definition) :- body``."""

    name: str
    definition: ConjunctiveQuery
    distinct: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise QueryError("a view needs a nonempty name")

    @property
    def arity(self) -> int:
        """Arity of the view relation (number of head terms of the definition)."""
        return len(self.definition.head_terms)

    def head_atom(self) -> Atom:
        """The view atom over the definition's own head terms."""
        return Atom(self.name, self.definition.head_terms)

    def forward_dependency(self) -> TGD:
        """``body(V) → V(X̄)``: every base-schema match appears in the view."""
        return TGD(
            self.definition.body, [self.head_atom()], name=f"view_{self.name}_fwd"
        )

    def backward_dependency(self) -> TGD:
        """``V(X̄) → ∃Ȳ body(V)``: the view contains only base-schema matches."""
        return TGD(
            [self.head_atom()], self.definition.body, name=f"view_{self.name}_bwd"
        )

    def relation_schema(self) -> RelationSchema:
        """The view's relation schema; DISTINCT views are set valued."""
        return RelationSchema(self.name, self.arity, set_valued=self.distinct)

    def __str__(self) -> str:
        marker = " [distinct]" if self.distinct else ""
        return f"view {self.name}{marker}: {self.definition}"


class ViewSet:
    """A collection of views over one base schema."""

    def __init__(self, views: Iterable[ViewDefinition] = ()) -> None:
        self._views: dict[str, ViewDefinition] = {}
        for view in views:
            self.add(view)

    def add(self, view: ViewDefinition) -> None:
        """Add a view; duplicate names are rejected."""
        if view.name in self._views:
            raise SchemaError(f"duplicate view name {view.name!r}")
        self._views[view.name] = view

    def __iter__(self) -> Iterator[ViewDefinition]:
        return iter(self._views.values())

    def __len__(self) -> int:
        return len(self._views)

    def __contains__(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> ViewDefinition:
        """Look up a view by name."""
        try:
            return self._views[name]
        except KeyError as exc:
            raise SchemaError(f"no view named {name!r}") from exc

    def view_names(self) -> set[str]:
        """The names of all views."""
        return set(self._views)

    def set_valued_view_names(self) -> set[str]:
        """Views that are duplicate free (defined with DISTINCT)."""
        return {view.name for view in self if view.distinct}

    # ------------------------------------------------------------------ #
    def extend_schema(self, schema: DatabaseSchema) -> DatabaseSchema:
        """A copy of *schema* with one relation per view appended."""
        extended = DatabaseSchema(dict(schema.relations))
        for view in self:
            if view.name in extended:
                raise SchemaError(
                    f"view name {view.name!r} clashes with a base relation"
                )
            extended.add_relation(view.relation_schema())
        return extended

    def view_dependencies(self) -> list[Dependency]:
        """Forward + backward tgds for every view (the exact-view encoding)."""
        dependencies: list[Dependency] = []
        for view in self:
            dependencies.append(view.forward_dependency())
            dependencies.append(view.backward_dependency())
        return dependencies

    def combined_dependencies(self, base: DependencySet) -> DependencySet:
        """Base dependencies plus the view dependencies.

        Set-valuedness markers are the base markers plus the DISTINCT views.
        """
        return DependencySet(
            list(base) + self.view_dependencies(),
            base.set_valued_predicates | frozenset(self.set_valued_view_names()),
        )

    # ------------------------------------------------------------------ #
    def expand(self, query: ConjunctiveQuery) -> ConjunctiveQuery:
        """Replace every view atom of *query* by the view's definition body.

        Non-head variables of each definition are renamed freshly per
        occurrence (so two uses of the same view do not share existential
        witnesses), which is the standard expansion used to test candidate
        rewritings.  Base-relation atoms pass through unchanged.
        """
        used = {v.name for v in query.all_variables()}
        factory = FreshVariableFactory(used)
        expanded_body: list[Atom] = []
        for atom in query.body:
            if atom.predicate not in self._views:
                expanded_body.append(atom)
                continue
            view = self.view(atom.predicate)
            if atom.arity != view.arity:
                raise SchemaError(
                    f"view atom {atom} has arity {atom.arity}, view {view.name} "
                    f"has arity {view.arity}"
                )
            substitution: dict[Term, Term] = {}
            # Head terms of the definition are bound by the view atom's arguments.
            for head_term, argument in zip(view.definition.head_terms, atom.terms):
                if isinstance(head_term, Variable):
                    existing = substitution.get(head_term)
                    if existing is not None and existing != argument:
                        # The definition repeats a head variable; both view-atom
                        # arguments must then be equal, which for a symbolic
                        # query means unifying them — handled by mapping the
                        # second occurrence onto the first.
                        continue
                    substitution[head_term] = argument
                elif head_term != argument:
                    raise SchemaError(
                        f"view {view.name} exports constant {head_term} but the "
                        f"atom {atom} supplies {argument}"
                    )
            # Existential (non-head) variables of the definition get fresh names.
            for variable in view.definition.body_variables():
                if variable not in substitution:
                    substitution[variable] = factory(hint=f"{view.name}_{variable.name}")
            expanded_body.extend(
                body_atom.substitute(substitution) for body_atom in view.definition.body
            )
        return ConjunctiveQuery(query.head_predicate, query.head_terms, expanded_body)

    def uses_only_views(self, query: ConjunctiveQuery) -> bool:
        """Does *query* mention view predicates only (a *total* rewriting)?"""
        return all(atom.predicate in self._views for atom in query.body)

    def __str__(self) -> str:
        return "\n".join(str(view) for view in self)
