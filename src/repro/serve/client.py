"""A minimal blocking client for the ``repro serve`` daemon.

Small on purpose: one socket, one ``makefile`` line reader, one JSON line
per request/response.  It exists so tests, the ``repro client`` subcommand,
the CI smoke job, and user scripts all drive the daemon through the same
few lines of transport code — the protocol is simple enough that a client
in any other language is equally short.

    with ReproClient("127.0.0.1", 7464) as client:
        client.health()
        client.decide("Q1(X) :- p(X,Y)", "Q2(X) :- p(X,Y), r(X)", semantics="bag")
        client.stats()
"""

from __future__ import annotations

import json
import socket
from typing import Any

from ..exceptions import ReproError


class ClientError(ReproError):
    """Transport-level client failure (connection refused, truncated stream)."""


class ServerError(ReproError):
    """The daemon answered with a structured error response."""

    def __init__(self, code: str, message: str, error: dict[str, Any]):
        super().__init__(f"[{code}] {message}")
        self.code = code
        self.error = error


class ReproClient:
    """A blocking NDJSON client over one TCP connection.

    ``request`` raises :class:`ServerError` on structured error responses by
    default; pass ``check=False`` to receive the raw response dict instead
    (the CLI does, to print error responses verbatim).
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 7464, timeout: float = 60.0):
        self.host = host
        self.port = port
        try:
            self._sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise ClientError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._stream = self._sock.makefile("rwb")
        self._next_id = 0

    # ------------------------------------------------------------------ #
    def request(
        self, op: str, params: dict[str, Any] | None = None, *, check: bool = True
    ) -> dict[str, Any]:
        """Send one request and block for its response.

        Returns the ``result`` object of a success response; with
        ``check=False``, returns the whole response envelope (success or
        error) without raising.
        """
        self._next_id += 1
        payload: dict[str, Any] = {"id": self._next_id, "op": op}
        if params:
            payload["params"] = params
        try:
            self._stream.write(json.dumps(payload, separators=(",", ":")).encode() + b"\n")
            self._stream.flush()
            line = self._stream.readline()
        except OSError as exc:
            raise ClientError(f"connection to {self.host}:{self.port} failed: {exc}") from exc
        if not line:
            raise ClientError(
                f"server {self.host}:{self.port} closed the connection without answering"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:  # pragma: no cover - server bug
            raise ClientError(f"unparseable response line: {line[:200]!r}") from exc
        if not check:
            return response
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServerError(
                str(error.get("code", "internal")),
                str(error.get("message", "unknown server error")),
                error,
            )
        result = response.get("result")
        return result if isinstance(result, dict) else {}

    # ------------------------------------------------------------------ #
    # Convenience wrappers, one per op.
    # ------------------------------------------------------------------ #
    def decide(
        self,
        query: str,
        other: str,
        semantics: str | None = None,
        max_steps: int | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"query": query, "other": other}
        if semantics is not None:
            params["semantics"] = semantics
        if max_steps is not None:
            params["max_steps"] = max_steps
        return self.request("decide", params)

    def reformulate(
        self,
        query: str,
        semantics: str | None = None,
        *,
        minimal_only: bool = False,
        max_steps: int | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"query": query, "minimal_only": minimal_only}
        if semantics is not None:
            params["semantics"] = semantics
        if max_steps is not None:
            params["max_steps"] = max_steps
        return self.request("reformulate", params)

    def batch(
        self, pairs: list[tuple[str, str]] | list[list[str]], semantics: str | None = None
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"pairs": [list(pair) for pair in pairs]}
        if semantics is not None:
            params["semantics"] = semantics
        return self.request("batch", params)

    def apply_delta(
        self,
        query: str,
        *,
        add_atoms: str | None = None,
        add_dependencies: str | None = None,
        remove_atoms: str | None = None,
        remove_dependencies: str | None = None,
        set_valued: list[str] | None = None,
        semantics: str | None = None,
        max_steps: int | None = None,
    ) -> dict[str, Any]:
        params: dict[str, Any] = {"query": query}
        if add_atoms is not None:
            params["add_atoms"] = add_atoms
        if add_dependencies is not None:
            params["add_dependencies"] = add_dependencies
        if remove_atoms is not None:
            params["remove_atoms"] = remove_atoms
        if remove_dependencies is not None:
            params["remove_dependencies"] = remove_dependencies
        if set_valued:
            params["set_valued"] = list(set_valued)
        if semantics is not None:
            params["semantics"] = semantics
        if max_steps is not None:
            params["max_steps"] = max_steps
        return self.request("apply-delta", params)

    def stats(self) -> dict[str, Any]:
        return self.request("stats")

    def health(self) -> dict[str, Any]:
        return self.request("health")

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the connection (idempotent)."""
        try:
            self._stream.close()
        except OSError:  # pragma: no cover
            pass
        try:
            self._sock.close()
        except OSError:  # pragma: no cover
            pass

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReproClient({self.host}:{self.port})"
