"""Engine backends for the serve daemon: one thread, or N worker processes.

The acceptor (:class:`~repro.serve.server.ReproServer`) never chases; it
hands every CPU-bound op to an **engine backend**:

* :class:`ThreadEngineBackend` — the classic single-process shape: one
  worker thread serializes all engine work through one shared
  :class:`~repro.session.Session` (hot caches, no locks).
* :class:`ProcessEngineBackend` — ``--workers N``: a pool of long-lived
  engine *processes*, each owning a full Session, spoken to over
  ``multiprocessing`` pipes.  One slow chase no longer serializes every
  other client.

Both backends expose the same tiny surface (``start`` / ``dispatch`` /
``stats_snapshot`` / ``aclose``) and both execute ops through
:func:`repro.serve.ops.execute_op`, so a request is answered identically no
matter which backend served it.

The process pool's design points:

* **Warm starts.**  Each worker attaches the parent's shared-memory intern
  snapshot (:class:`~repro.core.terms.SharedInternSnapshot` — serialized
  once, attached by every spawn and respawn) and opens its own handle on
  the digest-keyed disk :class:`~repro.serve.store.ChaseStore`, so a fresh
  worker's first request is a store hit, not a cold chase.
* **Backpressure.**  Client requests beyond ``max_inflight`` are refused
  immediately with a structured ``overloaded`` error instead of queueing
  without bound.
* **Crash containment.**  A worker dying mid-request fails *that* request
  with ``worker-crashed``, and a replacement is spawned in its slot; the
  daemon survives.
* **Delta coherence.**  ``apply-delta`` is a monotonically versioned
  broadcast: the delta is sent to every worker, the pool waits for all
  acks before answering, and the versioned delta log is replayed into
  every respawned worker — so a decide following a delta sees the new Σ
  on whichever worker serves it (pipes are FIFO, so a request sent after
  the delta cannot overtake it).
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import contextlib
import itertools
import multiprocessing
import multiprocessing.connection
import os
import signal
import sys
import threading
from collections import deque
from dataclasses import dataclass, field, replace
from typing import Any, Hashable, Protocol

from ..core.terms import SharedInternSnapshot, export_interned_terms, pin_interned_terms
from ..dependencies.base import DependencySet
from ..exceptions import ReproError, SemanticsError
from ..session import Session
from ..session.engine import merge_stats
from ..session.strategies import BUILTIN_STRATEGIES
from .ops import error_payload_for, execute_op
from .protocol import ERROR_CODES, ProtocolError

__all__ = [
    "EngineBackend",
    "ProcessEngineBackend",
    "RemoteEngineError",
    "ThreadEngineBackend",
    "WorkerSpec",
]

#: Default in-flight bound per worker when ``max_inflight`` is not given:
#: enough to keep every worker busy with a short queue behind it, small
#: enough that a stall surfaces as ``overloaded`` instead of unbounded RAM.
DEFAULT_QUEUE_DEPTH = 32

#: Join budget (seconds) granted to a worker at shutdown before escalating
#: from the cooperative stop message to SIGTERM and then SIGKILL.
_STOP_JOIN_TIMEOUT = 2.0


class RemoteEngineError(ReproError):
    """A structured error produced by (or about) an engine worker process.

    Carries a stable protocol ``code`` plus optional ``detail`` keys, exactly
    what :func:`repro.serve.protocol.error_response` needs; the acceptor's
    response path turns it straight into the wire error.
    """

    def __init__(self, code: str, message: str, detail: dict[str, Any] | None = None):
        if code not in ERROR_CODES:  # pragma: no cover - developer error
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code
        self.detail = dict(detail or {})


class EngineBackend(Protocol):
    """What the acceptor needs from an engine backend."""

    kind: str

    async def start(self) -> None: ...

    async def dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]: ...

    async def stats_snapshot(self) -> dict[str, Any]: ...

    async def aclose(self) -> None: ...

    @property
    def dependency_count(self) -> int: ...


# --------------------------------------------------------------------------- #
# Single-thread backend
# --------------------------------------------------------------------------- #
class ThreadEngineBackend:
    """Engine ops on one worker thread over one shared Session.

    One worker, deliberately: all engine work is serialized, so the shared
    Session (and the process-wide intern tables underneath it) needs no
    locking, and concurrent clients share the hot chase/plan caches at
    request granularity.
    """

    kind = "thread"

    def __init__(self, session: Session):
        self.session = session
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )

    async def start(self) -> None:  # nothing to spawn
        return None

    async def dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, execute_op, self.session, op, params
        )

    async def stats_snapshot(self) -> dict[str, Any]:
        return self.session.stats()

    @property
    def dependency_count(self) -> int:
        return len(self.session.dependencies)

    async def aclose(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


# --------------------------------------------------------------------------- #
# Worker process side
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class WorkerSpec:
    """Everything a worker process needs to build its Session (picklable)."""

    dependencies: DependencySet
    max_steps: int
    default_semantics: Any
    precheck: str | None = None
    store_path: str | None = None
    shm_name: str | None = None
    #: Inline snapshot fallback for platforms without shared memory.
    intern_snapshot: "tuple[tuple[str, Hashable], ...] | None" = None
    cache_size: int = 4096


def _worker_main(
    conn: "multiprocessing.connection.Connection", spec: WorkerSpec
) -> None:
    """The engine worker loop: recv op, execute, send result; forever.

    Messages in: ``("req", rid, op, params, version)`` and ``("stop",)``.
    Messages out: ``("ready", pid, pinned)``, ``("ok", rid, result)``,
    ``("err", rid, code, message, detail)``.
    """
    # The parent's asyncio signal handlers were inherited across the fork;
    # restore defaults so terminate() actually terminates a worker stuck in
    # a long chase, and Ctrl-C is handled by the parent alone.
    with contextlib.suppress(Exception):
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.set_wakeup_fd(-1)

    pinned = 0
    if spec.shm_name is not None:
        try:
            pinned = SharedInternSnapshot.attach_and_pin(spec.shm_name)
        except (FileNotFoundError, OSError):
            pinned = 0
    if not pinned and spec.intern_snapshot:
        pinned = pin_interned_terms(spec.intern_snapshot)

    store = None
    if spec.store_path is not None:
        from .store import ChaseStore

        store = ChaseStore(spec.store_path)
    session = Session(
        dependencies=spec.dependencies,
        default_semantics=spec.default_semantics,
        max_steps=spec.max_steps,
        cache_size=spec.cache_size,
        store=store,
        precheck=spec.precheck,
        chase_resumable=True,
    )
    requests = 0
    sigma_version = 0
    try:
        conn.send(("ready", os.getpid(), pinned))
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            if message[0] == "stop":
                break
            _, rid, op, params, version = message
            if op == "stats":
                snapshot = session.stats()
                snapshot["worker"] = {
                    "pid": os.getpid(),
                    "requests": requests,
                    "sigma_version": sigma_version,
                    "pinned_terms": pinned,
                }
                conn.send(("ok", rid, snapshot))
                continue
            try:
                result = execute_op(session, op, params)
            except Exception as exc:
                payload = error_payload_for(exc)
                if payload is None:
                    payload = ("internal", f"{type(exc).__name__}: {exc}", {})
                    print(
                        f"repro serve worker: internal error on op {op!r}: "
                        f"{type(exc).__name__}: {exc}",
                        file=sys.stderr,
                    )
                code, message_text, detail = payload
                conn.send(("err", rid, code, message_text, detail))
            else:
                requests += 1
                if op == "apply-delta" and version is not None:
                    sigma_version = version
                conn.send(("ok", rid, result))
    except (BrokenPipeError, OSError):  # parent vanished; nothing to tell it
        pass
    finally:
        if store is not None:
            store.close()
        with contextlib.suppress(Exception):
            conn.close()


# --------------------------------------------------------------------------- #
# Parent (acceptor) side
# --------------------------------------------------------------------------- #
@dataclass
class _Worker:
    """Parent-side bookkeeping for one engine process."""

    slot: int
    process: Any
    conn: "multiprocessing.connection.Connection"
    pid: int | None = None
    ready: bool = False
    closing: bool = False
    pinned: int = 0
    requests_sent: int = 0
    #: Version of the last delta *sent* down this worker's pipe.  Invariant
    #: (all mutation happens on the event loop): every worker's pipe has
    #: seen every logged delta, in order.
    sent_version: int = 0
    #: rid -> (op, future) of requests awaiting this worker's answer.
    outstanding: dict[int, tuple[str, "asyncio.Future[Any]"]] = field(
        default_factory=dict
    )
    thread: threading.Thread | None = None

    @property
    def busy(self) -> bool:
        """Is an engine op (anything but a stats probe) outstanding?"""
        return any(op != "stats" for op, _ in self.outstanding.values())


def require_builtin_semantics(session: Session) -> None:
    """Refuse the process backend when the registry holds custom strategies.

    Worker processes rebuild Sessions with the default registry, so a custom
    strategy object registered on the acceptor's session would silently run
    different code in the workers — the same contract as
    ``decide_many(..., concurrency=N)``.
    """
    for name in session.semantics_names():
        if type(session.registry.resolve(name)) not in BUILTIN_STRATEGIES:
            raise SemanticsError(
                f"semantics {name!r} is bound to a custom strategy; "
                "custom strategies cannot be shipped to engine worker "
                "processes — run with --workers 1"
            )


class ProcessEngineBackend:
    """N long-lived engine processes behind one asyncio acceptor.

    All state below is mutated only on the event loop: the per-worker reader
    threads do nothing but ``conn.recv()`` and repost messages via
    ``call_soon_threadsafe``.
    """

    kind = "process"

    def __init__(
        self,
        spec: WorkerSpec,
        workers: int,
        *,
        max_inflight: int | None = None,
        mp_context: str | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.spec = spec
        self.workers_target = workers
        self.max_inflight = (
            max_inflight if max_inflight and max_inflight > 0
            else workers * DEFAULT_QUEUE_DEPTH
        )
        self._ctx = multiprocessing.get_context(mp_context)
        self._workers: list[_Worker] = []
        self._pending: deque[tuple[str, dict[str, Any], "asyncio.Future[Any]"]] = deque()
        self._rids = itertools.count(1)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._delta_lock: asyncio.Lock | None = None
        self._shm: SharedInternSnapshot | None = None
        self._closing = False
        self._inflight = 0
        self._sigma_version = 0
        self._delta_log: list[dict[str, Any]] = []
        self.dependency_count = len(spec.dependencies)
        # Observability counters (surfaced on the stats op as the "pool"
        # section).
        self.crashes = 0
        self.respawns = 0
        self.overloaded_rejections = 0
        self.deltas_broadcast = 0
        self.requests_dispatched = 0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._delta_lock = asyncio.Lock()
        if self.spec.shm_name is None:
            try:
                self._shm = SharedInternSnapshot.create()
            except Exception:
                self._shm = None
            if self._shm is not None:
                self.spec = replace(self.spec, shm_name=self._shm.name)
            elif self.spec.intern_snapshot is None:
                self.spec = replace(
                    self.spec, intern_snapshot=tuple(export_interned_terms())
                )
        for slot in range(self.workers_target):
            self._workers.append(self._spawn_worker(slot))

    async def aclose(self) -> None:
        self._closing = True
        for worker in self._workers:
            worker.closing = True
            with contextlib.suppress(Exception):
                worker.conn.send(("stop",))
        for worker in self._workers:
            worker.process.join(timeout=_STOP_JOIN_TIMEOUT)
            if worker.process.is_alive():
                with contextlib.suppress(Exception):
                    worker.process.terminate()
                worker.process.join(timeout=1.0)
            if worker.process.is_alive():  # stuck mid-chase with inherited handlers
                with contextlib.suppress(Exception):
                    worker.process.kill()
                worker.process.join(timeout=1.0)
            with contextlib.suppress(Exception):
                worker.conn.close()
            for _, future in worker.outstanding.values():
                if not future.done():
                    future.cancel()
            worker.outstanding.clear()
        self._workers.clear()
        while self._pending:
            _, _, future = self._pending.popleft()
            if not future.done():
                future.cancel()
        if self._shm is not None:
            self._shm.destroy()
            self._shm = None

    def _spawn_worker(self, slot: int) -> _Worker:
        assert self._loop is not None
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.spec),
            name=f"repro-serve-worker-{slot}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _Worker(slot=slot, process=process, conn=parent_conn, pid=process.pid)
        # Catch a fresh (or respawned) worker up to the pool's Σ before it
        # can serve anything: replay the whole versioned delta log down its
        # pipe.  FIFO ordering makes any request sent afterwards see the
        # post-delta state.
        for version, params in enumerate(self._delta_log, start=1):
            self._send_internal(worker, "apply-delta", params, version)
        worker.sent_version = self._sigma_version
        thread = threading.Thread(
            target=self._read_loop,
            args=(worker,),
            name=f"repro-serve-reader-{slot}",
            daemon=True,
        )
        worker.thread = thread
        thread.start()
        return worker

    # ------------------------------------------------------------------ #
    # Reader threads → event loop
    # ------------------------------------------------------------------ #
    def _read_loop(self, worker: _Worker) -> None:
        assert self._loop is not None
        while True:
            try:
                message = worker.conn.recv()
            except (EOFError, OSError):
                break
            try:
                self._loop.call_soon_threadsafe(self._on_message, worker, message)
            except RuntimeError:  # loop already closed (shutdown race)
                return
        with contextlib.suppress(RuntimeError):
            self._loop.call_soon_threadsafe(self._on_death, worker)

    def _on_message(self, worker: _Worker, message: tuple[Any, ...]) -> None:
        kind = message[0]
        if kind == "ready":
            worker.ready = True
            worker.pid = message[1]
            worker.pinned = message[2]
            self._pump()
            return
        rid = message[1]
        entry = worker.outstanding.pop(rid, None)
        if entry is None:
            return  # late answer to a request whose future was cancelled
        _, future = entry
        if not future.done():
            if kind == "ok":
                future.set_result(message[2])
            else:
                _, _, code, message_text, detail = message
                future.set_exception(RemoteEngineError(code, message_text, detail))
        self._pump()

    def _on_death(self, worker: _Worker) -> None:
        """A worker's pipe hit EOF: crash it out and respawn, unless closing."""
        if self._closing or worker.closing or worker not in self._workers:
            return
        self.crashes += 1
        error = RemoteEngineError(
            "worker-crashed",
            f"engine worker (pid {worker.pid}) died mid-request; "
            "a replacement has been spawned",
        )
        for _, future in worker.outstanding.values():
            if not future.done():
                future.set_exception(error)
        worker.outstanding.clear()
        self._replace_worker(worker, already_dead=True)
        self._pump()

    def _replace_worker(self, worker: _Worker, *, already_dead: bool = False) -> None:
        """Remove *worker* and spawn a fresh process in its slot."""
        if worker not in self._workers:
            return
        worker.closing = True  # the reader-thread death callback must no-op
        self._workers.remove(worker)
        with contextlib.suppress(Exception):
            worker.conn.close()
        if not already_dead:
            with contextlib.suppress(Exception):
                worker.process.terminate()
        error = RemoteEngineError(
            "worker-crashed",
            f"engine worker (pid {worker.pid}) was replaced mid-request",
        )
        for _, future in worker.outstanding.values():
            if not future.done():
                future.set_exception(error)
        worker.outstanding.clear()
        self._workers.append(self._spawn_worker(worker.slot))
        self._workers.sort(key=lambda w: w.slot)
        self.respawns += 1

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        assert self._loop is not None
        if op == "apply-delta":
            # Shielded: a client timeout must not abandon a half-broadcast
            # delta (some workers applied it, some did not) — the broadcast
            # runs to completion and settles the log either way.
            task = self._loop.create_task(self._broadcast_delta(params))
            task.add_done_callback(_retrieve_exception)
            return await asyncio.shield(task)
        if self._inflight >= self.max_inflight:
            self.overloaded_rejections += 1
            raise ProtocolError(
                "overloaded",
                f"engine pool is saturated ({self._inflight} requests in "
                f"flight, limit {self.max_inflight}); retry later",
            )
        future: "asyncio.Future[Any]" = self._loop.create_future()
        self._inflight += 1
        self.requests_dispatched += 1
        future.add_done_callback(self._release_inflight)
        self._pending.append((op, params, future))
        self._pump()
        return await future

    def _release_inflight(self, _future: "asyncio.Future[Any]") -> None:
        self._inflight = max(0, self._inflight - 1)

    def _pump(self) -> None:
        """Assign queued requests to idle, ready workers (loop thread only)."""
        if not self._pending:
            return
        for worker in self._workers:
            if not self._pending:
                return
            if not worker.ready or worker.closing or worker.busy:
                continue
            op, params, future = self._pending.popleft()
            if future.done():  # cancelled while queued (e.g. request timeout)
                continue
            self._send_request(worker, op, params, None, future)

    def _send_request(
        self,
        worker: _Worker,
        op: str,
        params: dict[str, Any],
        version: int | None,
        future: "asyncio.Future[Any]",
    ) -> None:
        rid = next(self._rids)
        worker.outstanding[rid] = (op, future)
        worker.requests_sent += 1
        try:
            worker.conn.send(("req", rid, op, params, version))
        except (OSError, ValueError):
            # Dead pipe: the reader thread will schedule _on_death too, but
            # fail this request immediately rather than waiting for it.
            worker.outstanding.pop(rid, None)
            if not future.done():
                future.set_exception(
                    RemoteEngineError(
                        "worker-crashed",
                        f"engine worker (pid {worker.pid}) is gone; "
                        "a replacement is being spawned",
                    )
                )

    def _send_internal(
        self, worker: _Worker, op: str, params: dict[str, Any], version: int | None
    ) -> None:
        """Send a pool-internal request (delta replay/coverage) to *worker*."""
        assert self._loop is not None
        future: "asyncio.Future[Any]" = self._loop.create_future()
        future.add_done_callback(_log_internal_failure)
        self._send_request(worker, op, params, version, future)

    # ------------------------------------------------------------------ #
    # Delta broadcast
    # ------------------------------------------------------------------ #
    async def _broadcast_delta(self, params: dict[str, Any]) -> dict[str, Any]:
        assert self._delta_lock is not None and self._loop is not None
        async with self._delta_lock:
            version = self._sigma_version + 1
            entries: list[tuple[_Worker, "asyncio.Future[Any]"]] = []
            for worker in list(self._workers):
                future = self._loop.create_future()
                self._send_request(worker, "apply-delta", params, version, future)
                worker.sent_version = version
                entries.append((worker, future))
            if not entries:  # pragma: no cover - pool can't be empty outside aclose
                raise RemoteEngineError("internal", "no engine workers alive")
            results = await asyncio.gather(
                *(future for _, future in entries), return_exceptions=True
            )
            designated = results[0]
            if isinstance(designated, BaseException):
                # The pool's Σ does not advance.  Any worker that *did* apply
                # the delta has diverged from the log and is replaced (its
                # replacement replays the log, which excludes this delta).
                for (worker, _), outcome in zip(entries, results):
                    if not isinstance(outcome, BaseException):
                        self._replace_worker(worker)
                if isinstance(designated, Exception):
                    raise designated
                raise RemoteEngineError(  # pragma: no cover - defensive
                    "worker-crashed", f"delta broadcast failed: {designated!r}"
                )
            self._sigma_version = version
            self._delta_log.append(dict(params))
            self.deltas_broadcast += 1
            applied = 0
            for (worker, _), outcome in zip(entries, results):
                if isinstance(outcome, BaseException):
                    # Deterministic engines should agree; a straggler that
                    # failed (or crashed and was respawned mid-broadcast) is
                    # brought back in line by a fresh process + full replay.
                    self._replace_worker(worker)
                else:
                    applied += 1
            self._ensure_delta_coverage()
            result = dict(designated)
            if isinstance(result.get("dependencies"), int):
                self.dependency_count = result["dependencies"]
            result["sigma_version"] = version
            result["workers_applied"] = applied
            return result

    def _ensure_delta_coverage(self) -> None:
        """Send any logged deltas a worker's pipe has not seen yet.

        Covers the race where a worker crashed during a broadcast: its
        replacement was spawned (and replayed the log) *before* the new
        delta was logged, so the replacement's pipe is one version behind.
        """
        for worker in self._workers:
            for version in range(worker.sent_version + 1, self._sigma_version + 1):
                self._send_internal(
                    worker, "apply-delta", self._delta_log[version - 1], version
                )
            worker.sent_version = self._sigma_version

    # ------------------------------------------------------------------ #
    # Stats
    # ------------------------------------------------------------------ #
    async def stats_snapshot(self, timeout: float = 2.0) -> dict[str, Any]:
        """Per-worker snapshots plus the merged cross-worker view.

        A worker that is mid-chase cannot answer its stats probe; after
        *timeout* it is reported as ``pending`` (with whatever the parent
        knows) instead of stalling the whole stats op behind a long chase.
        """
        assert self._loop is not None
        entries: list[tuple[_Worker, "asyncio.Future[Any]"]] = []
        for worker in list(self._workers):
            future = self._loop.create_future()
            self._send_request(worker, "stats", {}, None, future)
            entries.append((worker, future))
        if entries:
            await asyncio.wait({future for _, future in entries}, timeout=timeout)
        per_worker: list[dict[str, Any]] = []
        sections: list[dict[str, Any]] = []
        for worker, future in entries:
            if future.done() and not future.cancelled() and future.exception() is None:
                snapshot = dict(future.result())
                info = dict(snapshot.pop("worker", {}))
                info.update(slot=worker.slot, alive=True, busy=worker.busy)
                info["stats"] = snapshot
                per_worker.append(info)
                sections.append(snapshot)
            else:
                future.cancel()
                per_worker.append(
                    {
                        "slot": worker.slot,
                        "pid": worker.pid,
                        "alive": worker.process.is_alive(),
                        "busy": worker.busy,
                        "pending": True,
                    }
                )
        merged = merge_stats(sections)
        merged["workers"] = per_worker
        merged["pool"] = self.pool_stats()
        return merged

    def pool_stats(self) -> dict[str, Any]:
        stats: dict[str, Any] = {
            "workers": len(self._workers),
            "target_workers": self.workers_target,
            "sigma_version": self._sigma_version,
            "max_inflight": self.max_inflight,
            "inflight": self._inflight,
            "queued": len(self._pending),
            "crashes": self.crashes,
            "respawns": self.respawns,
            "overloaded_rejections": self.overloaded_rejections,
            "deltas_broadcast": self.deltas_broadcast,
            "requests_dispatched": self.requests_dispatched,
        }
        if self._shm is not None:
            stats["intern_snapshot"] = {
                "shm_name": self._shm.name,
                "terms": self._shm.count,
                "payload_bytes": self._shm.payload_bytes,
            }
        return stats

    # Test/diagnostic helpers -------------------------------------------- #
    def worker_pids(self) -> list[int]:
        """PIDs of the live engine workers (diagnostics and tests)."""
        return [worker.pid for worker in self._workers if worker.pid is not None]


def _retrieve_exception(future: "asyncio.Future[Any]") -> None:
    """Mark a shielded task's exception as retrieved (the awaiter may be gone)."""
    if not future.cancelled():
        future.exception()


def _log_internal_failure(future: "asyncio.Future[Any]") -> None:
    if future.cancelled():
        return
    exc = future.exception()
    if exc is not None:  # pragma: no cover - requires a diverging worker
        print(
            f"repro serve: pool-internal delta replay failed: "
            f"{type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
