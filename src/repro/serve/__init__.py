"""``repro.serve`` — the long-lived equivalence service.

Everything below :mod:`repro.session` answers one question at a time and
forgets; this package keeps the answers' *infrastructure* alive.  It wraps
the engine in an asyncio TCP daemon (:class:`ReproServer`, ``repro serve``)
speaking newline-delimited JSON (:mod:`~repro.serve.protocol`), dispatching
engine work to a backend (:mod:`~repro.serve.pool`): one serialized worker
thread over one process-wide :class:`~repro.session.Session` by default, or
— with ``--workers N`` — a pool of long-lived engine processes with crash
respawn, ``overloaded`` backpressure, and delta-coherent per-worker caches.
Terminal chase results persist to disk so restarts and respawned workers
start warm (:class:`ChaseStore`, keyed by a stable digest of the session's
chase-cache key), and the process's intern-table snapshot ships to worker
processes so they stop re-interning from scratch — once, through shared
memory (:class:`~repro.core.terms.SharedInternSnapshot`), with the pickled
:func:`~repro.core.terms.export_interned_terms` /
:func:`~repro.core.terms.pin_interned_terms` handoff as the fallback.

:class:`ReproClient` is the matching blocking client used by tests, the
``repro client`` subcommand, and the CI smoke job.
"""

from ..core.terms import (
    SharedInternSnapshot,
    export_interned_terms,
    pin_interned_terms,
)
from .client import ClientError, ReproClient, ServerError
from .pool import (
    ProcessEngineBackend,
    RemoteEngineError,
    ThreadEngineBackend,
    WorkerSpec,
)
from .protocol import (
    DEFAULT_TIMEOUT,
    ERROR_CODES,
    MAX_REQUEST_BYTES,
    OPS,
    ProtocolError,
)
from .server import ReproServer, ServerHandle
from .store import ChaseStore, StoreError, key_digest

__all__ = [
    "ChaseStore",
    "ClientError",
    "DEFAULT_TIMEOUT",
    "ERROR_CODES",
    "MAX_REQUEST_BYTES",
    "OPS",
    "ProcessEngineBackend",
    "ProtocolError",
    "RemoteEngineError",
    "ReproClient",
    "ReproServer",
    "ServerError",
    "ServerHandle",
    "SharedInternSnapshot",
    "StoreError",
    "ThreadEngineBackend",
    "WorkerSpec",
    "export_interned_terms",
    "key_digest",
    "pin_interned_terms",
]
