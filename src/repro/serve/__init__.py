"""``repro.serve`` — the long-lived equivalence service.

Everything below :mod:`repro.session` answers one question at a time and
forgets; this package keeps the answers' *infrastructure* alive.  It wraps
one process-wide :class:`~repro.session.Session` in an asyncio TCP daemon
(:class:`ReproServer`, ``repro serve``) speaking newline-delimited JSON
(:mod:`~repro.serve.protocol`), persists terminal chase results to disk so
restarts start warm (:class:`ChaseStore`, keyed by a stable digest of the
session's chase-cache key), and ships the process's intern-table snapshot to
worker processes so they stop re-interning from scratch
(:func:`~repro.core.terms.export_interned_terms` /
:func:`~repro.core.terms.pin_interned_terms`, re-exported here).

:class:`ReproClient` is the matching blocking client used by tests, the
``repro client`` subcommand, and the CI smoke job.
"""

from ..core.terms import export_interned_terms, pin_interned_terms
from .client import ClientError, ReproClient, ServerError
from .protocol import (
    DEFAULT_TIMEOUT,
    ERROR_CODES,
    MAX_REQUEST_BYTES,
    OPS,
    ProtocolError,
)
from .server import ReproServer, ServerHandle
from .store import ChaseStore, StoreError, key_digest

__all__ = [
    "ChaseStore",
    "ClientError",
    "DEFAULT_TIMEOUT",
    "ERROR_CODES",
    "MAX_REQUEST_BYTES",
    "OPS",
    "ProtocolError",
    "ReproClient",
    "ReproServer",
    "ServerError",
    "ServerHandle",
    "StoreError",
    "export_interned_terms",
    "key_digest",
    "pin_interned_terms",
]
