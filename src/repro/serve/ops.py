"""Engine-op execution shared by every serve backend.

The single-thread backend (engine work on the acceptor's executor thread)
and the process-pool backend (N engine worker processes) must run byte-for-
byte the same code per wire op: validate params, call the
:class:`~repro.session.Session`, shape a JSON-able result.  Keeping that
here — module-level functions taking the session explicitly — means a worker
process and the in-process executor cannot drift apart, and the error→code
mapping lives in exactly one place (:func:`error_payload_for`), used by the
acceptor's response path and by the worker loop alike.
"""

from __future__ import annotations

from typing import Any, Callable

from ..chase.incremental import ChaseDelta
from ..datalog.parser import parse_atoms, parse_dependencies, parse_query
from ..datalog.render import render_query
from ..exceptions import (
    ChaseNonTerminationError,
    DeltaRejectedError,
    ParseError,
    PrecheckFailedError,
    ReproError,
    UnknownSemanticsError,
)
from ..session import Session
from .protocol import ProtocolError

__all__ = ["ENGINE_OPS", "execute_op", "error_payload_for"]

#: The CPU-bound ops a backend executes on an engine (thread or worker
#: process); ``stats`` and ``health`` stay on the acceptor.
ENGINE_OPS = ("decide", "reformulate", "batch", "analyze", "apply-delta")


# --------------------------------------------------------------------------- #
# Param validation helpers.  Every rejection is a ProtocolError with a stable
# code, so both backends answer malformed params identically.
# --------------------------------------------------------------------------- #
def _param_str(params: dict[str, Any], name: str) -> str:
    value = params.get(name)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(
            "invalid-request", f"params.{name} must be a non-empty string"
        )
    return value


def _param_query(params: dict[str, Any], name: str) -> Any:
    try:
        return parse_query(_param_str(params, name))
    except ParseError as exc:
        raise ProtocolError("parse-error", f"params.{name}: {exc}") from exc


def _param_max_steps(params: dict[str, Any]) -> int | None:
    value = params.get("max_steps")
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ProtocolError(
            "invalid-request", "params.max_steps must be a positive integer"
        )
    return value


def _param_delta(params: dict[str, Any]) -> ChaseDelta:
    def atoms_of(name: str) -> tuple[Any, ...]:
        text = params.get(name)
        if text is None:
            return ()
        if not isinstance(text, str):
            raise ProtocolError("invalid-request", f"params.{name} must be a string")
        try:
            return tuple(parse_atoms(text))
        except ParseError as exc:
            raise ProtocolError("parse-error", f"params.{name}: {exc}") from exc

    def dependencies_of(name: str) -> tuple[Any, ...]:
        text = params.get(name)
        if text is None:
            return ()
        if not isinstance(text, str):
            raise ProtocolError("invalid-request", f"params.{name} must be a string")
        try:
            return tuple(parse_dependencies(text).dependencies)
        except ParseError as exc:
            raise ProtocolError("parse-error", f"params.{name}: {exc}") from exc

    set_valued = params.get("set_valued", [])
    if not isinstance(set_valued, list) or not all(
        isinstance(entry, str) for entry in set_valued
    ):
        raise ProtocolError(
            "invalid-request", "params.set_valued must be a list of strings"
        )
    return ChaseDelta(
        added_atoms=atoms_of("add_atoms"),
        added_dependencies=dependencies_of("add_dependencies"),
        removed_atoms=atoms_of("remove_atoms"),
        removed_dependencies=dependencies_of("remove_dependencies"),
        set_valued=frozenset(set_valued),
    )


# --------------------------------------------------------------------------- #
# Op implementations.  Each takes (session, validated params) and returns a
# JSON-able dict; failures raise and are mapped by error_payload_for.
# --------------------------------------------------------------------------- #
def _op_decide(session: Session, params: dict[str, Any]) -> dict[str, Any]:
    q1 = _param_query(params, "query")
    q2 = _param_query(params, "other")
    semantics = params.get("semantics")
    verdict = session.decide(q1, q2, semantics, _param_max_steps(params))
    return {
        "equivalent": bool(verdict),
        "semantics": str(verdict.semantics),
        "chased": [render_query(verdict.chased_left), render_query(verdict.chased_right)],
    }


def _op_reformulate(session: Session, params: dict[str, Any]) -> dict[str, Any]:
    query = _param_query(params, "query")
    semantics = params.get("semantics")
    minimal_only = bool(params.get("minimal_only", False))
    result = session.reformulate(
        query,
        semantics,
        _param_max_steps(params),
        check_sigma_minimality=minimal_only,
    )
    payload: dict[str, Any] = {
        "universal_plan": render_query(result.universal_plan),
        "reformulations": sorted(
            (render_query(q) for q in result.reformulations), key=len
        ),
    }
    if minimal_only:
        payload["minimal_reformulations"] = sorted(
            (render_query(q) for q in result.minimal_reformulations), key=len
        )
    return payload


def _op_batch(session: Session, params: dict[str, Any]) -> dict[str, Any]:
    pairs_raw = params.get("pairs")
    if not isinstance(pairs_raw, list) or not all(
        isinstance(pair, list) and len(pair) == 2 for pair in pairs_raw
    ):
        raise ProtocolError(
            "invalid-request",
            "params.pairs must be a list of [query, other] string pairs",
        )
    # Parse failures are per-item (the decide_many contract: one bad input
    # must not sink the batch), so parsing happens item by item here rather
    # than once up front.
    pairs: list[Any] = []
    parse_failures: dict[int, str] = {}
    for index, (left, right) in enumerate(pairs_raw):
        try:
            if not isinstance(left, str) or not isinstance(right, str):
                raise ParseError("pair entries must be strings")
            pairs.append((parse_query(left), parse_query(right)))
        except ParseError as exc:
            parse_failures[index] = str(exc)
            pairs.append(None)
    semantics = params.get("semantics")
    report = session.decide_many(
        (pair for pair in pairs if pair is not None),
        semantics=semantics,
        max_steps=_param_max_steps(params),
    )
    # Merge engine outcomes back into input order around the parse failures.
    outcomes = iter(report)
    items: list[dict[str, Any]] = []
    for index in range(len(pairs)):
        if index in parse_failures:
            items.append(
                {
                    "index": index,
                    "ok": False,
                    "error": {"code": "parse-error", "message": parse_failures[index]},
                }
            )
            continue
        item = next(outcomes)
        if item.ok:
            items.append({"index": index, "ok": True, "equivalent": bool(item.result)})
        else:
            items.append(
                {
                    "index": index,
                    "ok": False,
                    "error": {"code": "repro-error", "message": item.error or ""},
                }
            )
    ok_count = sum(1 for item in items if item["ok"])
    return {"items": items, "ok_count": ok_count, "error_count": len(items) - ok_count}


def _op_analyze(session: Session, params: dict[str, Any]) -> dict[str, Any]:
    """Static analysis of Σ (the session's, or one sent in params).

    ``params.dependencies`` (rule-notation text) analyzes a caller Σ instead
    of the session's; ``params.queries`` adds query lint; ``params.strict:
    true`` turns error-severity diagnostics into a ``precheck-failed`` error
    response carrying the full report.
    """
    from ..analysis.static import analyze

    if "dependencies" in params:
        text = _param_str(params, "dependencies")
        try:
            dependencies = parse_dependencies(text)
        except ParseError as exc:
            raise ProtocolError("parse-error", f"params.dependencies: {exc}") from exc
    else:
        dependencies = session.dependencies
    queries_raw = params.get("queries", [])
    if not isinstance(queries_raw, list) or not all(
        isinstance(entry, str) for entry in queries_raw
    ):
        raise ProtocolError(
            "invalid-request", "params.queries must be a list of strings"
        )
    try:
        queries = [parse_query(entry) for entry in queries_raw]
    except ParseError as exc:
        raise ProtocolError("parse-error", f"params.queries: {exc}") from exc
    report = analyze(dependencies, queries=queries)
    if params.get("strict") and not report.ok:
        raise PrecheckFailedError(
            "; ".join(d.render_line() for d in report.errors),
            report=report,
        )
    payload = report.as_dict()
    payload["ok"] = report.ok
    payload["summary"] = report.summary()
    return payload


def _op_apply_delta(session: Session, params: dict[str, Any]) -> dict[str, Any]:
    """Apply an instance/Σ delta and chase the new state incrementally.

    ``params.query`` names the base query; ``params.add_atoms`` /
    ``params.remove_atoms`` (conjunction text) edit its body, and
    ``params.add_dependencies`` / ``params.remove_dependencies``
    (rule-notation text, one dependency per line) edit the *session's* Σ.
    ``params.set_valued`` lists additional set-valued markers.  The session
    resumes from a stored checkpoint when it can; a structurally invalid
    delta is answered with a ``delta-rejected`` error carrying the stable
    rejection ``reason``.
    """
    query = _param_query(params, "query")
    delta = _param_delta(params)
    semantics = params.get("semantics")
    outcome = session.apply_delta(query, delta, semantics, _param_max_steps(params))
    checkpoint = outcome.checkpoint
    return {
        "resumed": outcome.resumed,
        "fallback_reason": outcome.fallback_reason,
        "replayed_steps": outcome.replayed_steps,
        "new_steps": outcome.new_steps,
        "steps_saved": outcome.steps_saved,
        "query": render_query(
            checkpoint.base_query if checkpoint is not None else query
        ),
        "chased": render_query(outcome.result.query),
        "dependencies": len(session.dependencies),
    }


_OP_HANDLERS: dict[str, Callable[[Session, dict[str, Any]], dict[str, Any]]] = {
    "decide": _op_decide,
    "reformulate": _op_reformulate,
    "batch": _op_batch,
    "analyze": _op_analyze,
    "apply-delta": _op_apply_delta,
}


def execute_op(session: Session, op: str, params: dict[str, Any]) -> dict[str, Any]:
    """Run one engine op against *session*; raises on any failure.

    The caller maps exceptions to structured wire errors with
    :func:`error_payload_for`.
    """
    try:
        handler = _OP_HANDLERS[op]
    except KeyError:
        raise ProtocolError("unknown-op", f"not an engine op: {op!r}") from None
    return handler(session, params)


def error_payload_for(exc: BaseException) -> tuple[str, str, dict[str, Any]] | None:
    """Map an engine-op exception to ``(code, message, detail)``, or ``None``.

    ``None`` means the exception is unanticipated: the caller logs it and
    answers ``internal``.  This mapping is the single source of truth for
    both backends — the acceptor's response path and the worker-process loop
    serialize through it, so a client sees the same structured error no
    matter which backend served the request.
    """
    if isinstance(exc, ProtocolError):
        return (exc.code, str(exc), {})
    if isinstance(exc, ChaseNonTerminationError):
        return ("chase-failed", str(exc), {"steps_taken": exc.steps_taken})
    if isinstance(exc, DeltaRejectedError):
        return ("delta-rejected", str(exc), {"reason": exc.reason})
    if isinstance(exc, PrecheckFailedError):
        detail: dict[str, Any] = {}
        report = exc.report
        if report is not None and hasattr(report, "as_dict"):
            detail["report"] = report.as_dict()
        return ("precheck-failed", str(exc), detail)
    if isinstance(exc, UnknownSemanticsError):
        return ("unknown-semantics", str(exc), {})
    if isinstance(exc, ParseError):
        return ("parse-error", str(exc), {})
    if isinstance(exc, ReproError):
        # Any other engine-level failure: structured, typed, non-fatal.
        return ("internal", f"{type(exc).__name__}: {exc}", {})
    return None
