"""Disk-backed chase-result store: restarts start warm.

The in-memory :class:`~repro.session.cache.ChaseCache` dies with its
process, so every daemon restart used to pay the full cold-chase cost for
each distinct (query, Σ, semantics, budget) all over again.  The
:class:`ChaseStore` persists terminal chase results to an append-only JSONL
file keyed by a stable digest of the session's :class:`~repro.session.cache.
ChaseKey`, and a :class:`~repro.session.Session` constructed with
``store=ChaseStore(path)`` consults it on every in-memory miss and
writes through every cold chase.

Design notes:

* **Keys are digests, not pickles.**  A ``ChaseKey`` already canonicalizes
  everything that determines a chase result — the query's structural key
  (alpha-variants collide on purpose), Σ's name-insensitive fingerprint, the
  strategy's name + cache token, and the step budget.  The store walks that
  structure and hashes a canonical JSON encoding of it (terms tagged by
  kind, sets sorted), so the digest is stable across processes, Python
  versions, and hash-seed randomization — none of which is true of
  ``hash()``.
* **Values are re-parseable text, not pickles.**  The stored value is the
  terminal query in the library's own rule notation (plus the semantics
  name, termination flag, and step count).  Loading re-parses and therefore
  re-interns in the loading process; nothing in the file format depends on
  interpreter internals, and a hostile store file can at worst fail to
  parse — it cannot execute anything.
* **Corruption degrades to cold, never to wrong.**  Each line is
  self-contained; unreadable or version-mismatched lines are counted and
  skipped at load, and a completely unparseable file simply yields an empty
  store.  A digest collision would require breaking SHA-256.
* **Restored results carry no step trace or profile** (``steps=[]``,
  ``profile=None``): the decision procedures consume only the terminal
  ``.query``, and re-deriving the trace would be exactly the chase the store
  exists to skip.  ``store_hit`` on the record distinguishes them.
"""

from __future__ import annotations

import hashlib
import json
import os
from typing import IO, Any, Iterable

from ..chase.set_chase import ChaseResult
from ..core.atoms import Atom, EqualityAtom
from ..core.terms import Constant, Variable
from ..datalog.parser import parse_query
from ..datalog.render import render_query
from ..exceptions import ReproError
from ..semantics import Semantics
from ..session.cache import ChaseKey

#: Bumped when the digest encoding or record layout changes incompatibly;
#: records with another version are skipped at load (a cold start, not an
#: error).
STORE_VERSION = 1


class StoreError(ReproError):
    """The chase store could not be opened or written."""


# --------------------------------------------------------------------------- #
# Canonical key encoding
# --------------------------------------------------------------------------- #
def _encode(node: Any) -> Any:
    """Encode one node of a ChaseKey part tree as canonical JSON data.

    Every composite is tagged by kind so distinct structures can never
    collide textually (a Variable named "x" vs a Constant "x", a tuple vs a
    frozenset).  Frozensets are sorted by their encoded JSON so the encoding
    is order-insensitive exactly where the key is.
    """
    if node is None or isinstance(node, (bool, int, float, str)):
        return node
    if isinstance(node, Variable):
        return ["V", node.name]
    if isinstance(node, Constant):
        return ["C", _encode(node.value)]
    if isinstance(node, Atom):
        return ["A", node.predicate, [_encode(t) for t in node.terms]]
    if isinstance(node, EqualityAtom):
        return ["E", _encode(node.left), _encode(node.right)]
    if isinstance(node, tuple):
        return ["T", [_encode(item) for item in node]]
    if isinstance(node, (frozenset, set)):
        encoded = [_encode(item) for item in node]
        encoded.sort(key=lambda item: json.dumps(item, sort_keys=True))
        return ["S", encoded]
    raise StoreError(
        f"cannot build a stable store digest over {type(node).__name__!r}; "
        "extend repro.serve.store._encode for new key part types"
    )


def key_digest(key: ChaseKey) -> str:
    """A stable hex digest of a chase-cache key, usable across processes."""
    canonical = json.dumps(_encode(key.parts), separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


# --------------------------------------------------------------------------- #
# Result (de)serialization
# --------------------------------------------------------------------------- #
def _result_record(digest: str, result: ChaseResult) -> dict[str, Any]:
    semantics = result.semantics
    name = semantics.value if isinstance(semantics, Semantics) else str(semantics)
    return {
        "v": STORE_VERSION,
        "k": digest,
        "query": render_query(result.query),
        "semantics": name,
        "terminated": bool(result.terminated),
        "steps": result.step_count,
    }


def _result_from_record(record: dict[str, Any]) -> ChaseResult:
    semantics: Any
    try:
        semantics = Semantics.from_name(record["semantics"])
    except (ReproError, ValueError, KeyError):
        semantics = record.get("semantics", "")
    return ChaseResult(
        query=parse_query(record["query"]),
        steps=[],
        semantics=semantics,
        terminated=bool(record.get("terminated", True)),
        profile=None,
    )


# --------------------------------------------------------------------------- #
class ChaseStore:
    """An append-only JSONL store of terminal chase results.

    The whole file is loaded into memory at open (records are tiny — one
    rendered query each — and lookups must be as cheap as the in-memory
    cache they back); writes append one line and flush, so a crash loses at
    most the line being written and a truncated tail is skipped on the next
    load.  Duplicate keys are legal — the *last* record for a digest wins at
    load, so rewriting an entry is just appending it again.

    Instances are not thread-safe by themselves; the Session serializes
    access (the serve daemon funnels every chase through one Session).
    """

    def __init__(self, path: str | os.PathLike[str]):
        self.path = os.fspath(path)
        self.hits = 0
        self.misses = 0
        self.writes = 0
        self.corrupt_entries = 0
        self._records: dict[str, dict[str, Any]] = {}
        self._load()
        try:
            self._file: IO[str] | None = open(self.path, "a", encoding="utf-8")
        except OSError as exc:
            raise StoreError(f"cannot open chase store {self.path!r}: {exc}") from exc

    # ------------------------------------------------------------------ #
    def _load(self) -> None:
        try:
            with open(self.path, "r", encoding="utf-8") as handle:
                lines: Iterable[str] = handle.readlines()
        except FileNotFoundError:
            return
        except OSError as exc:
            raise StoreError(f"cannot read chase store {self.path!r}: {exc}") from exc
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                if (
                    not isinstance(record, dict)
                    or record.get("v") != STORE_VERSION
                    or not isinstance(record.get("k"), str)
                    or not isinstance(record.get("query"), str)
                ):
                    raise ValueError("malformed store record")
            except ValueError:
                # One bad line (partial write, hand edit, version skew) costs
                # one cold chase, not the store.
                self.corrupt_entries += 1
                continue
            self._records[record["k"]] = record

    # ------------------------------------------------------------------ #
    def get(self, key: ChaseKey) -> ChaseResult | None:
        """The stored terminal result for *key*, re-parsed, or ``None``.

        A record that fails to re-parse (e.g. written by a newer grammar) is
        dropped and counted corrupt — the caller falls back to a cold chase.
        """
        record = self._records.get(key_digest(key))
        if record is None:
            self.misses += 1
            return None
        try:
            result = _result_from_record(record)
        except ReproError:
            self.corrupt_entries += 1
            self.misses += 1
            self._records.pop(record["k"], None)
            return None
        self.hits += 1
        return result

    def put(self, key: ChaseKey, result: ChaseResult) -> None:
        """Persist *result* under *key* (append + flush; last record wins)."""
        if self._file is None:
            raise StoreError(f"chase store {self.path!r} is closed")
        record = _result_record(key_digest(key), result)
        self._records[record["k"]] = record
        self._file.write(json.dumps(record, separators=(",", ":")) + "\n")
        self._file.flush()
        self.writes += 1

    def close(self) -> None:
        """Flush and release the file handle (idempotent)."""
        if self._file is not None:
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------ #
    def stats(self) -> dict[str, int | str]:
        """JSON-able counters for the ``stats`` endpoint and tests."""
        return {
            "path": self.path,
            "entries": len(self._records),
            "hits": self.hits,
            "misses": self.misses,
            "writes": self.writes,
            "corrupt_entries": self.corrupt_entries,
        }

    def __len__(self) -> int:
        return len(self._records)

    def __enter__(self) -> "ChaseStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaseStore({self.path!r}, entries={len(self._records)})"
