"""Wire protocol of the ``repro serve`` daemon.

The daemon speaks newline-delimited JSON over a plain TCP stream: each
request is one JSON object on one line, each response is one JSON object on
one line, and a connection carries any number of request/response exchanges
in order.  The format is deliberately primitive — any language with sockets
and a JSON parser is a client; no HTTP stack, no framing beyond ``\\n``.

Request shape::

    {"op": "decide", "id": 7, "params": {"query": "Q1(X) :- ...",
                                         "other": "Q2(X) :- ...",
                                         "semantics": "bag"}}

``id`` is optional and opaque; it is echoed verbatim on the response so
pipelined clients can match answers to questions.  ``params`` may be omitted
for parameterless operations (``stats``, ``health``).

Response shape::

    {"id": 7, "ok": true,  "result": {...}}
    {"id": 7, "ok": false, "error": {"code": "parse-error", "message": "..."}}

Every failure the server can anticipate is returned as a *structured error
response* with a stable ``code`` from :data:`ERROR_CODES` — a malformed
request, an unknown semantics, a chase that exhausts its budget — and never
terminates the daemon.  The only errors that end the *connection* (not the
server) are transport-level: an oversized request line, whose end the server
cannot even locate, and a closed socket.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from ..exceptions import ReproError

#: Operations the daemon dispatches on.
OPS = ("decide", "reformulate", "batch", "analyze", "apply-delta", "stats", "health")

#: Default cap on one request line (bytes, newline included).  Generous for
#: query text, small enough that a misbehaving client cannot balloon server
#: memory; ``repro serve --max-request-bytes`` overrides it.
MAX_REQUEST_BYTES = 1 << 20

#: Default per-request wall-clock budget (seconds); ``--timeout`` overrides.
DEFAULT_TIMEOUT = 30.0

#: Stable error codes carried by ``error.code``.  Clients dispatch on these,
#: so they are part of the protocol: add freely, never rename.
ERROR_CODES = (
    "parse-error",  # unparseable JSON, or unparseable query/dependency text
    "invalid-request",  # structurally wrong request (missing op, bad params)
    "unknown-op",  # op not in OPS
    "unknown-semantics",  # semantics name the session cannot dispatch on
    "chase-failed",  # the chase exhausted its step budget
    "delta-rejected",  # an apply-delta edit is structurally invalid (carries 'reason')
    "precheck-failed",  # the static analyzer refused Σ (strict analyze/precheck)
    "timeout",  # the per-request wall-clock budget ran out
    "request-too-large",  # request line over the size cap (connection closes)
    "overloaded",  # the engine pool's in-flight queue is full; retry later
    "worker-crashed",  # an engine worker process died mid-request (it is respawned)
    "internal",  # anything else; the server stays up
)


class ProtocolError(ReproError):
    """A request the server rejects with a structured error response."""

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:  # pragma: no cover - developer error
            raise ValueError(f"unknown protocol error code {code!r}")
        super().__init__(message)
        self.code = code


def encode_line(payload: Mapping[str, Any]) -> bytes:
    """Serialize one protocol object to its wire form (JSON + newline)."""
    return json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"


def ok_response(request_id: Any, result: Mapping[str, Any]) -> dict[str, Any]:
    """A success response echoing *request_id*."""
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_response(
    request_id: Any, code: str, message: str, **detail: Any
) -> dict[str, Any]:
    """A structured error response; ``detail`` keys ride along inside ``error``."""
    if code not in ERROR_CODES:  # pragma: no cover - developer error
        raise ValueError(f"unknown protocol error code {code!r}")
    error: dict[str, Any] = {"code": code, "message": message}
    error.update(detail)
    return {"id": request_id, "ok": False, "error": error}


def parse_request(line: bytes) -> tuple[Any, str, dict[str, Any]]:
    """Decode one request line into ``(id, op, params)``.

    Raises :class:`ProtocolError` — never a bare ``json`` or ``Type`` error —
    so the caller can turn every malformed request into a structured
    response.  The request ``id`` is recovered on a best-effort basis even
    from otherwise-invalid requests, so the error response still correlates.
    """
    try:
        payload = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError("parse-error", f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            "invalid-request",
            f"request must be a JSON object, got {type(payload).__name__}",
        )
    request_id = payload.get("id")
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise _with_id(
            ProtocolError("invalid-request", "request is missing a string 'op'"),
            request_id,
        )
    if op not in OPS:
        raise _with_id(
            ProtocolError(
                "unknown-op", f"unknown op {op!r}; supported: {', '.join(OPS)}"
            ),
            request_id,
        )
    params = payload.get("params", {})
    if params is None:
        params = {}
    if not isinstance(params, dict):
        raise _with_id(
            ProtocolError(
                "invalid-request",
                f"'params' must be a JSON object, got {type(params).__name__}",
            ),
            request_id,
        )
    return request_id, op, params


def _with_id(error: ProtocolError, request_id: Any) -> ProtocolError:
    """Attach the (best-effort recovered) request id to a protocol error."""
    error.request_id = request_id  # type: ignore[attr-defined]
    return error


def request_id_of(error: ProtocolError) -> Any:
    """The request id recovered while parsing, if any (else ``None``)."""
    return getattr(error, "request_id", None)
