"""The ``repro serve`` daemon: one acceptor, one-or-N engine workers.

Architecture (see :mod:`repro.serve.protocol` for the wire format):

* an **asyncio TCP acceptor** accepts connections and frames
  newline-delimited JSON requests; the event loop only ever parses,
  validates, routes, and enforces limits — it never chases;
* every CPU-bound operation (decide, reformulate, batch, analyze,
  apply-delta) is dispatched to an **engine backend**
  (:mod:`repro.serve.pool`):

  - the default single-thread backend serializes engine work through the
    one process-wide :class:`~repro.session.Session` (shared hot caches, no
    locks);
  - with ``--workers N`` a **process pool** backend fans requests out to N
    long-lived engine processes over pipes — bounded in-flight queue with
    structured ``overloaded`` backpressure, crash detection + respawn
    (``worker-crashed``), shared-memory intern snapshots, and monotonically
    versioned ``apply-delta`` broadcasts keeping per-worker caches
    coherent;

* a **per-request timeout** (:func:`asyncio.wait_for`) turns a runaway
  request into a structured ``timeout`` error for its client.  An engine
  thread/process cannot be preempted mid-chase, so the chase step budget
  (``--max-steps``) is the real bound on a single chase;
* an optional **disk-backed chase store** (:mod:`repro.serve.store`) makes
  restarts — and freshly (re)spawned pool workers — start warm.

Nothing a client sends can kill the daemon: every anticipated failure is
mapped to a structured error response, and unanticipated ones are answered
with ``internal`` and logged to stderr.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time
from typing import Any

from ..session import Session
from ..session.engine import ChaseResultStore
from .ops import error_payload_for, execute_op  # noqa: F401  (execute_op re-exported)
from .pool import (
    ProcessEngineBackend,
    RemoteEngineError,
    ThreadEngineBackend,
    WorkerSpec,
    require_builtin_semantics,
)
from .protocol import (
    DEFAULT_TIMEOUT,
    MAX_REQUEST_BYTES,
    ProtocolError,
    encode_line,
    error_response,
    ok_response,
    parse_request,
    request_id_of,
)
from .store import ChaseStore

__all__ = ["ReproServer", "ServerHandle"]


class ReproServer:
    """An asyncio NDJSON server over one-or-N engine workers.

    With ``workers=1`` (default) the server owns the Session directly — it
    may be handed one explicitly (the test fixtures do, to compare against
    direct calls) or built from a dependency set by the CLI.  With
    ``workers>=2`` the Session provides the *configuration* (Σ, default
    semantics, budgets, precheck) and each engine process builds its own
    from that spec; the acceptor-side Session itself never chases.
    """

    def __init__(
        self,
        session: Session,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        store: ChaseStore | None = None,
        workers: int = 1,
        max_inflight: int | None = None,
    ):
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.session = session
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_request_bytes = max_request_bytes
        self.workers = workers
        self.started = time.monotonic()
        self.requests_served = 0
        self.requests_failed = 0
        self.connections_accepted = 0
        if workers == 1:
            if store is not None:
                session.set_store(store)
            self.backend: ThreadEngineBackend | ProcessEngineBackend = (
                ThreadEngineBackend(session)
            )
        else:
            # The engine processes rebuild their Sessions from the spec, so
            # only built-in semantics can serve (same contract as
            # decide_many concurrency).  The store is deliberately NOT
            # attached to the acceptor session: the parent never chases —
            # each worker opens its own handle on the store path and warms
            # from disk at spawn and respawn.
            require_builtin_semantics(session)
            store_obj = store if store is not None else session.store
            store_path = getattr(store_obj, "path", None)
            sigma = session.dependencies
            self.backend = ProcessEngineBackend(
                WorkerSpec(
                    dependencies=sigma,
                    max_steps=session.max_steps,
                    default_semantics=session.default_semantics,
                    precheck=session.precheck if session.precheck != "off" else None,
                    store_path=str(store_path) if store_path is not None else None,
                    cache_size=getattr(session.cache, "maxsize", 4096),
                ),
                workers,
                max_inflight=max_inflight,
            )
        # Whatever store the server is responsible for (passed here, or
        # attached to the session before construction); the server owns its
        # shutdown.
        self.store: "ChaseResultStore | None" = (
            store if store is not None else session.store
        )
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------ #
    # Acceptor-local handlers (counter reads only — answerable even while
    # every engine worker is mid-chase).
    # ------------------------------------------------------------------ #
    async def _handle_stats(self, params: dict[str, Any]) -> dict[str, Any]:
        stats = await self.backend.stats_snapshot()
        stats["server"] = {
            "uptime_s": time.monotonic() - self.started,
            "requests_served": self.requests_served,
            "requests_failed": self.requests_failed,
            "connections_accepted": self.connections_accepted,
            "backend": self.backend.kind,
            "workers": self.workers,
        }
        return stats

    def _handle_health(self, params: dict[str, Any]) -> dict[str, Any]:
        return {
            "status": "ok",
            "semantics": list(self.session.semantics_names()),
            "dependencies": self.backend.dependency_count,
            "store": self.store is not None,
            "backend": self.backend.kind,
            "workers": self.workers,
            "uptime_s": time.monotonic() - self.started,
        }

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        if op == "health":
            return self._handle_health(params)
        if op == "stats":
            return await self._handle_stats(params)
        return await asyncio.wait_for(
            self.backend.dispatch(op, params),
            timeout=self.timeout if self.timeout and self.timeout > 0 else None,
        )

    async def _respond(self, request_id: Any, op: str, params: dict[str, Any]) -> dict[str, Any]:
        """Run one request to a response dict, mapping every failure to a code.

        The exception→code mapping itself lives in
        :func:`repro.serve.ops.error_payload_for`, shared with the worker
        loop; this method only adds the transport-level cases (timeout,
        worker errors arriving as :class:`RemoteEngineError`) on top.
        """
        try:
            result = await self._dispatch(op, params)
            return ok_response(request_id, result)
        except ProtocolError as exc:
            return error_response(request_id, exc.code, str(exc))
        except RemoteEngineError as exc:
            # A structured error produced in (or about) an engine worker:
            # already carries its protocol code and detail.
            return error_response(request_id, exc.code, str(exc), **exc.detail)
        except asyncio.TimeoutError:
            return error_response(
                request_id,
                "timeout",
                f"request exceeded the {self.timeout:g}s budget; "
                "the engine keeps running it to completion",
            )
        except Exception as exc:  # noqa: BLE001 - the server must survive anything
            payload = error_payload_for(exc)
            if payload is None:
                print(
                    f"repro serve: internal error on op {op!r}: "
                    f"{type(exc).__name__}: {exc}",
                    file=sys.stderr,
                )
                return error_response(
                    request_id, "internal", f"{type(exc).__name__}: {exc}"
                )
            code, message, detail = payload
            return error_response(request_id, code, message, **detail)

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The request line exceeds the frame limit: its end — and
                    # with it the next frame boundary — cannot be located, so
                    # answer once and close this connection (only this one).
                    writer.write(
                        encode_line(
                            error_response(
                                None,
                                "request-too-large",
                                f"request exceeds {self.max_request_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    self.requests_failed += 1
                    break
                if not line:
                    break  # client closed
                if not line.strip():
                    continue  # bare newline keep-alives are legal
                try:
                    request_id, op, params = parse_request(line)
                except ProtocolError as exc:
                    response = error_response(request_id_of(exc), exc.code, str(exc))
                else:
                    response = await self._respond(request_id, op, params)
                if response.get("ok"):
                    self.requests_served += 1
                else:
                    self.requests_failed += 1
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection mid-read.  Returning
            # (rather than re-raising) lets the task finish cleanly, which
            # keeps asyncio's stream callbacks from logging spurious
            # "exception in callback" noise during teardown.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):  # pragma: no cover - teardown races
                pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Start the engine backend, bind, and accept (resolves :attr:`port`)."""
        await self.backend.start()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=self.max_request_bytes,
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled; closes the backend and store on the way out."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, shut the engine backend down, close the store."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.backend.aclose()
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------ #
    def start_in_thread(self) -> "ServerHandle":
        """Run this server on a dedicated event-loop thread (fixtures, tools).

        Returns a :class:`ServerHandle` whose :attr:`~ServerHandle.port` is
        already resolved; the caller stops the server with
        :meth:`ServerHandle.stop`.  This is the in-process embedding used by
        the test suite and the throughput benchmark — same code path as the
        CLI daemon, minus the process boundary.
        """
        started = threading.Event()
        startup_error: list[BaseException] = []
        loop_holder: list[asyncio.AbstractEventLoop] = []

        async def _run() -> None:
            try:
                await self.start()
            except BaseException as exc:  # pragma: no cover - bind failures
                startup_error.append(exc)
                started.set()
                return
            loop_holder.append(asyncio.get_running_loop())
            started.set()
            await self.serve_forever()

        def _thread_main() -> None:
            asyncio.run(_run())

        thread = threading.Thread(
            target=_thread_main, name="repro-serve", daemon=True
        )
        thread.start()
        started.wait()
        if startup_error:  # pragma: no cover - bind failures
            raise startup_error[0]
        return ServerHandle(self, thread, loop_holder[0])


class ServerHandle:
    """A running in-thread server: its port, and the means to stop it."""

    def __init__(
        self,
        server: ReproServer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ):
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def stop(self, timeout: float = 10.0) -> None:
        """Cancel the serve loop and join the thread (idempotent)."""
        if self._thread.is_alive():
            def _cancel_all() -> None:
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()

            try:
                self._loop.call_soon_threadsafe(_cancel_all)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
