"""The ``repro serve`` daemon: one warm Session, many clients.

Architecture (see :mod:`repro.serve.protocol` for the wire format):

* an **asyncio TCP server** accepts connections and frames newline-delimited
  JSON requests; the event loop only ever parses, validates, and routes —
  it never chases;
* every CPU-bound operation (decide, reformulate, batch) is pushed onto a
  **single-threaded executor**, so the event loop stays responsive while a
  chase runs, and — because the executor has exactly one worker — all engine
  work is serialized through the one process-wide
  :class:`~repro.session.Session` without the Session needing locks.
  Concurrent clients interleave at request granularity; what they share is
  precisely the point: the hot chase cache, plan cache, and intern tables;
* a **per-request timeout** (:func:`asyncio.wait_for`) turns a runaway
  request into a structured ``timeout`` error for its client.  The worker
  thread itself cannot be killed mid-chase (Python offers no safe
  preemption), so the *next* request may wait behind the stragglers — the
  chase step budget (``--max-steps``) is the real bound on a single chase;
* an optional **disk-backed chase store** (:mod:`repro.serve.store`)
  attached to the Session makes restarts start warm.

Nothing a client sends can kill the daemon: every anticipated failure is
mapped to a structured error response, and unanticipated ones are answered
with ``internal`` and logged to stderr.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import sys
import threading
import time
from typing import Any, Callable

from ..chase.incremental import ChaseDelta
from ..datalog.parser import parse_atoms, parse_dependencies, parse_query
from ..datalog.render import render_query
from ..exceptions import (
    ChaseNonTerminationError,
    DeltaRejectedError,
    ParseError,
    PrecheckFailedError,
    ReproError,
    UnknownSemanticsError,
)
from ..session import Session
from ..session.engine import ChaseResultStore
from .protocol import (
    DEFAULT_TIMEOUT,
    MAX_REQUEST_BYTES,
    ProtocolError,
    encode_line,
    error_response,
    ok_response,
    parse_request,
    request_id_of,
)
from .store import ChaseStore

__all__ = ["ReproServer", "ServerHandle"]


def _param_str(params: dict[str, Any], name: str) -> str:
    value = params.get(name)
    if not isinstance(value, str) or not value.strip():
        raise ProtocolError(
            "invalid-request", f"params.{name} must be a non-empty string"
        )
    return value


def _param_query(params: dict[str, Any], name: str):
    try:
        return parse_query(_param_str(params, name))
    except ParseError as exc:
        raise ProtocolError("parse-error", f"params.{name}: {exc}") from exc


def _param_max_steps(params: dict[str, Any]) -> int | None:
    value = params.get("max_steps")
    if value is None:
        return None
    if not isinstance(value, int) or isinstance(value, bool) or value < 1:
        raise ProtocolError(
            "invalid-request", "params.max_steps must be a positive integer"
        )
    return value


class ReproServer:
    """An asyncio NDJSON server over one process-wide :class:`Session`.

    The server owns the Session (and therefore the warm caches); it may be
    handed one explicitly — the test fixtures do, to compare against direct
    calls — or built from a dependency set by the CLI.
    """

    def __init__(
        self,
        session: Session,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        timeout: float = DEFAULT_TIMEOUT,
        max_request_bytes: int = MAX_REQUEST_BYTES,
        store: ChaseStore | None = None,
    ):
        if store is not None:
            session.set_store(store)
        self.session = session
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_request_bytes = max_request_bytes
        # Whatever store the session ended up with (passed here, or attached
        # to the session before construction); the server owns its shutdown.
        self.store: "ChaseResultStore | None" = session.store
        self.started = time.monotonic()
        self.requests_served = 0
        self.requests_failed = 0
        self.connections_accepted = 0
        # One worker: engine work is serialized, so the shared Session (and
        # the process-wide intern tables underneath it) needs no locking.
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-engine"
        )
        self._server: asyncio.AbstractServer | None = None

    # ------------------------------------------------------------------ #
    # Handlers.  Each takes validated params and returns a JSON-able dict;
    # CPU-bound ones run on the executor.
    # ------------------------------------------------------------------ #
    def _handle_decide(self, params: dict[str, Any]) -> dict[str, Any]:
        q1 = _param_query(params, "query")
        q2 = _param_query(params, "other")
        semantics = params.get("semantics")
        verdict = self.session.decide(q1, q2, semantics, _param_max_steps(params))
        return {
            "equivalent": bool(verdict),
            "semantics": str(verdict.semantics),
            "chased": [render_query(verdict.chased_left), render_query(verdict.chased_right)],
        }

    def _handle_reformulate(self, params: dict[str, Any]) -> dict[str, Any]:
        query = _param_query(params, "query")
        semantics = params.get("semantics")
        minimal_only = bool(params.get("minimal_only", False))
        result = self.session.reformulate(
            query,
            semantics,
            _param_max_steps(params),
            check_sigma_minimality=minimal_only,
        )
        payload: dict[str, Any] = {
            "universal_plan": render_query(result.universal_plan),
            "reformulations": sorted(
                (render_query(q) for q in result.reformulations), key=len
            ),
        }
        if minimal_only:
            payload["minimal_reformulations"] = sorted(
                (render_query(q) for q in result.minimal_reformulations), key=len
            )
        return payload

    def _handle_batch(self, params: dict[str, Any]) -> dict[str, Any]:
        pairs_raw = params.get("pairs")
        if not isinstance(pairs_raw, list) or not all(
            isinstance(pair, list) and len(pair) == 2 for pair in pairs_raw
        ):
            raise ProtocolError(
                "invalid-request",
                "params.pairs must be a list of [query, other] string pairs",
            )
        # Parse failures are per-item (the decide_many contract: one bad
        # input must not sink the batch), so parsing happens inside the
        # pipeline via pre-captured items rather than up front.
        pairs: list[Any] = []
        parse_failures: dict[int, str] = {}
        for index, (left, right) in enumerate(pairs_raw):
            try:
                if not isinstance(left, str) or not isinstance(right, str):
                    raise ParseError("pair entries must be strings")
                pairs.append((parse_query(left), parse_query(right)))
            except ParseError as exc:
                parse_failures[index] = str(exc)
                pairs.append(None)
        semantics = params.get("semantics")
        report = self.session.decide_many(
            (pair for pair in pairs if pair is not None),
            semantics=semantics,
            max_steps=_param_max_steps(params),
        )
        # Merge engine outcomes back into input order around the parse
        # failures.
        outcomes = iter(report)
        items: list[dict[str, Any]] = []
        for index in range(len(pairs)):
            if index in parse_failures:
                items.append(
                    {
                        "index": index,
                        "ok": False,
                        "error": {"code": "parse-error", "message": parse_failures[index]},
                    }
                )
                continue
            item = next(outcomes)
            if item.ok:
                items.append(
                    {"index": index, "ok": True, "equivalent": bool(item.result)}
                )
            else:
                items.append(
                    {
                        "index": index,
                        "ok": False,
                        "error": {"code": "repro-error", "message": item.error or ""},
                    }
                )
        ok_count = sum(1 for item in items if item["ok"])
        return {"items": items, "ok_count": ok_count, "error_count": len(items) - ok_count}

    def _handle_analyze(self, params: dict[str, Any]) -> dict[str, Any]:
        """Static analysis of Σ (the session's, or one sent in params).

        ``params.dependencies`` (rule-notation text) analyzes a caller Σ
        instead of the session's; ``params.queries`` adds query lint;
        ``params.strict: true`` turns error-severity diagnostics into a
        ``precheck-failed`` error response carrying the full report.
        """
        from ..analysis.static import analyze
        from ..datalog.parser import parse_dependencies

        if "dependencies" in params:
            text = _param_str(params, "dependencies")
            try:
                dependencies = parse_dependencies(text)
            except ParseError as exc:
                raise ProtocolError(
                    "parse-error", f"params.dependencies: {exc}"
                ) from exc
        else:
            dependencies = self.session.dependencies
        queries_raw = params.get("queries", [])
        if not isinstance(queries_raw, list) or not all(
            isinstance(entry, str) for entry in queries_raw
        ):
            raise ProtocolError(
                "invalid-request", "params.queries must be a list of strings"
            )
        try:
            queries = [parse_query(entry) for entry in queries_raw]
        except ParseError as exc:
            raise ProtocolError("parse-error", f"params.queries: {exc}") from exc
        report = analyze(dependencies, queries=queries)
        if params.get("strict") and not report.ok:
            raise PrecheckFailedError(
                "; ".join(d.render_line() for d in report.errors),
                report=report,
            )
        payload = report.as_dict()
        payload["ok"] = report.ok
        payload["summary"] = report.summary()
        return payload

    def _handle_apply_delta(self, params: dict[str, Any]) -> dict[str, Any]:
        """Apply an instance/Σ delta and chase the new state incrementally.

        ``params.query`` names the base query; ``params.add_atoms`` /
        ``params.remove_atoms`` (conjunction text) edit its body, and
        ``params.add_dependencies`` / ``params.remove_dependencies``
        (rule-notation text, one dependency per line) edit the *session's* Σ.
        ``params.set_valued`` lists additional set-valued markers.  The
        session resumes from a stored checkpoint when it can; a structurally
        invalid delta is answered with a ``delta-rejected`` error carrying
        the stable rejection ``reason``.
        """
        query = _param_query(params, "query")
        delta = self._param_delta(params)
        semantics = params.get("semantics")
        outcome = self.session.apply_delta(
            query, delta, semantics, _param_max_steps(params)
        )
        checkpoint = outcome.checkpoint
        return {
            "resumed": outcome.resumed,
            "fallback_reason": outcome.fallback_reason,
            "replayed_steps": outcome.replayed_steps,
            "new_steps": outcome.new_steps,
            "steps_saved": outcome.steps_saved,
            "query": render_query(
                checkpoint.base_query if checkpoint is not None else query
            ),
            "chased": render_query(outcome.result.query),
            "dependencies": len(self.session.dependencies),
        }

    @staticmethod
    def _param_delta(params: dict[str, Any]) -> ChaseDelta:
        def atoms_of(name: str) -> tuple:
            text = params.get(name)
            if text is None:
                return ()
            if not isinstance(text, str):
                raise ProtocolError(
                    "invalid-request", f"params.{name} must be a string"
                )
            try:
                return tuple(parse_atoms(text))
            except ParseError as exc:
                raise ProtocolError("parse-error", f"params.{name}: {exc}") from exc

        def dependencies_of(name: str) -> tuple:
            text = params.get(name)
            if text is None:
                return ()
            if not isinstance(text, str):
                raise ProtocolError(
                    "invalid-request", f"params.{name} must be a string"
                )
            try:
                return tuple(parse_dependencies(text).dependencies)
            except ParseError as exc:
                raise ProtocolError("parse-error", f"params.{name}: {exc}") from exc

        set_valued = params.get("set_valued", [])
        if not isinstance(set_valued, list) or not all(
            isinstance(entry, str) for entry in set_valued
        ):
            raise ProtocolError(
                "invalid-request", "params.set_valued must be a list of strings"
            )
        return ChaseDelta(
            added_atoms=atoms_of("add_atoms"),
            added_dependencies=dependencies_of("add_dependencies"),
            removed_atoms=atoms_of("remove_atoms"),
            removed_dependencies=dependencies_of("remove_dependencies"),
            set_valued=frozenset(set_valued),
        )

    def _handle_stats(self, params: dict[str, Any]) -> dict[str, Any]:
        stats = self.session.stats()
        stats["server"] = {
            "uptime_s": time.monotonic() - self.started,
            "requests_served": self.requests_served,
            "requests_failed": self.requests_failed,
            "connections_accepted": self.connections_accepted,
        }
        return stats

    def _handle_health(self, params: dict[str, Any]) -> dict[str, Any]:
        return {
            "status": "ok",
            "semantics": list(self.session.semantics_names()),
            "dependencies": len(self.session.dependencies),
            "store": self.store is not None,
            "uptime_s": time.monotonic() - self.started,
        }

    # ------------------------------------------------------------------ #
    # Dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch(self, op: str, params: dict[str, Any]) -> dict[str, Any]:
        handler: Callable[[dict[str, Any]], dict[str, Any]] = {
            "decide": self._handle_decide,
            "reformulate": self._handle_reformulate,
            "batch": self._handle_batch,
            "analyze": self._handle_analyze,
            "apply-delta": self._handle_apply_delta,
            "stats": self._handle_stats,
            "health": self._handle_health,
        }[op]
        if op in ("stats", "health"):
            # Counter reads only; running them on the loop keeps them
            # answerable even while the engine thread is mid-chase.
            return handler(params)
        loop = asyncio.get_running_loop()
        return await asyncio.wait_for(
            loop.run_in_executor(self._executor, handler, params),
            timeout=self.timeout if self.timeout and self.timeout > 0 else None,
        )

    async def _respond(self, request_id: Any, op: str, params: dict[str, Any]) -> dict[str, Any]:
        """Run one request to a response dict, mapping every failure to a code."""
        try:
            result = await self._dispatch(op, params)
            return ok_response(request_id, result)
        except ProtocolError as exc:
            return error_response(request_id, exc.code, str(exc))
        except asyncio.TimeoutError:
            return error_response(
                request_id,
                "timeout",
                f"request exceeded the {self.timeout:g}s budget; "
                "the engine keeps running it to completion",
            )
        except ChaseNonTerminationError as exc:
            return error_response(
                request_id,
                "chase-failed",
                str(exc),
                steps_taken=exc.steps_taken,
            )
        except DeltaRejectedError as exc:
            return error_response(
                request_id, "delta-rejected", str(exc), reason=exc.reason
            )
        except PrecheckFailedError as exc:
            detail: dict[str, Any] = {}
            report = exc.report
            if report is not None and hasattr(report, "as_dict"):
                detail["report"] = report.as_dict()
            return error_response(request_id, "precheck-failed", str(exc), **detail)
        except UnknownSemanticsError as exc:
            return error_response(request_id, "unknown-semantics", str(exc))
        except ParseError as exc:
            return error_response(request_id, "parse-error", str(exc))
        except ReproError as exc:
            # Any other engine-level failure: structured, typed, non-fatal.
            return error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )
        except Exception as exc:  # noqa: BLE001 - the server must survive anything
            print(
                f"repro serve: internal error on op {op!r}: "
                f"{type(exc).__name__}: {exc}",
                file=sys.stderr,
            )
            return error_response(
                request_id, "internal", f"{type(exc).__name__}: {exc}"
            )

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_accepted += 1
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # The request line exceeds the frame limit: its end — and
                    # with it the next frame boundary — cannot be located, so
                    # answer once and close this connection (only this one).
                    writer.write(
                        encode_line(
                            error_response(
                                None,
                                "request-too-large",
                                f"request exceeds {self.max_request_bytes} bytes",
                            )
                        )
                    )
                    await writer.drain()
                    self.requests_failed += 1
                    break
                if not line:
                    break  # client closed
                if not line.strip():
                    continue  # bare newline keep-alives are legal
                try:
                    request_id, op, params = parse_request(line)
                except ProtocolError as exc:
                    response = error_response(request_id_of(exc), exc.code, str(exc))
                else:
                    response = await self._respond(request_id, op, params)
                if response.get("ok"):
                    self.requests_served += 1
                else:
                    self.requests_failed += 1
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client vanished mid-exchange; nothing to answer
        except asyncio.CancelledError:
            # Server shutdown cancelled this connection mid-read.  Returning
            # (rather than re-raising) lets the task finish cleanly, which
            # keeps asyncio's stream callbacks from logging spurious
            # "exception in callback" noise during teardown.
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (
                asyncio.CancelledError,
                ConnectionResetError,
                BrokenPipeError,
            ):  # pragma: no cover - teardown races
                pass

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind and start accepting (resolves :attr:`port` when it was 0)."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.host,
            port=self.port,
            limit=self.max_request_bytes,
        )
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        """Run until cancelled; closes the store and executor on the way out."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        try:
            async with self._server:
                await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.aclose()

    async def aclose(self) -> None:
        """Stop accepting, release the executor, flush and close the store."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._executor.shutdown(wait=True, cancel_futures=True)
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------ #
    def start_in_thread(self) -> "ServerHandle":
        """Run this server on a dedicated event-loop thread (fixtures, tools).

        Returns a :class:`ServerHandle` whose :attr:`~ServerHandle.port` is
        already resolved; the caller stops the server with
        :meth:`ServerHandle.stop`.  This is the in-process embedding used by
        the test suite and the throughput benchmark — same code path as the
        CLI daemon, minus the process boundary.
        """
        started = threading.Event()
        startup_error: list[BaseException] = []
        loop_holder: list[asyncio.AbstractEventLoop] = []

        async def _run() -> None:
            try:
                await self.start()
            except BaseException as exc:  # pragma: no cover - bind failures
                startup_error.append(exc)
                started.set()
                return
            loop_holder.append(asyncio.get_running_loop())
            started.set()
            await self.serve_forever()

        def _thread_main() -> None:
            asyncio.run(_run())

        thread = threading.Thread(
            target=_thread_main, name="repro-serve", daemon=True
        )
        thread.start()
        started.wait()
        if startup_error:  # pragma: no cover - bind failures
            raise startup_error[0]
        return ServerHandle(self, thread, loop_holder[0])


class ServerHandle:
    """A running in-thread server: its port, and the means to stop it."""

    def __init__(
        self,
        server: ReproServer,
        thread: threading.Thread,
        loop: asyncio.AbstractEventLoop,
    ):
        self.server = server
        self._thread = thread
        self._loop = loop

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def host(self) -> str:
        return self.server.host

    def stop(self, timeout: float = 10.0) -> None:
        """Cancel the serve loop and join the thread (idempotent)."""
        if self._thread.is_alive():
            def _cancel_all() -> None:
                for task in asyncio.all_tasks(self._loop):
                    task.cancel()

            try:
                self._loop.call_soon_threadsafe(_cancel_all)
            except RuntimeError:  # pragma: no cover - loop already closed
                pass
        self._thread.join(timeout=timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
