"""Exception hierarchy for the :mod:`repro` library.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  More specific subclasses communicate *which*
stage of the pipeline failed (parsing, schema validation, chase,
reformulation, evaluation).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class QueryError(ReproError):
    """A conjunctive or aggregate query is malformed (e.g. unsafe head)."""


class SchemaError(ReproError):
    """A database schema, relation schema, or instance violates arity rules."""


class DependencyError(ReproError):
    """An embedded dependency is malformed or cannot be normalised."""


class PrecheckFailedError(DependencyError):
    """A strict Session precheck refused Σ before any chase step ran.

    Raised by ``Session(precheck="strict")`` (and by the serve daemon's
    strict ``analyze`` op) when the static analyzer produced error-severity
    diagnostics — a non-weakly-acyclic Σ or an arity conflict.  ``report``
    carries the full :class:`repro.analysis.static.AnalysisReport` (typed as
    ``object`` here to keep the exceptions module dependency-free), so
    callers can render the witness cycle or serialize the diagnostics.
    """

    def __init__(self, message: str, report: object | None = None):
        super().__init__(message)
        self.report = report


class ChaseError(ReproError):
    """The chase could not be carried out (internal inconsistency)."""


class DeltaRejectedError(ChaseError):
    """An instance/Σ delta cannot be applied to a chase state.

    Raised by the incremental-chase layer (:mod:`repro.chase.incremental`)
    and by ``Session.apply_delta`` when a delta is structurally invalid:
    empty, removing an atom the base query does not contain, removing a
    dependency Σ does not contain, or adding an atom whose arity conflicts
    with the predicate's known arity.  ``reason`` carries a stable
    machine-readable slug (``"empty-delta"``, ``"unknown-atom"``,
    ``"unknown-dependency"``, ``"arity-conflict"``) that the serve daemon
    forwards in its structured ``delta-rejected`` error responses.
    """

    def __init__(self, message: str, reason: str = "invalid-delta"):
        super().__init__(message)
        self.reason = reason


class ChaseNonTerminationError(ChaseError):
    """The chase exceeded its step budget without reaching a terminal result.

    Chase under arbitrary embedded dependencies may not terminate; callers
    can either supply weakly acyclic dependencies (guaranteed termination,
    see :mod:`repro.dependencies.weak_acyclicity`) or raise the ``max_steps``
    budget.
    """

    def __init__(self, message: str, steps_taken: int):
        super().__init__(message)
        self.steps_taken = steps_taken


class ParseError(ReproError):
    """Raised by the SQL and datalog parsers on invalid input."""

    def __init__(self, message: str, position: int | None = None):
        super().__init__(message)
        self.position = position


class TranslationError(ReproError):
    """SQL could not be translated to a conjunctive / aggregate query."""


class EvaluationError(ReproError):
    """Query evaluation against a database instance failed."""


class ReformulationError(ReproError):
    """A reformulation algorithm received inputs it cannot handle."""


class SemanticsError(ReproError):
    """A problem with a query-evaluation semantics or its strategy."""


class UnknownSemanticsError(SemanticsError, KeyError):
    """A semantics name has no strategy registered for it.

    Raised by :class:`repro.session.SemanticsRegistry` (and therefore by
    every :class:`repro.session.Session` entry point) when asked to dispatch
    on a semantics that neither the built-in strategies nor a third-party
    registration covers.  ``known`` lists the canonical names that *are*
    registered, so the error message doubles as discovery.
    """

    def __init__(self, name: object, known: "tuple[str, ...]" = ()):
        message = f"unknown semantics {name!r}"
        if known:
            message += f"; registered semantics: {', '.join(known)}"
        # Bypass KeyError.__str__'s repr-of-args behaviour.
        Exception.__init__(self, message)
        self.name = name
        self.known = tuple(known)

    def __reduce__(self):
        # Default pickling would re-run __init__ with the formatted message
        # as `name`, double-wrapping it after a worker-process round trip.
        return (type(self), (self.name, self.known))

    def __str__(self) -> str:
        return self.args[0]
