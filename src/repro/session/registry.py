"""The semantics registry: name → strategy dispatch for the Session engine.

The paper's machinery comes in three parallel per-semantics families; the
registry replaces that fan-out with a single lookup table.  Built-in
strategies cover the paper's set / bag / bag-set semantics; third parties
register additional :class:`~repro.session.strategies.SemanticsStrategy`
instances (say, a probabilistic or provenance semantics) without touching
any core module — every ``Session.decide`` / ``chase`` / ``reformulate``
call dispatches through here.
"""

from __future__ import annotations

import weakref
from typing import Callable, Iterator

from ..exceptions import SemanticsError, UnknownSemanticsError
from ..semantics import Semantics
from .strategies import BUILTIN_STRATEGIES, SemanticsStrategy


def normalize_semantics_name(semantics: object) -> str:
    """Canonicalize a semantics key: enum member → value, string → slug."""
    if isinstance(semantics, Semantics):
        return semantics.value
    if isinstance(semantics, str):
        return semantics.strip().lower().replace("_", "-")
    raise SemanticsError(
        f"semantics must be a Semantics member or a name, got {semantics!r}"
    )


class SemanticsRegistry:
    """A mutable mapping from semantics names (and aliases) to strategies."""

    def __init__(self, strategies: "tuple[SemanticsStrategy, ...] | list" = ()):
        self._by_key: dict[str, SemanticsStrategy] = {}
        self._canonical: dict[str, SemanticsStrategy] = {}
        # Each listener entry is a zero-arg resolver returning the live
        # callback or None (a WeakMethod, or a strong-holding closure).
        self._shadow_listeners: list[Callable[[], Callable[[], None] | None]] = []
        for strategy in strategies:
            self.register(strategy)

    # ------------------------------------------------------------------ #
    def on_shadow(self, callback: Callable[[], None]) -> None:
        """Call *callback* whenever a registration shadows an existing name.

        Sessions subscribe their chase-cache invalidation here: cache keys
        carry only the semantics name, so results chased by a replaced
        strategy must never be served as the replacement's.  Bound methods
        are held weakly, so a registry shared across many (possibly
        short-lived) sessions does not keep their caches alive.
        """
        ref: Callable[[], Callable[[], None] | None]
        try:
            ref = weakref.WeakMethod(callback)
        except TypeError:  # plain function / non-method callable: hold strongly
            ref = lambda _cb=callback: _cb  # noqa: E731
        # Prune dead refs on every subscription too, so a long-lived registry
        # shared by many transient sessions stays bounded even when no
        # shadowing registration ever fires.
        self._shadow_listeners = [r for r in self._shadow_listeners if r() is not None]
        self._shadow_listeners.append(ref)

    def _notify_shadow(self) -> None:
        alive = []
        for ref in self._shadow_listeners:
            callback = ref()
            if callback is not None:
                callback()
                alive.append(ref)
        self._shadow_listeners = alive

    def register(
        self, strategy: SemanticsStrategy, *, replace: bool = False
    ) -> SemanticsStrategy:
        """Register *strategy* under its name and aliases; returns it.

        Registration refuses to overwrite an existing name unless
        ``replace=True``, so a typo cannot silently shadow a built-in.
        Replacing displaces the colliding strategies entirely — their other
        aliases are dropped too, so no stale alias keeps dispatching to (and
        cache-poisoning under) the old strategy.
        """
        if not isinstance(strategy, SemanticsStrategy):
            raise SemanticsError(
                f"expected a SemanticsStrategy instance, got {strategy!r}"
            )
        name = normalize_semantics_name(strategy.name)
        if not name:
            raise SemanticsError(f"strategy {strategy!r} has an empty name")
        keys = [name] + [normalize_semantics_name(alias) for alias in strategy.aliases]
        if not replace:
            for key in keys:
                if key in self._by_key and self._by_key[key] is not strategy:
                    raise SemanticsError(
                        f"semantics {key!r} is already registered; "
                        "pass replace=True to override"
                    )
        displaced = [
            self._by_key[key]
            for key in keys
            if key in self._by_key and self._by_key[key] is not strategy
        ]
        if displaced:
            self._by_key = {
                key: existing
                for key, existing in self._by_key.items()
                if not any(existing is old for old in displaced)
            }
            self._canonical = {
                cname: existing
                for cname, existing in self._canonical.items()
                if not any(existing is old for old in displaced)
            }
        for key in keys:
            self._by_key[key] = strategy
        self._canonical[name] = strategy
        if displaced:
            self._notify_shadow()
        return strategy

    def resolve(self, semantics: object) -> SemanticsStrategy:
        """Return the strategy for *semantics* (name, alias, or enum member)."""
        key = normalize_semantics_name(semantics)
        try:
            return self._by_key[key]
        except KeyError:
            raise UnknownSemanticsError(semantics, self.names()) from None

    # ------------------------------------------------------------------ #
    def names(self) -> tuple[str, ...]:
        """The canonical names of every registered strategy, in registration order."""
        return tuple(self._canonical)

    def __contains__(self, semantics: object) -> bool:
        try:
            key = normalize_semantics_name(semantics)
        except SemanticsError:
            return False
        return key in self._by_key

    def __iter__(self) -> Iterator[SemanticsStrategy]:
        return iter(self._canonical.values())

    def __len__(self) -> int:
        return len(self._canonical)

    def copy(self) -> "SemanticsRegistry":
        """An independent copy (shared strategies, separate tables, no listeners)."""
        clone = SemanticsRegistry()
        clone._by_key = dict(self._by_key)
        clone._canonical = dict(self._canonical)
        return clone

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SemanticsRegistry({', '.join(self.names())})"


def default_registry() -> SemanticsRegistry:
    """A fresh registry holding the paper's three built-in strategies."""
    return SemanticsRegistry([cls() for cls in BUILTIN_STRATEGIES])
