"""The unified Session engine API.

One façade object — :class:`Session` — owns the three components every
scaling feature plugs into:

* :class:`SemanticsRegistry` — pluggable semantics → strategy dispatch
  (:mod:`repro.session.registry`, :mod:`repro.session.strategies`);
* :class:`ChaseCache` — canonicalized chase-result caching
  (:mod:`repro.session.cache`);
* batch pipelines with per-item error capture and optional multiprocessing
  (:mod:`repro.session.batch`).

The flat top-level functions (``equivalent_under_dependencies_bag``,
``bag_c_and_b``, ...) remain available as thin shims delegating here.
"""

from .batch import BatchItem, BatchReport, decide_many, reformulate_many
from .cache import CacheStats, ChaseCache, chase_cache_key, sigma_fingerprint
from .engine import ChaseResultStore, Session, assert_proposition_6_1
from .registry import SemanticsRegistry, default_registry, normalize_semantics_name
from .strategies import (
    BUILTIN_STRATEGIES,
    BagSetStrategy,
    BagStrategy,
    SemanticsStrategy,
    SetStrategy,
)

__all__ = [
    "BUILTIN_STRATEGIES",
    "BagSetStrategy",
    "BagStrategy",
    "BatchItem",
    "BatchReport",
    "CacheStats",
    "ChaseCache",
    "ChaseResultStore",
    "SemanticsRegistry",
    "SemanticsStrategy",
    "Session",
    "SetStrategy",
    "assert_proposition_6_1",
    "chase_cache_key",
    "decide_many",
    "default_registry",
    "normalize_semantics_name",
    "reformulate_many",
    "sigma_fingerprint",
]
