"""Semantics strategies: the pluggable unit of the Session engine.

A :class:`SemanticsStrategy` bundles everything the engine needs to know
about one query-evaluation semantics:

* the *sound chase* for that semantics (Section 4 of the paper),
* the *dependency-free equivalence test* applied to terminal chase results
  (Theorem 2.2 for set, Theorem 6.1 / 4.2 for bag, Theorem 6.2 for bag-set),
* the *C&B variant* that reformulates queries under that semantics
  (Appendix A / Theorem 6.4 / Theorem K.1).

The three built-in strategies wrap the existing per-semantics machinery; a
third party adds a new semantics by subclassing :class:`SemanticsStrategy`
and registering an instance with a :class:`~repro.session.SemanticsRegistry`
— no core module needs to change.
"""

from __future__ import annotations

import abc
from typing import Sequence

from ..chase.set_chase import DEFAULT_MAX_STEPS, ChaseResult
from ..chase.sound_chase import sound_chase
from ..core.bag_equivalence import (
    is_bag_equivalent_with_set_enforced,
    is_bag_set_equivalent,
)
from ..core.containment import is_set_equivalent
from ..core.query import ConjunctiveQuery
from ..dependencies.base import DependencySet
from ..semantics import Semantics

class SemanticsStrategy(abc.ABC):
    """Everything the engine needs to decide and reformulate under one semantics.

    ``name`` is the canonical semantics name (``"set"``, ``"bag"``, ...);
    ``aliases`` are alternative spellings the registry should accept;
    ``token`` is the value stamped on verdicts and chase results — the
    :class:`~repro.semantics.Semantics` member for built-in strategies, the
    name string for third-party ones.
    """

    #: Canonical lower-case name; must be unique within a registry.
    name: str = ""
    #: Alternative spellings accepted by registry lookup.
    aliases: Sequence[str] = ()

    @property
    def token(self) -> object:
        """The semantics marker carried by verdicts produced via this strategy."""
        return self.name

    def cache_token(self) -> object:
        """Hashable identity of this strategy's *chase behaviour* in cache keys.

        Defaults to the class path, so strategies of different classes bound
        to the same name never share cache entries.  Override when instances
        of the same class chase differently (e.g. carry configuration), so a
        cache shared across sessions keeps their results apart.
        """
        cls = type(self)
        return f"{cls.__module__}.{cls.__qualname__}"

    @abc.abstractmethod
    def chase(
        self,
        query: ConjunctiveQuery,
        dependencies: DependencySet,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> ChaseResult:
        """Run the chase that is sound for this semantics."""

    def chase_with_plans(
        self,
        query: ConjunctiveQuery,
        dependencies: DependencySet,
        max_steps: int,
        plan_cache,
    ) -> ChaseResult:
        """Run :meth:`chase`, routing compiled-plan reuse through *plan_cache*.

        The Session calls this hook so its plan cache serves the chase's
        per-dependency match plans.  The default ignores the cache — a
        third-party strategy that predates plan caching (or whose chase has
        no notion of plans) keeps working unchanged; the built-in strategies
        override it to thread the cache into :func:`repro.chase.sound_chase`.
        """
        return self.chase(query, dependencies, max_steps)

    @abc.abstractmethod
    def equivalent_chased(
        self,
        chased1: ConjunctiveQuery,
        chased2: ConjunctiveQuery,
        dependencies: DependencySet,
    ) -> bool:
        """The dependency-free equivalence test on terminal chase results."""

    def reformulate(
        self,
        query: ConjunctiveQuery,
        dependencies: DependencySet,
        max_steps: int = DEFAULT_MAX_STEPS,
        engine=None,
        **kwargs,
    ):
        """Run this semantics' C&B variant.

        ``engine`` is the calling :class:`~repro.session.Session` (if any);
        the driver routes every chase — universal plan and backchase
        candidates alike — through its cache.  Called without an engine, an
        ephemeral Session is built with *this* strategy registered, so the
        method works for third-party strategies whose names the enum-based
        machinery cannot parse.
        """
        # Imported lazily: reformulation's public wrappers delegate back
        # through Session, so a module-level import would be circular.
        from ..reformulation.cb import chase_and_backchase

        if engine is None:
            from .engine import Session

            engine = Session(dependencies=dependencies)
            engine.registry.register(self, replace=True)
            dependencies = engine.dependencies
        return chase_and_backchase(
            query, dependencies, self.token, max_steps, engine=engine, **kwargs
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


class _BuiltinStrategy(SemanticsStrategy):
    """Shared plumbing for the paper's three semantics."""

    semantics: Semantics

    @property
    def token(self) -> Semantics:
        return self.semantics

    def chase(
        self,
        query: ConjunctiveQuery,
        dependencies: DependencySet,
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> ChaseResult:
        return sound_chase(query, dependencies, self.semantics, max_steps)

    def chase_with_plans(
        self,
        query: ConjunctiveQuery,
        dependencies: DependencySet,
        max_steps: int,
        plan_cache,
    ) -> ChaseResult:
        return sound_chase(
            query, dependencies, self.semantics, max_steps, plan_cache=plan_cache
        )


class SetStrategy(_BuiltinStrategy):
    """Set semantics: set chase + Theorem 2.2 equivalence + classic C&B."""

    name = "set"
    aliases = ("s",)
    semantics = Semantics.SET

    def equivalent_chased(self, chased1, chased2, dependencies) -> bool:
        return is_set_equivalent(chased1, chased2)


class BagStrategy(_BuiltinStrategy):
    """Bag semantics: sound bag chase + Theorem 6.1 / 4.2 test + Bag-C&B."""

    name = "bag"
    aliases = ("b",)
    semantics = Semantics.BAG

    def equivalent_chased(self, chased1, chased2, dependencies) -> bool:
        return is_bag_equivalent_with_set_enforced(
            chased1, chased2, dependencies.set_valued_predicates
        )


class BagSetStrategy(_BuiltinStrategy):
    """Bag-set semantics: sound bag-set chase + Theorem 6.2 test + Bag-Set-C&B."""

    name = "bag-set"
    aliases = ("bagset", "bag_set", "bs")
    semantics = Semantics.BAG_SET

    def equivalent_chased(self, chased1, chased2, dependencies) -> bool:
        return is_bag_set_equivalent(chased1, chased2)


#: Constructors for the built-in strategies, in Proposition 6.1 order
#: (bag ⇒ bag-set ⇒ set): the strongest semantics first.
BUILTIN_STRATEGIES = (BagStrategy, BagSetStrategy, SetStrategy)
