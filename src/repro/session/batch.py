"""Batch decision pipelines with per-item error capture.

``decide_many`` and ``reformulate_many`` run a whole workload through a
:class:`~repro.session.engine.Session` and return a :class:`BatchReport`:
one :class:`BatchItem` per input, carrying either the result or the error
that input produced (a non-terminating chase on one pair must not sink the
other thousand).

Sequentially, items share the calling session's chase cache — a workload
whose pairs overlap chases each distinct (query, semantics) once.  With
``concurrency=N`` the items are fanned out over N worker processes, each
owning its own session (and cache) initialized once per process; results
stream back in input order.  Multiprocessing is only available for the
built-in semantics — a third-party strategy object lives in the parent
process and is not shipped across the fork.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Hashable, Iterable, Iterator, Sequence

from ..core.aggregate import AggregateQuery
from ..core.query import ConjunctiveQuery
from ..dependencies.base import DependencySet
from ..exceptions import SemanticsError
from .registry import normalize_semantics_name
from .strategies import BUILTIN_STRATEGIES

_CHUNKSIZE = 8


@dataclass(frozen=True)
class BatchItem:
    """Outcome of one pipeline input: a result or a captured error."""

    index: int
    input: object
    result: object | None = None
    error: str | None = None
    error_type: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    def __str__(self) -> str:
        if self.ok:
            return f"[{self.index}] ok: {self.result}"
        return f"[{self.index}] {self.error_type}: {self.error}"


@dataclass
class BatchReport:
    """Structured outcome of a ``decide_many`` / ``reformulate_many`` run."""

    kind: str
    semantics: object
    items: list[BatchItem] = field(default_factory=list)

    @property
    def results(self) -> list:
        """Results of the successful items, in input order."""
        return [item.result for item in self.items if item.ok]

    @property
    def failures(self) -> list[BatchItem]:
        """The items whose processing raised, in input order."""
        return [item for item in self.items if not item.ok]

    @property
    def ok_count(self) -> int:
        return sum(1 for item in self.items if item.ok)

    @property
    def error_count(self) -> int:
        return len(self.items) - self.ok_count

    def raise_on_failure(self) -> "BatchReport":
        """Raise if any item failed; returns self so calls can chain."""
        failures = self.failures
        if failures:
            first = failures[0]
            raise RuntimeError(
                f"{len(failures)}/{len(self.items)} {self.kind} items failed; "
                f"first: item {first.index} raised {first.error_type}: {first.error}"
            )
        return self

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[BatchItem]:
        return iter(self.items)

    def __getitem__(self, index: int) -> BatchItem:
        return self.items[index]

    def __str__(self) -> str:
        return (
            f"BatchReport({self.kind} under {self.semantics}: "
            f"{self.ok_count} ok, {self.error_count} failed)"
        )


# --------------------------------------------------------------------------- #
# Worker-process plumbing.  One Session per process, created by the pool
# initializer; payloads and results must stay picklable.
# --------------------------------------------------------------------------- #
_WORKER_SESSION: Any = None


def _init_worker(
    dependencies: DependencySet,
    max_steps: int,
    intern_snapshot: "list[tuple[str, Hashable]] | None" = None,
    shm_name: str | None = None,
) -> None:
    global _WORKER_SESSION
    from ..core.terms import SharedInternSnapshot, pin_interned_terms
    from .engine import Session

    # Warm the worker's intern tables with the parent's live vocabulary
    # before the first payload arrives, and pin the terms so the weak
    # tables cannot drop them between items.  Under the fork start
    # method the tables are inherited and this is nearly free; under
    # spawn it replaces per-payload re-interning from an empty table.
    # The shared-memory segment is preferred — the parent serialized the
    # snapshot exactly once — with the inline pickle as the fallback for
    # platforms without shared memory (and a missing segment just means a
    # cold start, never a failure).
    pinned = False
    if shm_name is not None:
        try:
            SharedInternSnapshot.attach_and_pin(shm_name)
            pinned = True
        except (FileNotFoundError, OSError):
            pinned = False
    if not pinned and intern_snapshot:
        pin_interned_terms(intern_snapshot)
    _WORKER_SESSION = Session(dependencies=dependencies, max_steps=max_steps)


def _decide_worker(payload):
    index, q1, q2, semantics_name, max_steps = payload
    try:
        verdict = _WORKER_SESSION.decide(q1, q2, semantics_name, max_steps)
        return index, verdict, None, None
    except Exception as exc:  # per-item capture: one bad pair must not sink the batch
        return index, None, str(exc), type(exc).__name__


def _reformulate_worker(payload):
    index, query, semantics_name, max_steps, kwargs = payload
    try:
        result = _WORKER_SESSION.reformulate(query, semantics_name, max_steps, **kwargs)
        return index, result, None, None
    except Exception as exc:
        return index, None, str(exc), type(exc).__name__


def _require_builtin_for_concurrency(strategy) -> None:
    # Exact type check: worker processes rebuild Sessions with the default
    # registry, so anything but a stock built-in strategy instance — a custom
    # strategy, or a subclass shadowing a built-in name — would silently run
    # different code in the workers than in this process.
    if type(strategy) not in BUILTIN_STRATEGIES:
        raise SemanticsError(
            f"strategy {strategy!r} is a custom semantics strategy; "
            "custom strategies cannot be shipped to worker processes — "
            "run the batch without concurrency"
        )


def _run_pool(session, worker, payloads, concurrency: int):
    # The pool lives on the Session (created lazily, reused across calls,
    # torn down on Session.close() or when Σ/max_steps change), so repeated
    # batch calls stop paying process startup plus snapshot re-warm each
    # time; see Session._ensure_batch_pool.
    pool = session._ensure_batch_pool(concurrency)
    yield from pool.map(worker, payloads, chunksize=_CHUNKSIZE)


# --------------------------------------------------------------------------- #
# Public pipelines
# --------------------------------------------------------------------------- #
def _execute_batch(
    session,
    kind: str,
    semantics: object | None,
    max_steps: int | None,
    concurrency: int | None,
    items: list,
    make_payload,
    worker,
    call_in_process,
) -> BatchReport:
    """Shared pipeline: run every item, in-process or fanned out, into a report.

    ``make_payload(index, item, semantics_name, steps)`` builds the picklable
    worker payload; ``call_in_process(item, semantics_name, steps)`` is the
    sequential path (sharing the calling session's cache).
    """
    strategy = session.strategy_for(semantics)
    semantics_name = normalize_semantics_name(strategy.name)
    steps = session.max_steps if max_steps is None else max_steps
    report = BatchReport(kind=kind, semantics=strategy.token)

    if concurrency is not None and concurrency > 1 and len(items) > 1:
        _require_builtin_for_concurrency(strategy)
        # Payload construction gets the same per-item capture as execution:
        # one malformed input must not sink the rest of the batch.
        payloads = []
        failed: dict[int, tuple[str, str]] = {}
        for index, item in enumerate(items):
            try:
                payloads.append(make_payload(index, item, semantics_name, steps))
            except Exception as exc:
                failed[index] = (str(exc), type(exc).__name__)
        outcomes: dict[int, tuple] = {
            index: (result, error, error_type)
            for index, result, error, error_type in _run_pool(
                session, worker, payloads, concurrency
            )
        }
        for index, (error, error_type) in failed.items():
            outcomes[index] = (None, error, error_type)
        for index in range(len(items)):
            result, error, error_type = outcomes[index]
            report.items.append(BatchItem(index, items[index], result, error, error_type))
        return report

    for index, item in enumerate(items):
        try:
            result, error, error_type = call_in_process(item, semantics_name, steps), None, None
        except Exception as exc:
            result, error, error_type = None, str(exc), type(exc).__name__
        report.items.append(BatchItem(index, item, result, error, error_type))
    return report


def decide_many(
    session,
    pairs: Iterable[Sequence[ConjunctiveQuery]],
    semantics: object | None = None,
    max_steps: int | None = None,
    concurrency: int | None = None,
) -> BatchReport:
    """Decide ``Q1 ≡Σ,X Q2`` for every pair, capturing per-item errors."""
    # Items are materialized as-is: indexing into a malformed "pair" happens
    # inside the per-item capture, so one bad input fails only its own item.
    return _execute_batch(
        session,
        "decide",
        semantics,
        max_steps,
        concurrency,
        list(pairs),
        make_payload=lambda index, pair, name, steps: (index, pair[0], pair[1], name, steps),
        worker=_decide_worker,
        call_in_process=lambda pair, name, steps: session.decide(pair[0], pair[1], name, steps),
    )


def reformulate_many(
    session,
    queries: Iterable[ConjunctiveQuery],
    semantics: object | None = None,
    max_steps: int | None = None,
    concurrency: int | None = None,
    **kwargs,
) -> BatchReport:
    """Run the semantics' C&B variant on every query, capturing per-item errors.

    Aggregate queries choose their own semantics from the aggregate function
    (Theorem 6.3): when the caller did not ask for a semantics, the resolved
    session default is not forced onto them; an *explicitly* requested
    semantics keeps the direct API's contract and fails those items with
    :class:`~repro.exceptions.SemanticsError`.
    """
    explicit = semantics is not None

    def _semantics_for(query, resolved_name):
        if isinstance(query, AggregateQuery) and not explicit:
            return None
        return resolved_name

    return _execute_batch(
        session,
        "reformulate",
        semantics,
        max_steps,
        concurrency,
        list(queries),
        make_payload=lambda index, query, name, steps: (
            index, query, _semantics_for(query, name), steps, kwargs
        ),
        worker=_reformulate_worker,
        call_in_process=lambda query, name, steps: session.reformulate(
            query, _semantics_for(query, name), steps, **kwargs
        ),
    )
