"""The :class:`Session` façade — the unified entry point of the engine.

A Session binds a dependency set Σ (and optionally a schema) once and then
answers every question the library can ask — chase, equivalence, C&B
reformulation — through three shared components:

* a :class:`~repro.session.registry.SemanticsRegistry` dispatching each
  semantics name to the strategy bundling its sound chase, equivalence test,
  and C&B variant (third parties register new semantics without touching
  core modules);
* a :class:`~repro.session.cache.ChaseCache` of terminal chase results keyed
  by canonicalized (query, Σ, semantics, max_steps), so repeated decisions
  over a workload skip the dominant chase cost entirely;
* the batch pipelines of :mod:`repro.session.batch`
  (:meth:`Session.decide_many` / :meth:`Session.reformulate_many`), with
  optional multiprocessing and per-item error capture.

Typical use::

    from repro import Session, parse_dependencies, parse_query

    session = Session(dependencies=parse_dependencies(SIGMA, set_valued=["t"]))
    verdict = session.decide(q1, q2, semantics="bag")
    plans = session.reformulate(q1, semantics="bag-set")
    report = session.decide_many([(q1, q2), (q1, q3)], semantics="bag")
"""

from __future__ import annotations

import time
from typing import Any, Iterable, Mapping, Protocol, Sequence

from ..chase.incremental import (
    ChaseCheckpoint,
    ChaseDelta,
    ResumeOutcome,
    apply_delta_to_query,
    apply_delta_to_sigma,
    chase_with_checkpoint,
    resume_chase,
    sigma_extension_suffix,
    validate_delta,
)
from ..chase.plans import PlanCache, default_plan_cache
from ..chase.profile import ChaseProfile
from ..chase.set_chase import DEFAULT_MAX_STEPS, ChaseResult
from ..chase.sigma_subset import SigmaSubsetResult, scan_sigma_subset
from ..core.aggregate import AggregateQuery
from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet
from ..equivalence.decision import EquivalenceVerdict
from ..semantics import Semantics
from ..exceptions import DeltaRejectedError, DependencyError, SchemaError, SemanticsError
from .cache import (
    MISSING,
    CacheStats,
    ChaseCache,
    ChaseKey,
    WeakKeyLRU,
    chase_cache_key,
    sigma_fingerprint,
)
from .registry import SemanticsRegistry, default_registry, normalize_semantics_name
from .strategies import SemanticsStrategy


class ChaseResultStore(Protocol):
    """What a Session needs from a persistent chase-result store.

    The concrete implementation lives a layer up, in
    :class:`repro.serve.store.ChaseStore` (session must not depend on the
    serving subsystem); anything honouring this protocol — get by key or
    ``None``, write-through put, JSON-able stats — can back a session.
    """

    def get(self, key: Any) -> ChaseResult | None: ...

    def put(self, key: Any, result: ChaseResult) -> None: ...

    def stats(self) -> Mapping[str, Any]: ...

    def close(self) -> None: ...


class _SessionDependencySet(DependencySet):
    """A Session-owned Σ that refuses in-place mutation.

    Cache keys memoize Σ's fingerprint, so mutating the session's dependency
    set in place would silently serve stale chases; Σ changes must go
    through :meth:`Session.set_dependencies`, which invalidates the cache.
    The dependency sequence is stored as a tuple so even direct mutation of
    the ``dependencies`` attribute's contents is impossible.
    """

    def __init__(self, dependencies=(), set_valued_predicates=()):
        super().__init__(dependencies, set_valued_predicates)
        self.dependencies = tuple(self.dependencies)

    def add(self, dependency) -> None:
        raise DependencyError(
            "this Session's dependency set is immutable; build a new "
            "DependencySet and call session.set_dependencies(...) so the "
            "chase cache is invalidated"
        )


class Session:
    """A long-lived engine instance owning registries, caches, and pipelines.

    ``dependencies`` may be a :class:`DependencySet` or a plain sequence of
    dependencies; ``schema`` is optional, and when it marks relations as set
    valued those markers are folded into Σ (they drive the Theorem 4.1 / 4.2
    soundness conditions under bag semantics).
    """

    def __init__(
        self,
        schema=None,
        dependencies: DependencySet | Sequence[Dependency] = (),
        *,
        registry: SemanticsRegistry | None = None,
        cache: ChaseCache | None = None,
        cache_size: int = 4096,
        plan_cache: PlanCache | None = None,
        default_semantics: Semantics | str = Semantics.BAG_SET,
        max_steps: int = DEFAULT_MAX_STEPS,
        store: "ChaseResultStore | None" = None,
        precheck: str | None = None,
        chase_resumable: bool = False,
    ):
        if schema is not None and not hasattr(schema, "set_valued_relations"):
            # The natural-looking call Session(sigma) would otherwise bind
            # the dependency set to `schema` and silently decide under an
            # empty Σ.
            raise SchemaError(
                f"Session's first argument is the schema, got {type(schema).__name__}; "
                "pass the dependency set as Session(dependencies=...)"
            )
        self.schema = schema
        self.registry = registry if registry is not None else default_registry()
        self.cache = cache if cache is not None else ChaseCache(cache_size)
        # Compiled per-Σ match plans; by default the process-wide cache, so
        # sessions over the same Σ (and the module-level chase functions)
        # share compilations.  Threaded into every chase this session runs
        # via SemanticsStrategy.chase_with_plans.
        self.plan_cache = plan_cache if plan_cache is not None else default_plan_cache()
        self.default_semantics = default_semantics
        self.max_steps = max_steps
        # Optional persistent second-level store (see ChaseResultStore):
        # consulted on every in-memory miss, written through on every cold
        # chase, so a restarted process starts warm from disk.
        self.store = store
        # Static precheck mode: None/"off" (no analysis), "warn" (analyze Σ,
        # keep the report, seed chase budgets from the termination
        # certificate), or "strict" (additionally refuse an uncertified Σ
        # with a PrecheckFailedError before any chase step runs).
        if precheck not in (None, "off", "warn", "strict"):
            raise DependencyError(
                f"unknown precheck mode {precheck!r}; expected 'off', 'warn', or 'strict'"
            )
        self.precheck = "off" if precheck is None else precheck
        self.precheck_report = None
        self._certificate = None
        self._dependencies = self._coerce_dependencies(dependencies)
        if self.precheck != "off":
            self.precheck_report, self._certificate = self._run_precheck(
                self._dependencies
            )
        self._sigma_key: object | None = None  # computed lazily by _chase_key
        # Assembled cache keys, memoized per live query object (satellite of
        # the hash-consing refactor): repeated decisions on the same query
        # objects — every C&B run, every warm dashboard — reuse the exact
        # ChaseKey instance, whose hash is already computed.  Weak keys keep
        # the memo from pinning queries a caller has dropped; the LRU bound
        # (the chase cache's own policy and size) keeps a caller holding
        # millions of live queries from growing it without limit.
        self._key_memo: WeakKeyLRU = WeakKeyLRU(getattr(self.cache, "maxsize", cache_size))
        # Aggregate of every *cold* chase's profile (cache hits add nothing:
        # the work they saved is exactly what the aggregate measures).
        self._profile = ChaseProfile(runs=0)
        # Incremental chase state.  With ``chase_resumable`` every cold chase
        # of a built-in semantics also captures a ChaseCheckpoint; apply_delta
        # always captures one for the post-delta state.  Checkpoints are
        # keyed *without* Σ or the step budget (a checkpoint carries its own
        # Σ and budget and is caught up to the session's Σ at resume time),
        # and deliberately kept in a cache separate from the chase-result
        # cache: set_dependencies must invalidate stale results but a
        # checkpoint taken under a Σ prefix is exactly what apply_delta
        # resumes from after Σ grows.
        self.chase_resumable = bool(chase_resumable)
        self._checkpoints = ChaseCache(cache_size)
        self._incremental: dict[str, int] = {
            "deltas_applied": 0,
            "deltas_rejected": 0,
            "resumed_runs": 0,
            "cold_runs": 0,
            "steps_replayed": 0,
            "steps_executed": 0,
            "steps_saved": 0,
        }
        # Reusable batch worker pool (decide_many / reformulate_many with
        # concurrency): created lazily on first use, reused while
        # (concurrency, max_steps, Σ) stay put, torn down on close().  The
        # shared-memory intern snapshot that warms its workers is owned
        # alongside it.
        self._batch_pool: Any = None
        self._batch_pool_key: tuple[int, int, object] | None = None
        self._batch_shm: Any = None
        self._batch_pools_created = 0
        # Any registration that shadows an existing semantics name — through
        # this object or the registry directly — must drop cached chases.
        self.registry.on_shadow(self.cache.invalidate)

    # ------------------------------------------------------------------ #
    # Dependencies: Σ is session state; changing it invalidates the cache.
    # ------------------------------------------------------------------ #
    def _coerce_dependencies(
        self, dependencies: DependencySet | Sequence[Dependency]
    ) -> DependencySet:
        if not isinstance(dependencies, DependencySet):
            dependencies = DependencySet(dependencies)
        if self.schema is not None:
            schema_set_valued = getattr(self.schema, "set_valued_relations", None)
            if callable(schema_set_valued):
                marked = schema_set_valued()
                if marked - set(dependencies.set_valued_predicates):
                    dependencies = dependencies.with_set_valued(marked)
        # Own an immutable snapshot: later mutation of the caller's set must
        # not change Σ behind the memoized fingerprint and cache.
        return _SessionDependencySet(
            list(dependencies.dependencies), dependencies.set_valued_predicates
        )

    @property
    def dependencies(self) -> DependencySet:
        """The dependency set Σ every decision in this session is made under."""
        return self._dependencies

    @dependencies.setter
    def dependencies(self, dependencies: DependencySet | Sequence[Dependency]) -> None:
        self.set_dependencies(dependencies)

    def set_dependencies(
        self, dependencies: DependencySet | Sequence[Dependency]
    ) -> None:
        """Replace Σ and invalidate every cached chase result.

        Under a strict precheck a refused Σ leaves the session on its
        previous (certified) dependency set.
        """
        coerced = self._coerce_dependencies(dependencies)
        report = certificate = None
        if self.precheck != "off":
            report, certificate = self._run_precheck(coerced)
        self._dependencies = coerced
        self.precheck_report = report
        self._certificate = certificate
        self._sigma_key = None
        self._key_memo.clear()  # memoized keys embed the old Σ fingerprint
        self.cache.invalidate()

    def _run_precheck(self, dependencies: DependencySet):
        """Analyze Σ; in strict mode raise on error-severity diagnostics."""
        from ..analysis.static import analyze
        from ..exceptions import PrecheckFailedError

        report = analyze(dependencies)
        if self.precheck == "strict" and not report.ok:
            lines = [diagnostic.render_line() for diagnostic in report.errors]
            raise PrecheckFailedError(
                "strict precheck refused Σ before any chase step:\n"
                + "\n".join(lines),
                report=report,
            )
        return report, report.certificate

    @property
    def certificate(self):
        """The termination certificate of Σ (precheck modes only), or None."""
        return self._certificate

    # ------------------------------------------------------------------ #
    # Registry surface
    # ------------------------------------------------------------------ #
    def register_semantics(
        self, strategy: SemanticsStrategy, *, replace: bool = False
    ) -> SemanticsStrategy:
        """Register a third-party semantics strategy on this session.

        Replacing a strategy whose name (or alias) is already registered
        invalidates the chase cache (via the registry's shadow listener):
        cache keys carry only the semantics name, so results chased by the
        replaced strategy must not be served as the new strategy's.
        """
        return self.registry.register(strategy, replace=replace)

    def strategy_for(self, semantics: object | None = None) -> SemanticsStrategy:
        """Resolve *semantics* (default: the session default) to its strategy."""
        if semantics is None:
            semantics = self.default_semantics
        return self.registry.resolve(semantics)

    def semantics_names(self) -> tuple[str, ...]:
        """Canonical names of the semantics this session can dispatch on."""
        return self.registry.names()

    # ------------------------------------------------------------------ #
    # Chase (cached)
    # ------------------------------------------------------------------ #
    def _chase_key(self, query: ConjunctiveQuery, strategy: SemanticsStrategy, max_steps: int):
        # Σ's fingerprint only changes via set_dependencies (which resets it),
        # so it is computed once per Σ rather than on every lookup.  The key
        # carries the strategy's cache token besides its name: a cache shared
        # between sessions whose registries bind the same name to different
        # strategies (or differently-configured instances) must not serve
        # one strategy's chases as the other's.  Assembled keys are memoized
        # per live query object (keyed by strategy and budget), so a repeat
        # lookup reuses the hash-cached ChaseKey without rebuilding anything.
        strategy_key = (
            normalize_semantics_name(strategy.name),
            strategy.cache_token(),
        )
        per_query = self._key_memo.get(query)
        if per_query is None:
            per_query = {}
            self._key_memo.put(query, per_query)
        memo_key = (strategy_key, max_steps)
        key = per_query.get(memo_key)
        if key is not None:
            self._profile.cache_keys_reused += 1
            return key
        started = time.perf_counter()
        if self._sigma_key is None:
            self._sigma_key = sigma_fingerprint(self._dependencies)
        key = chase_cache_key(
            query, self._dependencies, strategy_key, max_steps,
            sigma_key=self._sigma_key,
        )
        per_query[memo_key] = key
        self._profile.cache_keys_built += 1
        self._profile.key_build_time += time.perf_counter() - started
        return key

    def chase(
        self,
        query: ConjunctiveQuery,
        semantics: object | None = None,
        max_steps: int | None = None,
    ) -> ChaseResult:
        """The terminal sound chase of *query* under Σ, served from cache when warm.

        With an active precheck and a certified Σ, a call without an explicit
        ``max_steps`` draws its budget from the certificate's static
        chase-depth bound instead of the session default — a certified chase
        can never die of budget exhaustion (the bound is astronomically
        loose but sufficient by construction, and the chase stops at its
        terminal result long before).
        """
        strategy = self.strategy_for(semantics)
        if max_steps is None:
            if self._certificate is not None:
                steps = self._certificate.step_budget_for(query)
            else:
                steps = self.max_steps
        else:
            steps = max_steps
        key = self._chase_key(query, strategy, steps)
        cached = self.cache.get(key)
        if cached is not MISSING:
            return cached
        if self.store is not None:
            stored = self.store.get(key)
            if stored is not None:
                # Promote to the in-memory cache so the next hit skips the
                # store's parse as well; no profile merge — a store hit did
                # no chase work, exactly like a memory hit.
                self.cache.put(key, stored)
                return stored
        semantics_token = getattr(strategy, "semantics", None)
        if self.chase_resumable and semantics_token is not None:
            result, checkpoint = chase_with_checkpoint(
                query, self._dependencies, semantics_token, steps,
                plan_cache=self.plan_cache,
            )
            self._checkpoints.put(self._checkpoint_key(query, strategy), checkpoint)
            self._incremental["cold_runs"] += 1
            self._incremental["steps_executed"] += result.step_count
        else:
            result = strategy.chase_with_plans(
                query, self._dependencies, steps, self.plan_cache
            )
        profile = getattr(result, "profile", None)
        if profile is not None:
            self._profile.merge(profile)
        self.cache.put(key, result)
        if self.store is not None and result.terminated:
            self.store.put(key, result)
        return result

    def sigma_subset(
        self,
        query: ConjunctiveQuery,
        semantics: object | None = None,
        max_steps: int | None = None,
    ) -> SigmaSubsetResult:
        """The maximal Σ-subset of Algorithms 1/2 for *query* under this Σ.

        The terminal sound chase is served through :meth:`chase` (so a warm
        session skips it entirely), and the per-dependency soundness scan
        shares this session's :class:`~repro.chase.plans.PlanCache` plus one
        body index and one Definition 4.3 memo across the whole scan (see
        :func:`repro.chase.sigma_subset.scan_sigma_subset`).  The scan's
        profile — binding-level extension probes, trigger dicts avoided,
        per-subset plan reuse — is folded into :meth:`chase_profile` /
        :meth:`stats`, and also returned on the result's ``scan_profile``.
        Only bag and bag-set semantics have a nontrivial subset (under set
        semantics every step is sound, so Σ^max = Σ).
        """
        strategy = self.strategy_for(semantics)
        semantics_token = getattr(strategy, "semantics", None)
        if semantics_token is None:
            raise SemanticsError(
                f"strategy {strategy.name!r} does not expose a core semantics "
                "token; sigma_subset requires one of set / bag / bag-set"
            )
        steps = max_steps if max_steps is not None else self.max_steps
        chased = self.chase(query, semantics, max_steps=steps)
        result = scan_sigma_subset(
            chased, self._dependencies, semantics_token, steps, self.plan_cache
        )
        if result.scan_profile is not None:
            self._profile.merge(result.scan_profile)
        return result

    # ------------------------------------------------------------------ #
    # Incremental chase
    # ------------------------------------------------------------------ #
    def _checkpoint_key(
        self, query: ConjunctiveQuery, strategy: SemanticsStrategy
    ) -> ChaseKey:
        # No Σ fingerprint and no step budget, unlike _chase_key: a
        # checkpoint records its own Σ and budget, and the whole point of
        # keeping it across set_dependencies is resuming after Σ grows.
        strategy_key = (
            normalize_semantics_name(strategy.name),
            strategy.cache_token(),
        )
        return ChaseKey((query.structural_key(), strategy_key))

    def checkpoint_for(
        self, query: ConjunctiveQuery, semantics: object | None = None
    ) -> "ChaseCheckpoint | None":
        """The stored chase checkpoint for *query*, or None.

        Checkpoints exist for queries chased with ``chase_resumable`` set or
        advanced through :meth:`apply_delta`; they may have been taken under
        an earlier (prefix) Σ than the session's current one.
        """
        strategy = self.strategy_for(semantics)
        checkpoint = self._checkpoints.get(self._checkpoint_key(query, strategy))
        return None if checkpoint is MISSING else checkpoint

    def apply_delta(
        self,
        query: ConjunctiveQuery,
        delta: ChaseDelta,
        semantics: object | None = None,
        max_steps: int | None = None,
    ) -> ResumeOutcome:
        """Apply an instance/Σ delta to *query* and chase the new state.

        The delta's dependency edits update the *session's* Σ (through
        :meth:`set_dependencies`, so cached chase results are invalidated and
        an active precheck re-runs — a strict precheck that refuses the new Σ
        leaves the session untouched); its atom edits produce the new query,
        available as ``outcome.checkpoint.base_query``.  When a checkpoint
        for *query* exists and the delta is monotone, the chase is *resumed*
        from the checkpointed fixpoint instead of being recomputed — a
        checkpoint taken under an earlier Σ is caught up by folding the
        missing Σ suffix into the delta.  The outcome's result is also cached
        under the new query, so a following :meth:`chase` of it is warm.

        A resumed terminal result is Σ-equivalent to the cold chase of the
        new state (exactly what every downstream equivalence/C&B test needs),
        but not in general syntactically identical to it.

        Raises :class:`~repro.exceptions.DeltaRejectedError` for structurally
        invalid deltas, with the session state untouched.
        """
        strategy = self.strategy_for(semantics)
        try:
            validate_delta(query, self._dependencies, delta)
        except DeltaRejectedError:
            self._incremental["deltas_rejected"] += 1
            raise
        previous_sigma = self._dependencies
        new_sigma = apply_delta_to_sigma(previous_sigma, delta)
        new_query = apply_delta_to_query(query, delta)
        if (
            delta.added_dependencies
            or delta.removed_dependencies
            or delta.set_valued
        ):
            # May raise PrecheckFailedError under a strict precheck; nothing
            # has been chased or cached yet, so the session stays consistent.
            self.set_dependencies(new_sigma)
        semantics_token = getattr(strategy, "semantics", None)
        if max_steps is None:
            if self._certificate is not None:
                steps = self._certificate.step_budget_for(new_query)
            else:
                steps = self.max_steps
        else:
            steps = max_steps

        outcome: ResumeOutcome | None = None
        if semantics_token is None:
            result = strategy.chase_with_plans(
                new_query, self._dependencies, steps, self.plan_cache
            )
            outcome = ResumeOutcome(
                result=result,
                checkpoint=None,
                resumed=False,
                fallback_reason="unsupported-strategy",
                replayed_steps=0,
                new_steps=result.step_count,
            )
        elif delta.is_monotone:
            checkpoint = self._checkpoints.get(self._checkpoint_key(query, strategy))
            if checkpoint is not MISSING:
                catchup = sigma_extension_suffix(checkpoint.sigma, previous_sigma)
                if catchup is not None:
                    suffix, markers = catchup
                    effective = ChaseDelta(
                        added_atoms=delta.added_atoms,
                        added_dependencies=suffix + delta.added_dependencies,
                        set_valued=markers | delta.set_valued,
                    )
                    outcome = resume_chase(
                        checkpoint, effective,
                        max_steps=steps, plan_cache=self.plan_cache,
                    )
                else:
                    outcome = self._cold_outcome(
                        new_query, semantics_token, steps, "sigma-diverged"
                    )
            else:
                outcome = self._cold_outcome(
                    new_query, semantics_token, steps, "no-checkpoint"
                )
        else:
            outcome = self._cold_outcome(
                new_query, semantics_token, steps, "non-monotone-delta"
            )

        counters = self._incremental
        counters["deltas_applied"] += 1
        if outcome.resumed:
            counters["resumed_runs"] += 1
        else:
            counters["cold_runs"] += 1
        counters["steps_replayed"] += outcome.replayed_steps
        counters["steps_executed"] += outcome.new_steps
        counters["steps_saved"] += outcome.steps_saved
        profile = getattr(outcome.result, "profile", None)
        if profile is not None:
            self._profile.merge(profile)
        key = self._chase_key(new_query, strategy, steps)
        self.cache.put(key, outcome.result)
        if self.store is not None and outcome.result.terminated:
            self.store.put(key, outcome.result)
        if outcome.checkpoint is not None:
            self._checkpoints.put(
                self._checkpoint_key(new_query, strategy), outcome.checkpoint
            )
        return outcome

    def _cold_outcome(
        self,
        query: ConjunctiveQuery,
        semantics: Semantics,
        steps: int,
        reason: str,
    ) -> ResumeOutcome:
        result, checkpoint = chase_with_checkpoint(
            query, self._dependencies, semantics, steps, plan_cache=self.plan_cache
        )
        return ResumeOutcome(
            result=result,
            checkpoint=checkpoint,
            resumed=False,
            fallback_reason=reason,
            replayed_steps=0,
            new_steps=result.step_count,
        )

    # ------------------------------------------------------------------ #
    # Decisions
    # ------------------------------------------------------------------ #
    def decide(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        semantics: object | None = None,
        max_steps: int | None = None,
    ) -> EquivalenceVerdict:
        """Decide ``Q1 ≡Σ,X Q2`` for semantics X, with chases served from cache."""
        strategy = self.strategy_for(semantics)
        chased1 = self.chase(q1, strategy.name, max_steps).query
        chased2 = self.chase(q2, strategy.name, max_steps).query
        equivalent = strategy.equivalent_chased(chased1, chased2, self._dependencies)
        return EquivalenceVerdict(equivalent, strategy.token, chased1, chased2)

    def decide_all(
        self,
        q1: ConjunctiveQuery,
        q2: ConjunctiveQuery,
        max_steps: int | None = None,
    ) -> Mapping[Semantics, EquivalenceVerdict]:
        """Verdicts under bag, bag-set, and set semantics (one chase each).

        Each input is chased at most once per semantics — repeated calls on
        a warm session chase nothing at all — and the Proposition 6.1
        implication chain (bag ⇒ bag-set ⇒ set) is asserted on the verdicts
        before they are returned.
        """
        verdicts = {
            semantics: self.decide(q1, q2, semantics, max_steps)
            for semantics in (Semantics.BAG, Semantics.BAG_SET, Semantics.SET)
        }
        assert_proposition_6_1(verdicts)
        return verdicts

    def reformulate(
        self,
        query: ConjunctiveQuery | AggregateQuery,
        semantics: object | None = None,
        max_steps: int | None = None,
        **kwargs,
    ):
        """Enumerate Σ-equivalent reformulations via the semantics' C&B variant.

        Aggregate queries dispatch to Max-Min-C&B / Sum-Count-C&B on their
        cores (Theorem 6.3) — the semantics is determined by the aggregate
        function, so passing one explicitly is an error rather than being
        silently ignored.  Plain CQ queries run the strategy's C&B with
        every chase — universal plan and backchase candidates — routed
        through this session's cache.
        """
        steps = self.max_steps if max_steps is None else max_steps
        if isinstance(query, AggregateQuery):
            if semantics is not None:
                raise SemanticsError(
                    "aggregate queries choose their semantics from the "
                    "aggregate function (Theorem 6.3: set for max/min, "
                    "bag-set for sum/count); call reformulate() without "
                    "a semantics argument"
                )
            from ..reformulation.aggregate_cb import reformulate_aggregate_query

            return reformulate_aggregate_query(
                query, self._dependencies, steps, engine=self, **kwargs
            )
        strategy = self.strategy_for(semantics)
        return strategy.reformulate(
            query, self._dependencies, steps, engine=self, **kwargs
        )

    # ------------------------------------------------------------------ #
    # Batch pipelines
    # ------------------------------------------------------------------ #
    def decide_many(
        self,
        pairs: Iterable[tuple[ConjunctiveQuery, ConjunctiveQuery]],
        semantics: object | None = None,
        max_steps: int | None = None,
        concurrency: int | None = None,
    ):
        """Decide every (Q1, Q2) pair; see :func:`repro.session.batch.decide_many`."""
        from .batch import decide_many

        return decide_many(
            self, pairs, semantics=semantics, max_steps=max_steps, concurrency=concurrency
        )

    def reformulate_many(
        self,
        queries: Iterable[ConjunctiveQuery],
        semantics: object | None = None,
        max_steps: int | None = None,
        concurrency: int | None = None,
        **kwargs,
    ):
        """Reformulate every query; see :func:`repro.session.batch.reformulate_many`."""
        from .batch import reformulate_many

        return reformulate_many(
            self,
            queries,
            semantics=semantics,
            max_steps=max_steps,
            concurrency=concurrency,
            **kwargs,
        )

    def _ensure_batch_pool(self, concurrency: int):
        """The reusable worker pool for batch concurrency (lazily created).

        The pool is keyed on ``(concurrency, max_steps, Σ fingerprint)``:
        workers bind Σ and the step budget at initializer time, so any change
        to either tears the old pool down and builds a fresh one.  Workers
        warm their intern tables from a shared-memory snapshot
        (:class:`~repro.core.terms.SharedInternSnapshot`) serialized once
        here, falling back to an inline pickled snapshot on platforms
        without shared memory.
        """
        if self._sigma_key is None:
            self._sigma_key = sigma_fingerprint(self._dependencies)
        key = (concurrency, self.max_steps, self._sigma_key)
        if self._batch_pool is not None and self._batch_pool_key == key:
            return self._batch_pool
        self._teardown_batch_pool()
        from concurrent.futures import ProcessPoolExecutor

        from ..core.terms import SharedInternSnapshot, export_interned_terms
        from .batch import _init_worker

        shm = None
        inline = None
        try:
            shm = SharedInternSnapshot.create()
        except Exception:
            inline = export_interned_terms()
        self._batch_pool = ProcessPoolExecutor(
            max_workers=concurrency,
            initializer=_init_worker,
            initargs=(
                self._dependencies,
                self.max_steps,
                inline,
                shm.name if shm is not None else None,
            ),
        )
        self._batch_shm = shm
        self._batch_pool_key = key
        self._batch_pools_created += 1
        return self._batch_pool

    def _teardown_batch_pool(self, wait: bool = True) -> None:
        pool, self._batch_pool, self._batch_pool_key = self._batch_pool, None, None
        if pool is not None:
            try:
                pool.shutdown(wait=wait, cancel_futures=True)
            except Exception:
                pass
        shm, self._batch_shm = self._batch_shm, None
        if shm is not None:
            shm.destroy()

    def close(self) -> None:
        """Release pooled resources: the batch worker pool and its shm segment.

        The session stays usable afterwards — the next concurrent batch call
        simply builds a fresh pool.  An attached store is *not* closed here
        (its lifetime belongs to whoever attached it, e.g. the serve daemon).
        """
        self._teardown_batch_pool()

    def __del__(self) -> None:  # pragma: no cover - GC timing is not testable
        # Best-effort: a dropped session must not leak worker processes or a
        # shared-memory segment.  Interpreter shutdown may have torn half the
        # world down already, hence the blanket guard.
        try:
            self._teardown_batch_pool(wait=False)
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def cache_stats(self) -> CacheStats:
        """Hit/miss/eviction counters of the chase cache."""
        return self.cache.stats

    def plan_cache_stats(self) -> tuple[int, int, int]:
        """``(hits, misses, evictions)`` of the compiled-plan cache.

        By default the plan cache is process-wide (plans, like interned
        terms, are process-level state), so these counters cover every chase
        in the process, not just this session's.
        """
        cache = self.plan_cache
        return (cache.hits, cache.misses, cache.evictions)

    def chase_profile(self) -> ChaseProfile:
        """Aggregated :class:`ChaseProfile` over this session's cold chases.

        Warm (cached) chases contribute nothing — their saved work is the
        point — so reading this alongside :meth:`cache_stats` gives the full
        picture: what the cold path did, and how often the cache skipped it.
        """
        snapshot = ChaseProfile(runs=0)
        snapshot.merge(self._profile)
        return snapshot

    def stats(self) -> dict[str, object]:
        """One unified, JSON-able snapshot of every cache/engine counter.

        This is *the* stats surface: the CLI ``--profile`` output and the
        ``repro serve`` ``stats`` endpoint both read it, so the two can
        never drift apart.  Sections:

        * ``chase_cache`` — the in-memory result cache
          (:meth:`cache_stats`, flattened);
        * ``plan_cache`` — the compiled-match-plan cache (process-wide by
          default, see :meth:`plan_cache_stats`);
        * ``intern`` — process-wide term intern-table counters and live
          table sizes;
        * ``profile`` — the aggregate cold-chase profile
          (:meth:`chase_profile`, as a dict);
        * ``incremental`` — resumed-vs-cold run counts, replayed/executed/
          saved step counters, and live checkpoint count of the incremental
          chase layer (:meth:`apply_delta` / ``chase_resumable``);
        * ``store`` — the persistent store's counters, present only when a
          store is attached;
        * ``precheck`` — mode, certification status, and diagnostic counts,
          present only when the session was built with ``precheck=``.
        """
        from ..core.terms import INTERN_STATS, intern_table_sizes

        cache = self.cache.stats
        plan_hits, plan_misses, plan_evictions = self.plan_cache_stats()
        variables, constants = intern_table_sizes()
        stats: dict[str, object] = {
            "chase_cache": {
                "hits": cache.hits,
                "misses": cache.misses,
                "evictions": cache.evictions,
                "invalidations": cache.invalidations,
                "size": cache.size,
                "maxsize": cache.maxsize,
                "hit_rate": cache.hit_rate,
            },
            "plan_cache": {
                "hits": plan_hits,
                "misses": plan_misses,
                "evictions": plan_evictions,
            },
            "intern": {
                "hits": INTERN_STATS.hits,
                "misses": INTERN_STATS.misses,
                "variables": variables,
                "constants": constants,
            },
            "profile": self.chase_profile().as_dict(),
            "incremental": {
                **self._incremental,
                "checkpoints": len(self._checkpoints),
                "resumable": self.chase_resumable,
            },
            "batch_pool": {
                "workers": self._batch_pool_key[0] if self._batch_pool_key else 0,
                "pools_created": self._batch_pools_created,
            },
        }
        if self.store is not None:
            stats["store"] = dict(self.store.stats())
        if self.precheck != "off":
            report = self.precheck_report
            stats["precheck"] = {
                "mode": self.precheck,
                "certified": self._certificate is not None,
                "errors": len(report.errors) if report is not None else 0,
                "warnings": len(report.warnings) if report is not None else 0,
                "max_rank": (
                    self._certificate.max_rank
                    if self._certificate is not None
                    else None
                ),
            }
        return stats

    def set_store(self, store: "ChaseResultStore | None") -> None:
        """Attach (or detach, with ``None``) a persistent chase-result store.

        The in-memory cache is left alone — its entries stay valid — but
        every future miss consults the new store and every future cold chase
        writes through to it.
        """
        self.store = store

    def clear_cache(self) -> None:
        """Drop every cached chase result (Σ stays untouched)."""
        self.cache.invalidate()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session({len(self._dependencies)} dependencies, "
            f"semantics={list(self.semantics_names())}, cache={self.cache!r})"
        )


def merge_stats(snapshots: Sequence[Mapping[str, Any]]) -> dict[str, Any]:
    """Merge several :meth:`Session.stats` snapshots into one combined view.

    This is the cross-worker aggregation of multi-worker serving: each engine
    process reports its own snapshot, and the merged view sums every numeric
    leaf per section (cache hits, chase runs, intern misses ...), ORs the
    booleans, keeps the first occurrence of non-numeric values (paths,
    modes), and recomputes any ``hit_rate`` from the summed hits/misses
    (summing rates would be meaningless).
    """
    merged: dict[str, Any] = {}
    for snapshot in snapshots:
        for section, values in snapshot.items():
            if not isinstance(values, Mapping):
                continue
            bucket = merged.setdefault(section, {})
            for key, value in values.items():
                if isinstance(value, bool):
                    bucket[key] = bool(bucket.get(key, False)) or value
                elif isinstance(value, (int, float)):
                    existing = bucket.get(key, 0)
                    bucket[key] = (existing if isinstance(existing, (int, float)) else 0) + value
                else:
                    bucket.setdefault(key, value)
    for bucket in merged.values():
        if "hit_rate" in bucket:
            hits = bucket.get("hits", 0)
            misses = bucket.get("misses", 0)
            lookups = (hits if isinstance(hits, (int, float)) else 0) + (
                misses if isinstance(misses, (int, float)) else 0
            )
            bucket["hit_rate"] = (hits / lookups) if lookups else 0.0
    return merged


def assert_proposition_6_1(
    verdicts: Mapping[Semantics, EquivalenceVerdict]
) -> None:
    """Assert the Proposition 6.1 implication chain on a verdict triple.

    Bag equivalence implies bag-set equivalence implies set equivalence; a
    violation means a chase or equivalence test is unsound, so it is raised
    as an :class:`AssertionError` rather than returned as data.  The check
    is an explicit raise (not an ``assert`` statement) so it survives
    ``python -O``.
    """
    bag = verdicts.get(Semantics.BAG)
    bag_set = verdicts.get(Semantics.BAG_SET)
    set_ = verdicts.get(Semantics.SET)
    if bag is not None and bag_set is not None:
        if bag.equivalent and not bag_set.equivalent:
            raise AssertionError(
                "Proposition 6.1 violated: equivalent under bag semantics "
                "but not under bag-set semantics"
            )
    if bag_set is not None and set_ is not None:
        if bag_set.equivalent and not set_.equivalent:
            raise AssertionError(
                "Proposition 6.1 violated: equivalent under bag-set semantics "
                "but not under set semantics"
            )
