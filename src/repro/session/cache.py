"""Chase-result caching.

The sound chase dominates the cost of every decision procedure in the
library: an equivalence test chases both inputs, ``decide_all`` chases them
under three semantics, and a C&B run chases the input plus every backchase
candidate.  Across a workload the same (query, Σ, semantics, step-budget)
combinations recur constantly — C&B candidates are re-decided, dashboards
re-ask the same pairs — so the Session keeps terminal chase results in a
bounded LRU cache.

Keys are *canonicalized*: the query contributes its
:meth:`~repro.core.query.ConjunctiveQuery.structural_key` (deterministic
variable renaming, so alpha-variant queries share an entry), Σ contributes
its dependencies in order (chase strategy is order-sensitive) minus their
display names, plus the set-valued predicate markers.  Both parts are
memoized at their source — the structural key on the query object, the Σ
fingerprint on the :class:`~repro.dependencies.base.DependencySet` — and the
assembled :class:`ChaseKey` caches its own hash, so a warm lookup hashes one
precomputed int instead of re-walking the query and Σ.  Cached
:class:`~repro.chase.set_chase.ChaseResult` objects are immutable in
practice and shared by reference; the chase result of an alpha-variant hit
differs from a fresh chase only by a variable renaming, which every
downstream test (homomorphism, isomorphism, C&B) is invariant under.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterable

from ..core.query import ConjunctiveQuery
from ..dependencies.base import Dependency, DependencySet


class _Missing:
    """Sentinel type for :data:`MISSING`; never stored as a cache value."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<cache MISSING>"


#: Returned by :meth:`ChaseCache.get` on a miss.  A dedicated sentinel rather
#: than ``None`` so legitimately cached falsy values (``None``, ``False``,
#: ``0``, empty containers) are distinguishable from absence — comparing the
#: result against ``None`` would silently recompute them and double-count the
#: lookup as a miss.
MISSING = _Missing()


def sigma_fingerprint(dependencies: DependencySet | Iterable[Dependency]) -> Hashable:
    """A hashable, name-insensitive fingerprint of a dependency set.

    Delegates to :attr:`~repro.dependencies.base.DependencySet.fingerprint`,
    which memoizes the value per set object; a plain iterable of
    dependencies is coerced (and fingerprinted with no set-valued markers).
    """
    return DependencySet.coerce(dependencies).fingerprint


class ChaseKey:
    """An assembled chase-cache key with its hash computed exactly once.

    A key tuple's hash is recomputed by the dict on *every* ``get`` and
    ``move_to_end``, walking the whole structural key and Σ fingerprint.
    Wrapping the tuple caches that hash; equality keeps the full value
    comparison (identical parts compare by pointer, so a warm hit is cheap),
    making the wrapper safe to mix with arbitrary keys in one cache.
    """

    __slots__ = ("parts", "_hash")

    def __init__(self, parts: tuple):
        self.parts = parts
        self._hash = hash(parts)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if isinstance(other, ChaseKey):
            return self._hash == other._hash and self.parts == other.parts
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ChaseKey({self.parts!r})"


def chase_cache_key(
    query: ConjunctiveQuery,
    dependencies: DependencySet | Iterable[Dependency],
    semantics: Hashable,
    max_steps: int,
    *,
    sigma_key: Hashable | None = None,
) -> Hashable:
    """The canonical cache key of one chase invocation.

    ``semantics`` is any hashable semantics discriminator — the Session
    passes a (name, strategy-class) pair so a cache shared across sessions
    never conflates two strategies bound to the same name.  ``sigma_key``
    lets callers that already hold ``sigma_fingerprint(Σ)`` (the Session
    memoizes it per Σ) skip recomputing it.  The Session additionally
    memoizes the returned :class:`ChaseKey` per live query object, so on a
    warm session this function is not even called.
    """
    if sigma_key is None:
        sigma_key = sigma_fingerprint(dependencies)
    return ChaseKey((query.structural_key(), sigma_key, semantics, max_steps))


class WeakKeyLRU:
    """A weak-keyed memo bounded by the chase cache's LRU policy.

    The Session's per-query :class:`ChaseKey` memo is weak keyed so it can
    never pin a query a caller has dropped — but weak keys alone do not
    bound it: a pathological caller holding millions of distinct live
    queries would pay one entry each for as long as it holds them.  This
    wrapper adds the same least-recently-used eviction the
    :class:`ChaseCache` applies, so the memo's footprint is capped no matter
    what the caller keeps alive.

    Keys are stored as :class:`weakref.ref` objects (which hash and compare
    like their referents while alive), with a death callback that drops the
    entry — the same semantics as a ``WeakKeyDictionary``, plus recency
    tracking and a size bound.
    """

    __slots__ = ("maxsize", "_entries", "evictions")

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError(f"memo maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: "OrderedDict[weakref.ref, Any]" = OrderedDict()
        self.evictions = 0

    def get(self, key: object) -> Any:
        """The memoized value for *key* (refreshing its recency), or None."""
        ref = weakref.ref(key)
        value = self._entries.get(ref)
        if value is not None:
            self._entries.move_to_end(ref)
        return value

    def put(self, key: object, value: object) -> None:
        """Memoize *value* for *key*, evicting the least recently used entry."""
        entries = self._entries
        probe = weakref.ref(key)
        if probe in entries:
            # Keep the stored ref (it carries the death callback).
            entries[probe] = value
            entries.move_to_end(probe)
            return

        def _drop(ref: weakref.ref, _entries: OrderedDict = entries) -> None:
            _entries.pop(ref, None)

        entries[weakref.ref(key, _drop)] = value
        while len(entries) > self.maxsize:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (the eviction counter survives)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WeakKeyLRU(size={len(self._entries)}/{self.maxsize})"


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of cache effectiveness counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0
    size: int = 0
    maxsize: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ChaseCache:
    """A bounded LRU cache for terminal chase results."""

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be positive, got {maxsize}")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._invalidations = 0

    # ------------------------------------------------------------------ #
    def get(self, key: Hashable):
        """The cached value for *key*, or :data:`MISSING` (counts a hit/miss).

        Compare the result against ``MISSING`` (by identity), never against
        ``None``: falsy values are valid cache entries and count as hits.
        """
        try:
            value = self._entries[key]
        except KeyError:
            self._misses += 1
            return MISSING
        self._entries.move_to_end(key)
        self._hits += 1
        return value

    def put(self, key: Hashable, value: object) -> None:
        """Insert *value*, evicting the least recently used entry if full."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
            self._evictions += 1

    def invalidate(self) -> None:
        """Drop every entry (counters other than ``invalidations`` survive)."""
        self._entries.clear()
        self._invalidations += 1

    # ------------------------------------------------------------------ #
    @property
    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            invalidations=self._invalidations,
            size=len(self._entries),
            maxsize=self.maxsize,
        )

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        stats = self.stats
        return (
            f"ChaseCache(size={stats.size}/{stats.maxsize}, "
            f"hits={stats.hits}, misses={stats.misses})"
        )
