"""Experiment E3 — sound vs unsound chase steps (Examples 4.4–4.8, E.1, E.2).

Each benchmark replays one of the paper's unsoundness demonstrations: it
evaluates the original query and the (unsoundly) chased query on the
counterexample database and records the diverging multiplicities, and it
checks that the sound chase refuses the offending step while the equivalence
tests reject the chased query.  The regularization ablation (chase with the
original σ4 as a whole vs its regularized components, Examples 4.4/4.5) is
covered by ``bench_example_4_5_regularization_ablation``.
"""

from __future__ import annotations

from _util import record

from repro.chase import bag_chase, bag_set_chase
from repro.core import are_isomorphic
from repro.database import DatabaseInstance
from repro.datalog import parse_query
from repro.equivalence import decide_equivalence
from repro.evaluation import evaluate


def bench_example_4_5_regularization_ablation(benchmark, ex41):
    """Applying non-regularized σ4 wholesale is unsound; its regularized
    t-component alone is sound (and the sound chase applies exactly that)."""
    sigma_prime = ex41.dependencies_without_sigma2
    q4_prime = parse_query("Qp(X) :- p(X,Y), t(X,Y,W), u(X,Z)")
    database = DatabaseInstance.from_dict(
        {"p": [(1, 2)], "t": [(1, 2, 3)], "u": [(1, 4), (1, 5)], "r": [], "s": []},
        ex41.schema,
    )

    def run():
        chased = bag_chase(ex41.q4, sigma_prime).query
        return {
            "sound_chase_is_q3": are_isomorphic(chased, ex41.q3),
            "whole_sigma4_equivalent": bool(
                decide_equivalence(q4_prime, ex41.q4, sigma_prime, "bag-set")
            ),
            "Q4(D,BS)": evaluate(ex41.q4, database, "bag-set").multiplicity((1,)),
            "Q4'(D,BS)": evaluate(q4_prime, database, "bag-set").multiplicity((1,)),
        }

    result = benchmark(run)
    assert result == {
        "sound_chase_is_q3": True,
        "whole_sigma4_equivalent": False,
        "Q4(D,BS)": 1,
        "Q4'(D,BS)": 2,
    }
    record(benchmark, measured=result, paper_expected=result)


def bench_example_4_6_modified_chase_is_unsound(benchmark, ex46):
    def run():
        return {
            "Q(D,BS)": evaluate(ex46.query, ex46.counterexample, "bag-set").multiplicity((1,)),
            "Q'(D,BS)": evaluate(
                ex46.query_modified_chase, ex46.counterexample, "bag-set"
            ).multiplicity((1,)),
            "equivalent": bool(
                decide_equivalence(
                    ex46.query, ex46.query_modified_chase, ex46.dependencies, "bag-set"
                )
            ),
        }

    result = benchmark(run)
    assert result == {"Q(D,BS)": 2, "Q'(D,BS)": 1, "equivalent": False}
    record(benchmark, measured=result, paper_expected=result)


def bench_example_4_8_traditional_step_is_sound(benchmark, ex46):
    def run():
        chased = bag_set_chase(ex46.query, ex46.dependencies).query
        return {
            "chase_is_Qpp": are_isomorphic(chased, ex46.query_traditional_chase),
            "equivalent": bool(
                decide_equivalence(
                    ex46.query, ex46.query_traditional_chase, ex46.dependencies, "bag"
                )
            ),
        }

    result = benchmark(run)
    assert result == {"chase_is_Qpp": True, "equivalent": True}
    record(benchmark, measured=result)


def bench_example_e_1_bag_unsoundness(benchmark, exE1):
    def run():
        return {
            "Q(D,B)": evaluate(exE1.query, exE1.counterexample, "bag").multiplicity(("a",)),
            "Q'(D,B)": evaluate(exE1.chased_query, exE1.counterexample, "bag").multiplicity(("a",)),
            "bag_chase_applies_step": not are_isomorphic(
                bag_chase(exE1.query, exE1.dependencies).query, exE1.query
            ),
        }

    result = benchmark(run)
    assert result == {"Q(D,B)": 1, "Q'(D,B)": 2, "bag_chase_applies_step": False}
    record(benchmark, measured=result, paper_expected=result)


def bench_example_e_2_bag_set_unsoundness(benchmark, exE2):
    def run():
        return {
            "Q(D,BS)": evaluate(exE2.query, exE2.counterexample, "bag-set").multiplicity(("a",)),
            "Q'(D,BS)": evaluate(
                exE2.chased_query, exE2.counterexample, "bag-set"
            ).multiplicity(("a",)),
            "bag_set_chase_applies_step": not are_isomorphic(
                bag_set_chase(exE2.query, exE2.dependencies).query, exE2.query
            ),
        }

    result = benchmark(run)
    assert result == {"Q(D,BS)": 1, "Q'(D,BS)": 2, "bag_set_chase_applies_step": False}
    record(benchmark, measured=result, paper_expected=result)
