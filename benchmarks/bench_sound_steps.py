"""Experiment E3 — sound vs unsound chase steps (Examples 4.4–4.8, E.1, E.2).

Each benchmark replays one of the paper's unsoundness demonstrations: it
evaluates the original query and the (unsoundly) chased query on the
counterexample database and records the diverging multiplicities, and it
checks that the sound chase refuses the offending step while the equivalence
tests reject the chased query.  The regularization ablation (chase with the
original σ4 as a whole vs its regularized components, Examples 4.4/4.5) is
covered by ``bench_example_4_5_regularization_ablation``.

The **probe tiers** (``bench_sound_steps_cold_probe``) additionally measure
the per-step soundness tests themselves — ``is_sound_chase_step`` across all
of Σ against a workload query, the exact inner loop of every chase round and
of Algorithms 1/2 — on the binding-level kernel (shared index, per-Σ plan
cache, Definition 4.3 memo) against a reference scan assembled from the
frozen :mod:`repro.chase.reference` building blocks.  Both scans must agree
on every verdict; the large tier asserts the ≥1.3x speedup floor of the
binding-level rework and CI trend-gates the small tier's counters.
"""

from __future__ import annotations

import time

import pytest
from _util import record, reference_sound_step_verdicts

from repro.chase import bag_chase, bag_set_chase, is_sound_chase_step
from repro.chase.plans import PlanCache
from repro.chase.profile import ChaseProfile
from repro.core import TargetIndex, are_isomorphic
from repro.database import DatabaseInstance
from repro.datalog import parse_query
from repro.equivalence import decide_equivalence
from repro.evaluation import evaluate
from repro.paperlib import clique_workload, h_family, star_workload
from repro.semantics import Semantics


# Probe tiers: every dependency of Σ soundness-tested against the workload
# query (the state every chase round scans), under both non-trivial
# semantics.  Query size and |Σ| grow together.
PROBE_TIERS = {
    "small": (("star", (8, 8)), ("clique", (6, 4))),
    "large": (("star", (20, 20)), ("clique", (9, 8)), ("h_family", (4,))),
}
_WORKLOADS = {
    "star": star_workload,
    "clique": clique_workload,
    "h_family": h_family,
}
#: Minimum accelerated-vs-reference speedup asserted on the large tier (the
#: binding-level kernel bar; ~3.4x measured on a quiet machine).
PROBE_SPEEDUP_FLOOR = 1.3
PROBE_MAX_STEPS = 5000


def _probe_cases(tier: str):
    return [
        (label, _WORKLOADS[label](*parameters))
        for label, parameters in PROBE_TIERS[tier]
    ]


def _accelerated_scan(query, dependencies, semantics):
    """One shared-state soundness scan of Σ, as the sigma-subset drivers run it."""
    cache = PlanCache()
    index = TargetIndex(query.body)
    memo: dict = {}
    profile = ChaseProfile(semantics=str(semantics))
    verdicts = [
        is_sound_chase_step(
            query, dependency, dependencies, semantics, PROBE_MAX_STEPS,
            plan_cache=cache, index=index, memo=memo, profile=profile,
        )
        for dependency in dependencies
    ]
    profile.retire_index(index)
    return verdicts, profile


@pytest.mark.parametrize("tier", list(PROBE_TIERS))
def bench_sound_steps_cold_probe(benchmark, tier):
    """Per-step soundness scans: binding-level kernel vs frozen reference."""
    cases = _probe_cases(tier)

    def run_accelerated():
        return [
            _accelerated_scan(w.query, w.dependencies, semantics)
            for _, w in cases
            for semantics in (Semantics.BAG, Semantics.BAG_SET)
        ]

    per_case = {}
    accelerated_total = reference_total = 0.0
    for label, workload in cases:
        for semantics in (Semantics.BAG, Semantics.BAG_SET):
            started = time.perf_counter()
            fast, profile = _accelerated_scan(
                workload.query, workload.dependencies, semantics
            )
            accelerated_seconds = time.perf_counter() - started
            started = time.perf_counter()
            slow = reference_sound_step_verdicts(
                workload.query, workload.dependencies, semantics, PROBE_MAX_STEPS
            )
            reference_seconds = time.perf_counter() - started
            assert fast == slow, (
                f"{tier}/{label}[{semantics}]: soundness verdicts diverge "
                "from the reference scan"
            )
            accelerated_total += accelerated_seconds
            reference_total += reference_seconds
            per_case[f"{label}.{semantics}"] = {
                "accelerated_seconds": round(accelerated_seconds, 6),
                "reference_seconds": round(reference_seconds, 6),
                "unsound": sum(1 for verdict in fast if not verdict),
                "extension_probes": profile.extension_probes,
                "dicts_avoided": profile.dicts_avoided,
                "subset_plans_reused": profile.subset_plans_reused,
                "assignment_fixing_tests": profile.assignment_fixing_tests,
            }

    speedup = reference_total / accelerated_total
    benchmark(run_accelerated)
    total_probes = sum(case["extension_probes"] for case in per_case.values())
    record(
        benchmark,
        tier=tier,
        probe_speedup=round(speedup, 2),
        accelerated_seconds=round(accelerated_total, 6),
        reference_seconds=round(reference_total, 6),
        extension_probes=total_probes,
        scans=per_case,
    )
    assert total_probes > 0, "the binding-level probe layer never ran"
    if tier == "large":
        assert speedup >= PROBE_SPEEDUP_FLOOR, (
            f"large-tier soundness-scan speedup regressed to {speedup:.2f}x "
            f"(floor {PROBE_SPEEDUP_FLOOR}x)"
        )


def bench_example_4_5_regularization_ablation(benchmark, ex41):
    """Applying non-regularized σ4 wholesale is unsound; its regularized
    t-component alone is sound (and the sound chase applies exactly that)."""
    sigma_prime = ex41.dependencies_without_sigma2
    q4_prime = parse_query("Qp(X) :- p(X,Y), t(X,Y,W), u(X,Z)")
    database = DatabaseInstance.from_dict(
        {"p": [(1, 2)], "t": [(1, 2, 3)], "u": [(1, 4), (1, 5)], "r": [], "s": []},
        ex41.schema,
    )

    def run():
        chased = bag_chase(ex41.q4, sigma_prime).query
        return {
            "sound_chase_is_q3": are_isomorphic(chased, ex41.q3),
            "whole_sigma4_equivalent": bool(
                decide_equivalence(q4_prime, ex41.q4, sigma_prime, "bag-set")
            ),
            "Q4(D,BS)": evaluate(ex41.q4, database, "bag-set").multiplicity((1,)),
            "Q4'(D,BS)": evaluate(q4_prime, database, "bag-set").multiplicity((1,)),
        }

    result = benchmark(run)
    assert result == {
        "sound_chase_is_q3": True,
        "whole_sigma4_equivalent": False,
        "Q4(D,BS)": 1,
        "Q4'(D,BS)": 2,
    }
    record(benchmark, measured=result, paper_expected=result)


def bench_example_4_6_modified_chase_is_unsound(benchmark, ex46):
    def run():
        return {
            "Q(D,BS)": evaluate(ex46.query, ex46.counterexample, "bag-set").multiplicity((1,)),
            "Q'(D,BS)": evaluate(
                ex46.query_modified_chase, ex46.counterexample, "bag-set"
            ).multiplicity((1,)),
            "equivalent": bool(
                decide_equivalence(
                    ex46.query, ex46.query_modified_chase, ex46.dependencies, "bag-set"
                )
            ),
        }

    result = benchmark(run)
    assert result == {"Q(D,BS)": 2, "Q'(D,BS)": 1, "equivalent": False}
    record(benchmark, measured=result, paper_expected=result)


def bench_example_4_8_traditional_step_is_sound(benchmark, ex46):
    def run():
        chased = bag_set_chase(ex46.query, ex46.dependencies).query
        return {
            "chase_is_Qpp": are_isomorphic(chased, ex46.query_traditional_chase),
            "equivalent": bool(
                decide_equivalence(
                    ex46.query, ex46.query_traditional_chase, ex46.dependencies, "bag"
                )
            ),
        }

    result = benchmark(run)
    assert result == {"chase_is_Qpp": True, "equivalent": True}
    record(benchmark, measured=result)


def bench_example_e_1_bag_unsoundness(benchmark, exE1):
    def run():
        return {
            "Q(D,B)": evaluate(exE1.query, exE1.counterexample, "bag").multiplicity(("a",)),
            "Q'(D,B)": evaluate(exE1.chased_query, exE1.counterexample, "bag").multiplicity(("a",)),
            "bag_chase_applies_step": not are_isomorphic(
                bag_chase(exE1.query, exE1.dependencies).query, exE1.query
            ),
        }

    result = benchmark(run)
    assert result == {"Q(D,B)": 1, "Q'(D,B)": 2, "bag_chase_applies_step": False}
    record(benchmark, measured=result, paper_expected=result)


def bench_example_e_2_bag_set_unsoundness(benchmark, exE2):
    def run():
        return {
            "Q(D,BS)": evaluate(exE2.query, exE2.counterexample, "bag-set").multiplicity(("a",)),
            "Q'(D,BS)": evaluate(
                exE2.chased_query, exE2.counterexample, "bag-set"
            ).multiplicity(("a",)),
            "bag_set_chase_applies_step": not are_isomorphic(
                bag_set_chase(exE2.query, exE2.dependencies).query, exE2.query
            ),
        }

    result = benchmark(run)
    assert result == {"Q(D,BS)": 1, "Q'(D,BS)": 2, "bag_set_chase_applies_step": False}
    record(benchmark, measured=result, paper_expected=result)
