"""Experiment E4 — Theorem 4.2 / Example 4.9 / Appendix D (Lemma D.1).

Bag equivalence in the presence of set-enforcing constraints only:
duplicate subgoals over set-enforced relations are harmless (Q3 vs Q5),
duplicate subgoals over possibly-bag relations are not (Q7 vs Q8), and the
Lemma D.1 counterexample construction produces the multiplicity gap
m^(n1) vs ~m^(n2) that the proof relies on (Example D.2: m² vs m for Q7/Q8).

The ablation toggle of DESIGN.md — running the bag-equivalence test with and
without the duplicate-removal rule — is ``bench_theorem_4_2_ablation``.
"""

from __future__ import annotations

from _util import record

from repro.core import is_bag_equivalent, is_bag_equivalent_with_set_enforced
from repro.database import DatabaseInstance
from repro.evaluation import evaluate


def bench_example_4_9_duplicate_over_set_enforced_relation(benchmark, ex41):
    def run():
        return {
            "plain_bag_equivalence": is_bag_equivalent(ex41.q3, ex41.q5),
            "with_set_enforced_s_t": is_bag_equivalent_with_set_enforced(
                ex41.q3, ex41.q5, {"s", "t"}
            ),
        }

    result = benchmark(run)
    assert result == {"plain_bag_equivalence": False, "with_set_enforced_s_t": True}
    record(benchmark, measured=result, paper_expected=result)


def bench_example_d_1_counterexample(benchmark, ex41):
    def run():
        return {
            "Q3(D,B)": evaluate(ex41.q3, ex41.counterexample_d1, "bag").multiplicity((1,)),
            "Q5(D,B)": evaluate(ex41.q5, ex41.counterexample_d1, "bag").multiplicity((1,)),
        }

    result = benchmark(run)
    assert result == {"Q3(D,B)": 2, "Q5(D,B)": 4}
    record(benchmark, measured=result, paper_expected=result)


def bench_example_d_2_lemma_d_1_construction(benchmark, ex41):
    """Q7 (two r-subgoals) vs Q8 (one): multiplicities m² vs m on the scaled database."""

    def run():
        gaps = {}
        for m in (2, 5, 10):
            database = DatabaseInstance.from_dict(
                {"p": [(1, 2)], "r": [(1,)] * m, "s": [], "t": [], "u": []},
                ex41.schema,
            )
            gaps[m] = (
                evaluate(ex41.q7, database, "bag").multiplicity((1,)),
                evaluate(ex41.q8, database, "bag").multiplicity((1,)),
            )
        return gaps

    result = benchmark(run)
    assert all(result[m] == (m * m, m) for m in (2, 5, 10))
    record(
        benchmark,
        measured={str(m): v for m, v in result.items()},
        paper_expected="Q7 grows as m^2, Q8 as m (Lemma D.1 / Example D.2)",
    )


def bench_theorem_4_2_ablation(benchmark, ex41):
    """Disable the duplicate-removal rule: Q3 vs Q5 then (wrongly) look inequivalent."""

    def run():
        return {
            "with_rule": is_bag_equivalent_with_set_enforced(ex41.q3, ex41.q5, {"s", "t"}),
            "without_rule": is_bag_equivalent_with_set_enforced(ex41.q3, ex41.q5, set()),
        }

    result = benchmark(run)
    assert result == {"with_rule": True, "without_rule": False}
    record(benchmark, measured=result)
