"""Experiment E11 — the query-evaluation engine (Section 2.2 semantics) at scale.

Times set / bag-set / bag evaluation of a join query over synthetic instances
of growing size and records the answer cardinalities, confirming the defining
relationships between the three semantics (set answer = support of the
bag-set answer; the bag answer dominates the bag-set answer once duplicates
are present in the stored relations).
"""

from __future__ import annotations

import pytest
from _util import record

from repro.database import random_instance
from repro.datalog import parse_query
from repro.evaluation import evaluate
from repro.schema import DatabaseSchema
from repro.semantics import Semantics

SCHEMA = DatabaseSchema.from_arities({"orders": 2, "customer": 2})
QUERY = parse_query("Q(O) :- orders(O, C), customer(C, N)")
SIZES = (100, 1000, 5000)


def _instance(size: int, duplicates: float):
    return random_instance(
        SCHEMA, tuples_per_relation=size, domain_size=max(10, size // 10),
        duplicate_fraction=duplicates, seed=42,
    )


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("semantics", [Semantics.SET, Semantics.BAG_SET, Semantics.BAG])
def bench_join_evaluation(benchmark, size, semantics):
    instance = _instance(size, duplicates=0.2)
    answer = benchmark(lambda: evaluate(QUERY, instance, semantics))
    record(
        benchmark,
        tuples_per_relation=size,
        semantics=str(semantics),
        answer_cardinality=answer.cardinality,
        distinct_answers=len(answer.core_set()),
    )


@pytest.mark.parametrize("size", (1000,))
def bench_semantics_relationships(benchmark, size):
    instance = _instance(size, duplicates=0.3)

    def run():
        set_answer = evaluate(QUERY, instance, Semantics.SET)
        bag_set_answer = evaluate(QUERY, instance, Semantics.BAG_SET)
        bag_answer = evaluate(QUERY, instance, Semantics.BAG)
        return {
            "set_cardinality": set_answer.cardinality,
            "bag_set_cardinality": bag_set_answer.cardinality,
            "bag_cardinality": bag_answer.cardinality,
            "set_is_support_of_bag_set": set_answer.core_set() == bag_set_answer.core_set(),
            "bag_dominates_bag_set": bag_set_answer <= bag_answer,
        }

    result = benchmark(run)
    assert result["set_is_support_of_bag_set"] is True
    assert result["bag_dominates_bag_set"] is True
    assert (
        result["set_cardinality"]
        <= result["bag_set_cardinality"]
        <= result["bag_cardinality"]
    )
    record(benchmark, measured=result)
