"""Incremental chase: resumed-vs-cold step counts and delta-apply latency.

Each tier replays a workload as a *delta sequence* — the chain query grown
one subgoal at a time (set semantics), the star's Σ grown one spoke
(tgd + fd pair) at a time (set semantics), and the clique grown one edge at
a time (bag-set semantics, exercising the record-replay resume path).  For
every delta the resumed chase (:func:`repro.chase.incremental.resume_chase`)
is compared against a cold chase of the same accumulated state:

* ``cold_steps``     — total steps all the cold chases executed;
* ``new_steps``      — total *continuation* steps the resumed path executed;
* ``resume_ratio``   — ``cold_steps / max(1, new_steps)``, the steps saved;
* ``resume_seconds`` — wall time of the resumed delta applications.

Step counts are deterministic, so the CI trend gate pins the ratios (the
large chain tier carries a hard ≥ 5x bar) and that *every* delta actually
resumed — a silent fallback to the cold path would show up as
``resumed_deltas`` dropping.  The timed body replays the resumed path only;
the cold chases run once, outside the timer.
"""

from __future__ import annotations

import time

import pytest
from _util import record

from repro.chase import sound_chase
from repro.chase.incremental import (
    ChaseDelta,
    chase_with_checkpoint,
    has_applicable_step,
    resume_chase,
)
from repro.core.query import ConjunctiveQuery
from repro.dependencies import DependencySet
from repro.paperlib import chain_workload, clique_workload, star_workload
from repro.semantics import Semantics

MAX_STEPS = 5000

#: Tier sizes mirror bench_chase_scaling so the two benchmarks describe the
#: same workload family: (chain length, (star spokes, distractors),
#: (clique size, distractors)).
TIERS = {
    "small": {"chain": 12, "star": (8, 8), "clique": (6, 4)},
    "medium": {"chain": 32, "star": (20, 20), "clique": (9, 8)},
    "large": {"chain": 64, "star": (40, 40), "clique": (12, 12)},
}

#: Hard floor on the large chain tier's resumed-vs-cold step ratio (the PR's
#: acceptance bar; ~31x measured).  The other tiers are gated through the
#: committed baseline instead of an assert.
LARGE_CHAIN_RATIO_FLOOR = 5.0


def _replay(checkpoint, deltas):
    """Apply *deltas* in sequence; return (checkpoints, new_steps, resumed)."""
    checkpoints = []
    new_steps = 0
    resumed = 0
    for delta in deltas:
        outcome = resume_chase(checkpoint, delta)
        checkpoint = outcome.checkpoint
        checkpoints.append(checkpoint)
        new_steps += outcome.new_steps
        resumed += 1 if outcome.resumed else 0
    return checkpoints, new_steps, resumed


def _measure(benchmark, base_query, sigma, semantics, deltas, tier):
    """Shared harness: resumed replay (timed) vs per-state cold chases."""
    _, checkpoint = chase_with_checkpoint(base_query, sigma, semantics, MAX_STEPS)

    started = time.perf_counter()
    checkpoints, new_steps, resumed = _replay(checkpoint, deltas)
    resume_seconds = time.perf_counter() - started

    cold_steps = 0
    for state in checkpoints:
        cold = sound_chase(state.base_query, state.sigma, semantics, MAX_STEPS)
        cold_steps += cold.step_count
    # The final resumed state must be a genuine fixpoint (trust-nothing probe).
    final = checkpoints[-1]
    assert not has_applicable_step(
        final.result.query, final.sigma, semantics, MAX_STEPS
    ), f"{tier}: resumed terminal state still admits a chase step"

    ratio = cold_steps / max(1, new_steps)
    benchmark(lambda: _replay(checkpoint, deltas))
    record(
        benchmark,
        tier=tier,
        deltas=len(deltas),
        resumed_deltas=resumed,
        cold_steps=cold_steps,
        new_steps=new_steps,
        resume_ratio=round(ratio, 2),
        resume_seconds=round(resume_seconds, 6),
        delta_latency_seconds=round(resume_seconds / len(deltas), 6),
    )
    assert resumed == len(deltas), f"{tier}: {len(deltas) - resumed} delta(s) fell back cold"
    return ratio


@pytest.mark.parametrize("tier", list(TIERS))
def bench_incremental_chain(benchmark, tier):
    """Chain query grown one subgoal at a time under set semantics."""
    workload = chain_workload(TIERS[tier]["chain"])
    base = workload.query.with_body(workload.query.body[:1])
    deltas = [ChaseDelta.atoms(atom) for atom in workload.query.body[1:]]
    ratio = _measure(
        benchmark, base, workload.dependencies, Semantics.SET, deltas, tier
    )
    if tier == "large":
        assert ratio >= LARGE_CHAIN_RATIO_FLOOR, (
            f"large chain resume ratio regressed to {ratio:.1f}x "
            f"(floor {LARGE_CHAIN_RATIO_FLOOR}x)"
        )


@pytest.mark.parametrize("tier", list(TIERS))
def bench_incremental_star(benchmark, tier):
    """Star Σ grown one spoke (tgd + fd pair) at a time under set semantics."""
    spokes, distractors = TIERS[tier]["star"]
    workload = star_workload(spokes, distractors)
    dependencies = list(workload.dependencies)
    # Start from the first half of the spokes (pairs kept together) and
    # delta in the rest pair by pair; distractors ride along at the end.
    half = (len(dependencies) // 2) & ~1
    base_sigma = DependencySet(
        dependencies[:half], workload.dependencies.set_valued_predicates
    )
    deltas = [
        ChaseDelta.dependencies(*dependencies[i : i + 2])
        for i in range(half, len(dependencies), 2)
    ]
    _measure(benchmark, workload.query, base_sigma, Semantics.SET, deltas, tier)


@pytest.mark.parametrize("tier", list(TIERS))
def bench_incremental_clique(benchmark, tier):
    """Clique grown one edge at a time under bag-set semantics (replay resume)."""
    size, distractors = TIERS[tier]["clique"]
    workload = clique_workload(size, distractors)
    last_vertex = f"X{size}"
    base_atoms = [
        atom
        for atom in workload.query.body
        if all(getattr(term, "name", None) != last_vertex for term in atom.terms)
    ]
    delta_atoms = [atom for atom in workload.query.body if atom not in base_atoms]
    base = ConjunctiveQuery(
        workload.query.head_predicate, workload.query.head_terms, base_atoms
    )
    deltas = [ChaseDelta.atoms(atom) for atom in delta_atoms]
    _measure(
        benchmark, base, workload.dependencies, Semantics.BAG_SET, deltas, tier
    )
